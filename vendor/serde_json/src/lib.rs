//! Offline stand-in for `serde_json`.
//!
//! Re-exports the vendored serde shim's [`Value`], and provides the
//! pieces the workspace uses: the [`json!`] macro, [`to_string`] /
//! [`to_string_pretty`] over any `Serialize`, and [`from_str`] parsing
//! JSON text into a `Value`.

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(t: &T) -> Value {
    t.to_value()
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(t: &T) -> Result<String> {
    Ok(t.to_value().to_string())
}

/// Pretty JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(t: &T) -> Result<String> {
    let mut out = String::new();
    t.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Build a [`Value`] from JSON-ish syntax. Supports the subset used in
/// this workspace: object literals with literal keys, array literals,
/// `null`, and arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($v:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($v) ),* ])
    };
    ({ $($k:tt : $v:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($k), $crate::to_value(&$v)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Parse JSON text. The target type is nominally generic to keep
/// call-site turbofish/type-ascription working, but only `Value` (and
/// types convertible from it) is supported — matching how the
/// workspace uses it.
pub fn from_str<T: FromJson>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_json(v)
}

/// Conversion out of a parsed [`Value`].
pub trait FromJson: Sized {
    fn from_json(v: Value) -> Result<Self>;
}

impl FromJson for Value {
    fn from_json(v: Value) -> Result<Self> {
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => {
                self.expect("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.expect("null")?;
                Ok(Value::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.bump()?; // '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(":")?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(entries)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.bump()?; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        if self.bump()? != b'"' {
            return Err(Error::new("expected string"));
        }
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| Error::new("bad \\u escape"))?;
                        }
                        out.push(char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?);
                    }
                    c => {
                        return Err(Error::new(format!("bad escape `\\{}`", c as char)));
                    }
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble multi-byte UTF-8 (input is a &str, so
                    // the bytes are valid by construction).
                    let start = self.pos - 1;
                    let width = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_and_roundtrip() {
        let v = json!({
            "name": "run",
            "ok": true,
            "count": 42u64,
            "ratio": 0.5,
            "seq": vec![1.0f64, 2.0],
        });
        let text = v.to_string();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["name"], "run");
        assert_eq!(back["ok"], true);
        assert_eq!(back["count"].as_u64(), Some(42));
        assert_eq!(back["ratio"].as_f64(), Some(0.5));
        assert_eq!(back["seq"][1].as_f64(), Some(2.0));
        assert!(back["missing"].is_null());
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5], "s": "x\nyA"}"#).unwrap();
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["s"], "x\nyA");
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let v = json!({"outer": vec![1u64, 2], "flag": false});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{invalid").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
