//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset this workspace uses: `SmallRng` seeded via
//! `seed_from_u64`, and the `Rng` extension methods `gen_range` (over
//! `Range` / `RangeInclusive` of the primitive numeric types) and
//! `gen_bool`. The generator is xoshiro256++ seeded through SplitMix64
//! — the same algorithm family as the real `SmallRng` on 64-bit
//! targets. Determinism for a given seed is the property the codebase
//! relies on (reproducible simulations), not the exact stream of the
//! upstream crate.

use std::ops::{Range, RangeInclusive};

/// Core generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable construction. Only `seed_from_u64` is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range. Panics on an empty range, like the
    /// real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            unit_f64(self.next_u64()) < p
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform f64 in [0, 1).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $ty
                }
            }
        )*
    };
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u = unit_f64(rng.next_u64()) as $ty;
                    let v = self.start + (self.end - self.start) * u;
                    // Guard the end against rounding (half-open contract).
                    if v < self.end { v } else { self.start }
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let u = unit_f64(rng.next_u64()) as $ty;
                    lo + (hi - lo) * u
                }
            }
        )*
    };
}

float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation use.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real rand crate does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let differs = (0..100).any(|_| a.gen_range(0u64..1 << 40) != c.gen_range(0u64..1 << 40));
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let f: f32 = r.gen_range(f32::EPSILON..1.0);
            assert!(f >= f32::EPSILON && f < 1.0);
            let u = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }
}
