//! Offline stand-in for `serde`.
//!
//! No crates.io access in the build environment, so the workspace
//! vendors the slice of serde it actually uses. Instead of the real
//! visitor-based data model, [`Serialize`] here is a tree model: a type
//! renders itself into a [`Value`], and `serde_json` (also vendored)
//! renders the tree as JSON text. `Deserialize` is a marker trait with
//! a blanket impl — nothing in the workspace parses JSON into typed
//! structs (only into `Value`).
//!
//! `Value` lives here rather than in the `serde_json` shim so that both
//! the derive output and `serde_json` can name it without a dependency
//! cycle; `serde_json` re-exports it.

// Let the derive's generated `impl ::serde::Serialize` resolve when
// expanded inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped tree value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered; JSON objects here never need key lookup at
    /// scale, so a Vec beats pulling in a map type.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field by key; `Null` reference if absent or not an object.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Array element by index; `Null` reference when out of range.
    pub fn at(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.at(idx)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_json(f: f64) -> String {
    if !f.is_finite() {
        // JSON has no NaN/Inf; the real serde_json emits null.
        return "null".to_string();
    }
    let s = format!("{f}");
    // `1.0` formats as "1"; keep a float marker so the value round-trips
    // as a float (matches serde_json's "1.0").
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

impl Value {
    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => out.push_str(&float_json(*f)),
            Value::Str(s) => escape_into(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty-print with two-space indentation (serde_json style).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON, matching `serde_json::Value::to_string`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

/// Render self as a [`Value`] tree. Stand-in for serde's visitor-based
/// `Serialize`; every serialization path in this workspace goes through
/// JSON, for which the tree model is sufficient.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker stand-in for serde's `Deserialize`. Blanket-implemented: the
/// workspace only ever deserializes untyped `Value`s.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for serde's `DeserializeOwned`.
pub trait DeserializeOwned: Sized {}
impl<T> DeserializeOwned for T {}

macro_rules! ser_uint {
    ($($ty:ty),*) => {
        $(impl Serialize for $ty {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        })*
    };
}
macro_rules! ser_int {
    ($($ty:ty),*) => {
        $(impl Serialize for $ty {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        })*
    };
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_named_struct() {
        #[derive(Serialize)]
        struct S {
            a: u32,
            b: String,
            c: Vec<f64>,
        }
        let v = S {
            a: 7,
            b: "x".into(),
            c: vec![1.5],
        }
        .to_value();
        assert_eq!(v["a"].as_u64(), Some(7));
        assert_eq!(v["b"], "x");
        assert_eq!(v["c"][0].as_f64(), Some(1.5));
    }

    #[test]
    fn derive_newtype_is_transparent() {
        #[derive(Serialize)]
        struct N(u64);
        assert_eq!(N(9).to_value().as_u64(), Some(9));
    }

    #[test]
    fn derive_unit_enum() {
        #[derive(Serialize)]
        enum E {
            Alpha,
            Beta,
        }
        assert_eq!(E::Alpha.to_value(), "Alpha");
        assert_eq!(E::Beta.to_value(), "Beta");
    }

    #[test]
    fn compact_rendering_escapes() {
        let v = Value::Object(vec![("k\"ey".to_string(), Value::Str("a\nb".to_string()))]);
        assert_eq!(v.to_string(), "{\"k\\\"ey\":\"a\\nb\"}");
    }
}
