//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::channel` is used by this workspace, and only the
//! mpsc-shaped subset of it (clonable senders, one receiver per
//! endpoint, `recv_timeout`). `std::sync::mpsc` provides exactly those
//! semantics with matching type and error names, so this shim is a
//! re-export plus an `unbounded` constructor.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// An unbounded mpsc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(5));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
