//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking API surface the workspace's `benches/`
//! use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple calibrated wall-clock loop printing ns/iter (plus derived
//! throughput) — no statistics, plots, or saved baselines, but honest
//! numbers good enough to compare hot paths.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A parameterized benchmark identifier, rendered `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one closure-under-measurement.
pub struct Bencher {
    /// Mean wall-clock cost of one iteration, captured by `iter`.
    ns_per_iter: f64,
    target: Duration,
}

impl Bencher {
    /// Run `f` repeatedly: a warm-up, then enough iterations to fill
    /// the measurement window, reporting mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: how many iters fit the window?
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < self.target / 10 || calib_iters < 1 {
            black_box(f());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per = calib_start.elapsed().as_nanos() as f64 / calib_iters as f64;
        let iters = ((self.target.as_nanos() as f64 / per.max(1.0)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            target: self.criterion.measurement_time,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.ns_per_iter, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            target: self.criterion.measurement_time,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.ns_per_iter, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, name: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Melem/s", n as f64 / ns * 1000.0)
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  {:>10.1} MB/s", n as f64 / ns * 1000.0)
        }
        None => String::new(),
    };
    println!("bench {group}/{name}: {ns:>12.1} ns/iter{rate}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short window: these are smoke-grade numbers; raise with
            // `measurement_time` where more stability is needed.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            throughput: None,
            criterion: self,
        };
        g.bench_function(name, f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
