//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's ergonomics: `lock()`
//! returns the guard directly rather than a poison `Result`. Poisoning
//! is ignored (parking_lot has no poisoning), recovering the inner
//! guard from a poisoned std lock.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion, parking_lot-style API over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking. Never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock, parking_lot-style API over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn default_derives() {
        #[derive(Debug, Default)]
        struct Stats {
            counters: Mutex<(u64, u64)>,
        }
        let s = Stats::default();
        s.counters.lock().0 += 1;
        assert_eq!(format!("{:?}", s.counters.lock().0), "1");
    }
}
