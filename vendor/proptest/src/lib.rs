//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace uses:
//! `proptest!` with `#![proptest_config(...)]`, `any::<T>()`, numeric
//! range strategies, `prop::collection::vec`, tuple strategies,
//! `.prop_map`, `Just`, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a per-test deterministic seed
//! (FNV of the test name), so failures reproduce exactly on re-run.
//! There is no shrinking: a failing case reports its case number and
//! values are reproducible from the fixed seed.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to produce test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed derived from the test's name, so each test gets an
    /// independent, stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-shape configuration. Only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of a given type.
pub trait Strategy {
    type Value;

    /// Produce one value. (`new_tree` + simplification in the real
    /// crate; this shim generates directly and never shrinks.)
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard values failing the predicate (bounded retries; panics if
    /// the predicate is too selective, mirroring proptest's rejection
    /// limit).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`, as `any::<T>()`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values across a broad dynamic range (no NaN/Inf).
        let mag = (rng.unit() * 2.0 - 1.0) * 1e6;
        mag as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit() * 2.0 - 1.0) * 1e12
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let v = self.start + (self.end - self.start) * rng.unit() as $ty;
                    if v < self.end { v } else { self.start }
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * rng.unit() as $ty
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// `prop::collection` etc., mirroring the real crate's module layout.
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for a `Vec` whose elements come from `element` and
        /// whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                assert!(self.size.lo < self.size.hi, "empty vec size range");
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a proptest case; failure aborts the case with a
/// message rather than panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            ));
        }
    }};
}

/// Skip the current case when a precondition doesn't hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The proptest harness macro. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` (the attribute is written explicitly at the use
/// site, as with the real crate) running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:pat_param in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(::std::concat!(
                    ::std::module_path!(), "::", ::std::stringify!($name)
                ));
                for case in 0..config.cases {
                    let values = ( $( $crate::Strategy::generate(&($strategy), &mut rng), )+ );
                    let ( $( $arg, )+ ) = values;
                    let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}\n(deterministic seed; re-run reproduces)",
                            case + 1, config.cases, msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i32..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec(any::<u8>(), 2..6),
            pair in (0u16..10, any::<bool>()).prop_map(|(a, b)| (a + 1, b)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(pair.0 >= 1 && pair.0 <= 10);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |seed_name: &str| {
            let mut rng = crate::TestRng::deterministic(seed_name);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }
}
