//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so this proc-macro
//! crate re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the subset of shapes the workspace actually derives on:
//! named-field structs, tuple structs (newtype included), and enums
//! with unit variants. It parses the raw `TokenStream` by hand rather
//! than pulling in `syn`/`quote`.
//!
//! The generated `Serialize` impl targets the vendored `serde` shim's
//! tree-model contract (`fn to_value(&self) -> serde::Value`), which is
//! all `serde_json::to_string*` needs. `Deserialize` derives expand to
//! nothing: the shim's `Deserialize` trait is a marker with a blanket
//! impl, since nothing in the workspace deserializes into typed data.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code
            .parse()
            .expect("serde_derive shim: generated code must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    // Marker trait with a blanket impl in the serde shim; nothing to do.
    TokenStream::new()
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility qualifiers until the `struct`/`enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [...]
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // `pub`, `crate`, ...
            }
            Some(TokenTree::Group(_)) => i += 1, // `(crate)` after `pub`
            Some(_) => i += 1,
            None => return Err("serde derive: no struct or enum found".into()),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: missing type name".into()),
    };
    i += 1;

    // Generic type parameters are not supported (none of the workspace's
    // derive targets have them); detect and reject loudly.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive shim: generic type `{name}` unsupported"
            ));
        }
    }

    // Skip a `where` clause if present (scan to the body group).
    while i < tokens.len() {
        if let TokenTree::Group(_) = &tokens[i] {
            break;
        }
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == ';' {
                return Err(format!(
                    "serde derive shim: unit struct `{name}` unsupported"
                ));
            }
        }
        i += 1;
    }

    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        _ => return Err(format!("serde derive shim: `{name}` has no body")),
    };

    let body = if kind == "enum" {
        let variants = parse_unit_variants(group.stream())?;
        let arms: String = variants
            .iter()
            .map(|v| {
                format!("{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),\n")
            })
            .collect();
        format!("match self {{ {arms} }}")
    } else if group.delimiter() == Delimiter::Brace {
        let fields = parse_named_fields(group.stream())?;
        let entries: String = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),\n"
                )
            })
            .collect();
        format!("::serde::Value::Object(::std::vec![\n{entries}])")
    } else if group.delimiter() == Delimiter::Parenthesis {
        let n = count_tuple_fields(group.stream());
        if n == 1 {
            // Newtype: serialize transparently as the inner value.
            "::serde::Serialize::to_value(&self.0)".to_string()
        } else {
            let entries: String = (0..n)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx}),\n"))
                .collect();
            format!("::serde::Value::Array(::std::vec![\n{entries}])")
        }
    } else {
        return Err(format!("serde derive shim: unsupported body for `{name}`"));
    };

    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    ))
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    i += 1; // pub(crate) / pub(super)
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive shim: expected field name, got `{other}`"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde derive shim: expected `:` after `{name}`")),
        }
        // Skip the type: scan to the next top-level `,` (angle-bracket
        // depth 0; parens/brackets arrive as single Group tokens).
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Variant names of a unit-variant enum body (discriminants allowed,
/// payload-carrying variants rejected).
fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive shim: expected variant, got `{other}`"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip the discriminant expression to the next `,`.
                while i < tokens.len() {
                    if let TokenTree::Punct(q) = &tokens[i] {
                        if q.as_char() == ',' {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde derive shim: variant `{name}` carries data (unsupported)"
                ));
            }
            Some(other) => {
                return Err(format!(
                    "serde derive shim: unexpected `{other}` after `{name}`"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut n = 0usize;
    let mut angle = 0i32;
    let mut pending = false; // any tokens since the last top-level comma
    for tok in stream {
        match tok {
            TokenTree::Punct(ref p) if p.as_char() == '<' => {
                angle += 1;
                pending = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == '>' => {
                angle -= 1;
                pending = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == ',' && angle == 0 => {
                if pending {
                    n += 1;
                }
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        n += 1;
    }
    n
}
