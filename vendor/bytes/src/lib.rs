//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of the crates it depends
//! on. This one covers exactly what the SwitchML codebase uses:
//! [`Bytes`], [`BytesMut`], and the big-endian [`Buf`]/[`BufMut`]
//! accessors. No refcounted zero-copy splitting — `Bytes` here is a
//! plain owned buffer, which is semantically equivalent for every use
//! in this repository (packets are encoded once and handed off).

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Wrap a static slice (copied; the real crate borrows, but no
    /// caller here relies on zero-copy).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes { data: s.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes { data: s.to_vec() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

macro_rules! buf_get {
    ($($name:ident -> $ty:ty),* $(,)?) => {
        $(
            /// Read a big-endian value and advance.
            fn $name(&mut self) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let mut raw = [0u8; N];
                raw.copy_from_slice(&self.chunk()[..N]);
                self.advance(N);
                <$ty>::from_be_bytes(raw)
            }
        )*
    };
}

/// Sequential big-endian reads from a buffer. Panics on underflow,
/// matching the real crate; callers length-check first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    buf_get! {
        get_u8 -> u8, get_i8 -> i8,
        get_u16 -> u16, get_i16 -> i16,
        get_u32 -> u32, get_i32 -> i32,
        get_u64 -> u64, get_i64 -> i64,
        get_f32 -> f32, get_f64 -> f64,
    }

    /// Copy out `dst.len()` bytes and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

macro_rules! buf_put {
    ($($name:ident($ty:ty)),* $(,)?) => {
        $(
            /// Append a big-endian value.
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.to_be_bytes());
            }
        )*
    };
}

/// Sequential big-endian writes into a buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    buf_put! {
        put_u8(u8), put_i8(i8),
        put_u16(u16), put_i16(i16),
        put_u32(u32), put_i32(i32),
        put_u64(u64), put_i64(i64),
        put_f32(f32), put_f64(f64),
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_i32(-42);
        b.put_f32(1.5);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i32(), -42);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn mutable_indexing_and_freeze() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32(0);
        b[0..4].copy_from_slice(&0xAABBCCDDu32.to_be_bytes());
        assert_eq!(&b.freeze()[..], &[0xAA, 0xBB, 0xCC, 0xDD]);
    }
}
