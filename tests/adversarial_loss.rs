//! Adversarial loss patterns against the full protocol.
//!
//! Random uniform loss (the paper's experiment) is the easy case;
//! these tests aim targeted drop patterns at the protocol's known
//! tricky spots: repeated losses of the same packet, loss bursts
//! concentrated on one worker or one direction, and every-other-packet
//! combs. The aggregation must stay exact in all of them.

use switchml::core::agg::{run_inprocess, HarnessConfig, Hop};
use switchml::core::config::Protocol;
use switchml::core::packet::Packet;

fn proto(n: usize) -> Protocol {
    Protocol {
        n_workers: n,
        k: 4,
        pool_size: 4,
        rto_ns: 100_000,
        scaling_factor: 10_000.0,
        ..Protocol::default()
    }
}

fn updates(n: usize, elems: usize) -> Vec<Vec<Vec<f32>>> {
    (0..n)
        .map(|w| vec![(0..elems).map(|i| (w + 1) as f32 + (i % 4) as f32 * 0.25).collect()])
        .collect()
}

fn check_exact(results: &[Vec<Vec<f32>>], updates: &[Vec<Vec<f32>>]) {
    let n = updates.len();
    let elems = updates[0][0].len();
    for w in 0..n {
        for i in 0..elems {
            let exact: f32 = updates.iter().map(|u| u[0][i]).sum();
            let got = results[w][0][i];
            assert!(
                (got - exact).abs() < 0.01,
                "worker {w} elem {i}: {got} vs {exact}"
            );
        }
    }
}

fn run_with<F>(n: usize, elems: usize, drop: F) -> switchml::core::agg::AllReduceOutcome
where
    F: FnMut(&Packet, Hop) -> bool,
{
    let u = updates(n, elems);
    let harness = HarnessConfig {
        latency_ns: 1_000,
        deadline_ns: 60_000_000_000,
    };
    let out = run_inprocess(&u, &proto(n), &harness, drop).expect("protocol must converge");
    check_exact(&out.results, &u);
    out
}

#[test]
fn same_packet_lost_five_times() {
    // Worker 1's update for slot 2 is dropped on its first five
    // transmissions; only the sixth (a retransmission) gets through.
    let mut drops = 0;
    let out = run_with(3, 64, |pkt, hop| {
        if hop == Hop::Up && pkt.wid == 1 && pkt.idx == 2 && pkt.off == 8 && drops < 5 {
            drops += 1;
            return true;
        }
        false
    });
    assert_eq!(drops, 5);
    assert!(out.worker_stats[1].retx >= 5);
}

#[test]
fn result_to_one_worker_always_lost_for_a_phase() {
    // Every multicast copy of slot 0's first result toward worker 0 is
    // dropped; only unicast retransmissions can save it.
    let mut dropped = 0;
    let out = run_with(3, 64, |pkt, hop| {
        if matches!(hop, Hop::Down { to: 0 }) && pkt.idx == 0 && pkt.off == 0 && dropped < 3 {
            dropped += 1;
            return true;
        }
        false
    });
    assert!(dropped >= 1);
    assert!(out.switch_stats.result_retx >= 1);
}

#[test]
fn one_worker_blacked_out_both_directions() {
    // Worker 2 loses its first 40 packets in each direction — a burst
    // blackout. The self-clocked system stalls (no worker can run
    // ahead more than one phase) and then recovers completely.
    let mut up_budget = 40;
    let mut down_budget = 40;
    let out = run_with(4, 128, |pkt, hop| match hop {
        Hop::Up if pkt.wid == 2 && up_budget > 0 => {
            up_budget -= 1;
            true
        }
        Hop::Down { to: 2 } if down_budget > 0 => {
            down_budget -= 1;
            true
        }
        _ => false,
    });
    // Worker 2 must have retransmitted a lot; others mostly idle-waited.
    assert!(out.worker_stats[2].retx > 0);
}

#[test]
fn every_other_upward_packet_dropped_once() {
    // A 50% comb over first transmissions (retransmissions spared, or
    // nothing would ever converge).
    let mut parity = false;
    run_with(2, 256, |pkt, hop| {
        if hop == Hop::Up && !pkt.retransmission {
            parity = !parity;
            return parity;
        }
        false
    });
}

#[test]
fn all_multicasts_dropped_only_unicasts_survive() {
    // Every *first* downward delivery of each result is dropped for
    // every worker; each worker must fetch every result via timeout +
    // unicast retransmission. Brutal but must converge.
    use std::collections::HashSet;
    let mut seen: HashSet<(u16, u32, u64)> = HashSet::new();
    let out = run_with(2, 64, |pkt, hop| {
        if let Hop::Down { to } = hop {
            return seen.insert((to, pkt.idx, pkt.off));
        }
        false
    });
    assert!(out.switch_stats.result_retx as usize >= 16);
}

#[test]
fn loss_of_retransmitted_results_too() {
    // Even the unicast recovery path gets hit: drop the first unicast
    // retransmission for each (worker, slot, phase) as well.
    use std::collections::HashMap;
    let mut down_count: HashMap<(u16, u32, u64), u32> = HashMap::new();
    run_with(2, 32, |pkt, hop| {
        if let Hop::Down { to } = hop {
            let c = down_count.entry((to, pkt.idx, pkt.off)).or_insert(0);
            *c += 1;
            return *c <= 2; // first two deliveries (multicast + 1st unicast) die
        }
        false
    });
}

#[test]
fn corrupted_packets_rejected_by_checksum() {
    // Corruption → checksum failure → drop; recovery identical to loss.
    // Exercised at the wire level: encode, flip a byte, decode fails.
    use switchml::core::packet::{PacketKind, Payload, PoolVersion};
    let p = Packet {
        kind: PacketKind::Update,
        wid: 1,
        ver: PoolVersion::V0,
        idx: 3,
        off: 96,
        job: 0,
        retransmission: false,
        payload: Payload::I32(vec![7; 32]),
    };
    let mut bytes = p.encode().to_vec();
    for pos in (0..bytes.len()).step_by(7) {
        bytes[pos] ^= 0x20;
        assert!(Packet::decode(&bytes).is_err(), "flip at {pos} undetected");
        bytes[pos] ^= 0x20;
    }
    assert_eq!(Packet::decode(&bytes).unwrap(), p);
}
