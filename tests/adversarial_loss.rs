//! Adversarial loss patterns against the full protocol.
//!
//! Random uniform loss (the paper's experiment) is the easy case;
//! these tests aim targeted drop patterns at the protocol's known
//! tricky spots: repeated losses of the same packet, loss bursts
//! concentrated on one worker or one direction, and every-other-packet
//! combs. The aggregation must stay exact in all of them.

use switchml::core::agg::{run_inprocess, HarnessConfig, Hop};
use switchml::core::config::Protocol;
use switchml::core::packet::Packet;

fn proto(n: usize) -> Protocol {
    Protocol {
        n_workers: n,
        k: 4,
        pool_size: 4,
        rto_ns: 100_000,
        scaling_factor: 10_000.0,
        ..Protocol::default()
    }
}

fn updates(n: usize, elems: usize) -> Vec<Vec<Vec<f32>>> {
    (0..n)
        .map(|w| {
            vec![(0..elems)
                .map(|i| (w + 1) as f32 + (i % 4) as f32 * 0.25)
                .collect()]
        })
        .collect()
}

fn check_exact(results: &[Vec<Vec<f32>>], updates: &[Vec<Vec<f32>>]) {
    let n = updates.len();
    let elems = updates[0][0].len();
    for (w, res) in results.iter().enumerate().take(n) {
        for i in 0..elems {
            let exact: f32 = updates.iter().map(|u| u[0][i]).sum();
            let got = res[0][i];
            assert!(
                (got - exact).abs() < 0.01,
                "worker {w} elem {i}: {got} vs {exact}"
            );
        }
    }
}

fn run_with<F>(n: usize, elems: usize, drop: F) -> switchml::core::agg::AllReduceOutcome
where
    F: FnMut(&Packet, Hop) -> bool,
{
    let u = updates(n, elems);
    let harness = HarnessConfig {
        latency_ns: 1_000,
        deadline_ns: 60_000_000_000,
    };
    let out = run_inprocess(&u, &proto(n), &harness, drop).expect("protocol must converge");
    check_exact(&out.results, &u);
    out
}

#[test]
fn same_packet_lost_five_times() {
    // Worker 1's update for slot 2 is dropped on its first five
    // transmissions; only the sixth (a retransmission) gets through.
    let mut drops = 0;
    let out = run_with(3, 64, |pkt, hop| {
        if hop == Hop::Up && pkt.wid == 1 && pkt.idx == 2 && pkt.off == 8 && drops < 5 {
            drops += 1;
            return true;
        }
        false
    });
    assert_eq!(drops, 5);
    assert!(out.worker_stats[1].retx >= 5);
}

#[test]
fn result_to_one_worker_always_lost_for_a_phase() {
    // Every multicast copy of slot 0's first result toward worker 0 is
    // dropped; only unicast retransmissions can save it.
    let mut dropped = 0;
    let out = run_with(3, 64, |pkt, hop| {
        if matches!(hop, Hop::Down { to: 0 }) && pkt.idx == 0 && pkt.off == 0 && dropped < 3 {
            dropped += 1;
            return true;
        }
        false
    });
    assert!(dropped >= 1);
    assert!(out.switch_stats.result_retx >= 1);
}

#[test]
fn one_worker_blacked_out_both_directions() {
    // Worker 2 loses its first 40 packets in each direction — a burst
    // blackout. The self-clocked system stalls (no worker can run
    // ahead more than one phase) and then recovers completely.
    let mut up_budget = 40;
    let mut down_budget = 40;
    let out = run_with(4, 128, |pkt, hop| match hop {
        Hop::Up if pkt.wid == 2 && up_budget > 0 => {
            up_budget -= 1;
            true
        }
        Hop::Down { to: 2 } if down_budget > 0 => {
            down_budget -= 1;
            true
        }
        _ => false,
    });
    // Worker 2 must have retransmitted a lot; others mostly idle-waited.
    assert!(out.worker_stats[2].retx > 0);
}

#[test]
fn every_other_upward_packet_dropped_once() {
    // A 50% comb over first transmissions (retransmissions spared, or
    // nothing would ever converge).
    let mut parity = false;
    run_with(2, 256, |pkt, hop| {
        if hop == Hop::Up && !pkt.retransmission {
            parity = !parity;
            return parity;
        }
        false
    });
}

#[test]
fn all_multicasts_dropped_only_unicasts_survive() {
    // Every *first* downward delivery of each result is dropped for
    // every worker; each worker must fetch every result via timeout +
    // unicast retransmission. Brutal but must converge.
    use std::collections::HashSet;
    let mut seen: HashSet<(u16, u32, u64)> = HashSet::new();
    let out = run_with(2, 64, |pkt, hop| {
        if let Hop::Down { to } = hop {
            return seen.insert((to, pkt.idx, pkt.off));
        }
        false
    });
    assert!(out.switch_stats.result_retx as usize >= 16);
}

#[test]
fn loss_of_retransmitted_results_too() {
    // Even the unicast recovery path gets hit: drop the first unicast
    // retransmission for each (worker, slot, phase) as well.
    use std::collections::HashMap;
    let mut down_count: HashMap<(u16, u32, u64), u32> = HashMap::new();
    run_with(2, 32, |pkt, hop| {
        if let Hop::Down { to } = hop {
            let c = down_count.entry((to, pkt.idx, pkt.off)).or_insert(0);
            *c += 1;
            return *c <= 2; // first two deliveries (multicast + 1st unicast) die
        }
        false
    });
}

#[test]
fn worker_dies_mid_tensor_under_loss() {
    // The compound adversary: per-link loss on every worker link AND a
    // worker crash partway through the tensor. The controller must
    // detect the death through the loss, quiesce, shrink 6 → 5, and
    // the survivors must converge on a consistent tensor: every
    // element is *exactly* the quantized 6-worker sum (chunks inside
    // the frontier, aggregated before the crash) or *exactly* the
    // quantized 5-worker sum at the rescaled factor (chunks re-done
    // after the shrink).
    use switchml::core::quant::fixed::quantize_one;
    use switchml::core::quant::scaling::max_safe_factor;
    use switchml::ctrl::netsim::{run_ctrl, scenario_tensor, CtrlScenario};

    let sc = CtrlScenario {
        n_workers: 6,
        elems: 2048,
        k: 8,
        pool_size: 8,
        loss: 0.02,
        seed: 7,
        fail_worker: Some((2, 300)), // dies ~1/4 of the way through
        deadline_ms: 3_000,
        ..CtrlScenario::default()
    };
    let out = run_ctrl(&sc);
    assert!(out.finished, "events: {:?}", out.events);
    assert_eq!(out.final_n[0], 5);
    assert!(out.events.iter().any(|e| e.contains("worker 2 dead")));
    assert!(out.results[0][2].is_none(), "the dead worker holds nothing");

    // All survivors agree bitwise.
    let got = &out.results[0][0].as_ref().expect("survivor finished")[0];
    for w in [1usize, 3, 4, 5] {
        assert_eq!(&out.results[0][w].as_ref().unwrap()[0], got, "worker {w}");
    }

    // Per-element ground truth for both epochs.
    let f6 = sc.requested_f.min(max_safe_factor(6, sc.bound));
    let f5 = out.final_f[0];
    assert_eq!(f5, sc.requested_f.min(max_safe_factor(5, sc.bound)));
    let tensors: Vec<Vec<f32>> = (0..6)
        .map(|w| scenario_tensor(w, sc.elems, sc.bound))
        .collect();
    let (mut with_dead, mut without_dead) = (0usize, 0usize);
    for i in 0..sc.elems {
        let sum6: i64 = (0..6).map(|w| quantize_one(tensors[w][i], f6) as i64).sum();
        let v6 = (sum6 as f64 / f6) as f32;
        let sum5: i64 = [0usize, 1, 3, 4, 5]
            .iter()
            .map(|&w| quantize_one(tensors[w][i], f5) as i64)
            .sum();
        let v5 = (sum5 as f64 / f5) as f32;
        if got[i] == v6 {
            with_dead += 1;
        } else if got[i] == v5 {
            without_dead += 1;
        } else {
            panic!("elem {i}: {} is neither {v6} (n=6) nor {v5} (n=5)", got[i]);
        }
    }
    // The crash really was mid-tensor: some chunks carry the dead
    // worker's contribution (frontier), some were re-aggregated.
    assert!(with_dead > 0, "frontier empty: crash was not mid-tensor");
    assert!(without_dead > 0, "nothing re-aggregated after the shrink");
}

#[test]
fn corrupted_packets_rejected_by_checksum() {
    // Corruption → checksum failure → drop; recovery identical to loss.
    // Exercised at the wire level: encode, flip a byte, decode fails.
    use switchml::core::packet::{PacketKind, Payload, PoolVersion};
    let p = Packet {
        kind: PacketKind::Update,
        wid: 1,
        ver: PoolVersion::V0,
        idx: 3,
        off: 96,
        job: 0,
        epoch: 0,
        retransmission: false,
        payload: Payload::I32(vec![7; 32]),
    };
    let mut bytes = p.encode().to_vec();
    for pos in (0..bytes.len()).step_by(7) {
        bytes[pos] ^= 0x20;
        assert!(Packet::decode(&bytes).is_err(), "flip at {pos} undetected");
        bytes[pos] ^= 0x20;
    }
    assert_eq!(Packet::decode(&bytes).unwrap(), p);
}
