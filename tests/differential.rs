//! Differential testing: three independent executions of the same
//! all-reduce — the multi-core threaded sharded runner, the
//! discrete-event netsim run, and a sequential quantize → saturating
//! sum → dequantize reference built straight from `switchml-core` —
//! must agree **bit-for-bit** on the Fixed32 aggregated tensor.
//!
//! Fixed32 makes this a hard equality: integer addition is associative
//! and saturating, so packet order, core count, and transport must not
//! be able to change a single bit of the result. Any divergence means
//! an aggregation path double-added, dropped, or reordered a
//! contribution into a different arithmetic outcome.

use switchml_baselines::run::{run_switchml, synthetic_gradient, SwitchMLScenario};
use switchml_core::config::NumericMode;
use switchml_core::packet::Payload;
use switchml_core::worker::stream::TensorStream;
use switchml_transport::runner::RunConfig;
use switchml_transport::shard::{
    run_allreduce_sharded, sharded_channel_fabric, sharded_fabric_size,
};
use switchml_transport::udp::udp_fabric;

const SCALING: f64 = 10_000.0;

/// The ground truth: per-worker quantization through the exact
/// [`TensorStream`] wire path, element-wise saturating i32 sums, one
/// dequantization — no switch, no scheduler, no network.
fn sequential_reference(n: usize, elems: usize, k: usize) -> Vec<f32> {
    let mut int_sum = vec![0i32; elems.div_ceil(k) * k];
    for rank in 0..n {
        let stream = TensorStream::from_f32(
            &[synthetic_gradient(rank, elems)],
            NumericMode::Fixed32,
            SCALING,
            k,
        )
        .unwrap();
        for chunk in 0..stream.total_chunks() {
            let off = chunk as usize * k;
            match stream.payload_chunk(off as u64).unwrap() {
                Payload::I32(v) => {
                    for (acc, x) in int_sum[off..].iter_mut().zip(&v) {
                        *acc = acc.saturating_add(*x);
                    }
                }
                other => panic!("Fixed32 stream produced {other:?}"),
            }
        }
    }
    let mut result =
        TensorStream::from_f32(&[vec![0.0; elems]], NumericMode::Fixed32, SCALING, k).unwrap();
    for chunk in 0..result.total_chunks() {
        let off = chunk as usize * k;
        result
            .write_result(off as u64, &Payload::I32(int_sum[off..off + k].to_vec()))
            .unwrap();
    }
    result.result_tensors_f32(1).unwrap().remove(0)
}

fn assert_bit_identical(label: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: elem {i} differs ({a} vs {b})"
        );
    }
}

/// One (n, k, pool_size, elems, cores) configuration through all three
/// paths.
fn differential(n: usize, k: usize, pool_size: usize, elems: usize, cores: usize) {
    let label = format!("n={n} k={k} s={pool_size} elems={elems} cores={cores}");
    let reference = sequential_reference(n, elems, k);

    // Path 1: multi-core sharded threaded runner.
    let mut sc = SwitchMLScenario::new(n, elems);
    sc.proto.k = k;
    sc.proto.pool_size = pool_size;
    sc.proto.scaling_factor = SCALING;
    let updates: Vec<Vec<Vec<f32>>> = (0..n)
        .map(|rank| vec![synthetic_gradient(rank, elems)])
        .collect();
    let cfg = RunConfig {
        n_cores: cores,
        ..RunConfig::default()
    };
    let report =
        run_allreduce_sharded(sharded_channel_fabric(n, cores), updates, &sc.proto, &cfg).unwrap();
    for (w, tensors) in report.results.iter().enumerate() {
        assert_bit_identical(
            &format!("{label}: sharded worker {w}"),
            &tensors[0],
            &reference,
        );
    }

    // Path 2: discrete-event simulation.
    let outcome = run_switchml(&sc).unwrap();
    assert!(outcome.verified, "{label}: netsim run failed verification");
    assert!(
        !outcome.worker0_results.is_empty(),
        "{label}: netsim run captured no results"
    );
    assert_bit_identical(
        &format!("{label}: netsim worker 0"),
        &outcome.worker0_results[0],
        &reference,
    );
}

/// One (n, k, pool_size, elems, cores, burst) configuration run over
/// real UDP sockets *and* the in-memory channel fabric: both sharded
/// runs and the sequential reference must agree bit-for-bit. This
/// pins down the whole batched UDP data plane — GSO train grouping,
/// GRO segmentation, burst receive, and sender resolution — as unable
/// to change a single bit of Fixed32 arithmetic.
fn udp_differential(
    n: usize,
    k: usize,
    pool_size: usize,
    elems: usize,
    cores: usize,
    burst: usize,
) {
    let label = format!("n={n} k={k} s={pool_size} elems={elems} cores={cores} burst={burst}");
    let reference = sequential_reference(n, elems, k);
    let mut sc = SwitchMLScenario::new(n, elems);
    sc.proto.k = k;
    sc.proto.pool_size = pool_size;
    sc.proto.scaling_factor = SCALING;
    let updates: Vec<Vec<Vec<f32>>> = (0..n)
        .map(|rank| vec![synthetic_gradient(rank, elems)])
        .collect();
    let cfg = RunConfig {
        n_cores: cores,
        burst,
        ..RunConfig::default()
    };
    let udp = run_allreduce_sharded(
        udp_fabric(sharded_fabric_size(n, cores)).unwrap(),
        updates.clone(),
        &sc.proto,
        &cfg,
    )
    .unwrap();
    let chan =
        run_allreduce_sharded(sharded_channel_fabric(n, cores), updates, &sc.proto, &cfg).unwrap();
    for w in 0..n {
        assert_bit_identical(
            &format!("{label}: udp worker {w} vs reference"),
            &udp.results[w][0],
            &reference,
        );
        assert_bit_identical(
            &format!("{label}: udp worker {w} vs channel"),
            &udp.results[w][0],
            &chan.results[w][0],
        );
    }
}

#[test]
fn udp_sharded_two_workers_two_cores_burst8() {
    udp_differential(2, 8, 4, 96, 2, 8);
}

#[test]
fn udp_sharded_three_workers_two_cores_burst32_ragged_tail() {
    // 333 elements over k = 16 leaves a 13-element final chunk; the
    // zero-padded tail must survive the GSO/GRO path bit-for-bit too.
    udp_differential(3, 16, 8, 333, 2, 32);
}

#[test]
fn udp_single_core_burst1_matches_reference() {
    // burst = 1 keeps the scalar send/receive path honest.
    udp_differential(2, 8, 4, 64, 1, 1);
}

#[test]
fn two_workers_two_cores() {
    differential(2, 8, 4, 64, 2);
}

#[test]
fn three_workers_three_cores_ragged_tail() {
    // 333 elements over k = 16 leaves a 13-element final chunk: the
    // zero-padded tail must also agree bit-for-bit.
    differential(3, 16, 8, 333, 3);
}

#[test]
fn four_workers_deep_pool() {
    differential(4, 32, 16, 256, 2);
}

#[test]
fn single_core_matches_multi_core() {
    // Same configuration, different core counts: core sharding is a
    // pure partition of the slot space and must not change arithmetic.
    let n = 3;
    let elems = 128;
    let k = 8;
    let mut sc = SwitchMLScenario::new(n, elems);
    sc.proto.k = k;
    sc.proto.pool_size = 8;
    sc.proto.scaling_factor = SCALING;
    let updates: Vec<Vec<Vec<f32>>> = (0..n)
        .map(|rank| vec![synthetic_gradient(rank, elems)])
        .collect();
    let mut runs = Vec::new();
    for cores in [1, 2, 4] {
        let cfg = RunConfig {
            n_cores: cores,
            ..RunConfig::default()
        };
        let report = run_allreduce_sharded(
            sharded_channel_fabric(n, cores),
            updates.clone(),
            &sc.proto,
            &cfg,
        )
        .unwrap();
        runs.push(report.results[0][0].clone());
    }
    assert_bit_identical("1 vs 2 cores", &runs[1], &runs[0]);
    assert_bit_identical("1 vs 4 cores", &runs[2], &runs[0]);
}
