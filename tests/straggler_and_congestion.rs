//! Self-clocking under stragglers and congestion (§6 "Lack of
//! congestion control").
//!
//! The paper argues the pool-based flow control needs no separate
//! congestion control: "the system would self-clock to the rate of the
//! slowest worker". These tests build asymmetric topologies in netsim
//! and check exactly that.

use switchml::baselines::switchml::{SlotRouter, SwitchMLSwitchNode, SwitchMLWorkerNode};
use switchml::core::config::Protocol;
use switchml::core::switch::reliable::ReliableSwitch;
use switchml::core::worker::stream::TensorStream;
use switchml::core::worker::Worker;
use switchml::netsim::prelude::*;

fn build_and_run(n: usize, elems: usize, slow_worker: Option<(usize, u64)>) -> SimReport {
    let proto = Protocol {
        n_workers: n,
        k: 32,
        pool_size: 64,
        rto_ns: 10_000_000, // generous: stragglers are slow, not lossy
        scaling_factor: 1000.0,
        ..Protocol::default()
    };
    let fast = LinkSpec::clean(10_000_000_000, Nanos::from_micros(1));
    let mut topo = Topology::new();
    let sw = topo.add_node();
    let ws: Vec<NodeId> = (0..n)
        .map(|i| {
            let w = topo.add_node();
            let spec = match slow_worker {
                Some((idx, bw)) if idx == i => LinkSpec::clean(bw, Nanos::from_micros(1)),
                _ => fast,
            };
            topo.add_duplex_link(w, sw, spec);
            w
        })
        .collect();
    let mut sim = Simulator::new(topo, SimConfig::default());
    for (rank, &id) in ws.iter().enumerate() {
        let data = vec![rank as f32 + 1.0; elems];
        let stream =
            TensorStream::from_f32(&[data], proto.mode, proto.scaling_factor, proto.k).unwrap();
        let worker = Worker::new(rank as u16, &proto, stream).unwrap();
        sim.bind(
            id,
            Box::new(SwitchMLWorkerNode::new(
                worker,
                SlotRouter::Single(sw),
                Nanos(90),
            )),
        );
    }
    sim.bind(
        sw,
        Box::new(SwitchMLSwitchNode::new(
            ReliableSwitch::new(&proto).unwrap(),
            ws.clone(),
            1,
            Nanos::ZERO,
        )),
    );
    let report = sim.run();
    assert!(report.finished, "run must converge");
    // Verify the sum on worker 0.
    let node = sim
        .node(ws[0])
        .as_any()
        .downcast_ref::<SwitchMLWorkerNode>()
        .unwrap();
    let got = node.worker().stream().result_tensors_f32(1).unwrap();
    let expect: f32 = (1..=n).map(|x| x as f32).sum();
    for &x in &got[0] {
        assert!((x - expect).abs() < 0.05, "{x} vs {expect}");
    }
    report
}

#[test]
fn system_clocks_to_slowest_worker() {
    let elems = 64_000;
    let all_fast = build_and_run(4, elems, None);
    // One worker on a 1 Gbps link: ~10× slower than the rest.
    let one_slow = build_and_run(4, elems, Some((2, 1_000_000_000)));

    let fast_tat = all_fast.last_completion().unwrap();
    let slow_tat = one_slow.last_completion().unwrap();
    // The whole job slows to ≈ the straggler's line rate…
    assert!(
        slow_tat.0 > 7 * fast_tat.0,
        "job did not self-clock to the straggler: {fast_tat} vs {slow_tat}"
    );
    // …but stays loss-free: self-clocking, not timeouts, paces it.
    assert_eq!(one_slow.counters.dropped_queue, 0);
    assert_eq!(one_slow.counters.dropped_loss, 0);
}

#[test]
fn congested_downlink_throttles_senders_without_collapse() {
    // A 2.5× slower downlink to one worker congests the result stream;
    // the self-clocked senders adapt; nothing is dropped for capacity.
    let elems = 32_000;
    let report = build_and_run(3, elems, Some((0, 4_000_000_000)));
    assert_eq!(report.counters.dropped_queue, 0);
}

#[test]
fn straggler_does_not_change_results() {
    // Covered in build_and_run's verification; this case pins a more
    // extreme asymmetry (100 Mbps straggler).
    build_and_run(2, 4_000, Some((1, 100_000_000)));
}
