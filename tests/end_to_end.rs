//! Cross-crate integration: the same aggregation, three drivers.
//!
//! The in-process virtual-clock harness, the timing-accurate netsim
//! runner and the threaded channel transport all drive the same
//! sans-IO state machines — so for identical inputs they must produce
//! identical (bit-exact) aggregated tensors, and those must respect
//! Appendix C's Theorem 1 error bound against the exact float sum.

use switchml::baselines::{run_switchml, synthetic_gradient, SwitchMLScenario};
use switchml::core::agg::allreduce;
use switchml::core::config::Protocol;
use switchml::core::quant::aggregation_error_bound;
use switchml::transport::channel::channel_fabric;
use switchml::transport::runner::{run_allreduce, RunConfig};

fn proto(n: usize) -> Protocol {
    Protocol {
        n_workers: n,
        k: 32,
        pool_size: 16,
        rto_ns: 2_000_000,
        scaling_factor: 1_000_000.0,
        ..Protocol::default()
    }
}

#[test]
fn three_drivers_agree_bit_exactly() {
    let n = 4;
    let elems = 2048;
    let updates: Vec<Vec<Vec<f32>>> = (0..n).map(|w| vec![synthetic_gradient(w, elems)]).collect();
    let p = proto(n);

    // Driver 1: in-process virtual clock.
    let inproc = allreduce(&updates, &p).unwrap();

    // Driver 2: real threads over channels.
    let ports = channel_fabric(n + 1);
    let threaded = run_allreduce(ports, updates.clone(), &p, &RunConfig::default()).unwrap();

    // Integer aggregation is deterministic: results are bit-exact
    // across drivers and across workers.
    for w in 0..n {
        assert_eq!(inproc[0], threaded.results[w][0], "worker {w} differs");
    }

    // Driver 3: netsim (its runner generates the same synthetic
    // gradients internally and self-verifies).
    let mut sc = SwitchMLScenario::new(n, elems);
    sc.proto = p.clone();
    let sim = run_switchml(&sc).unwrap();
    assert!(sim.verified);
}

#[test]
fn theorem1_bound_holds_end_to_end() {
    let n = 8;
    let elems = 512;
    // Adversarially non-uniform values (different magnitudes/signs).
    let updates: Vec<Vec<Vec<f32>>> = (0..n)
        .map(|w| {
            vec![(0..elems)
                .map(|i| ((w * 37 + i * 13) % 97) as f32 * 0.093 - 4.5)
                .collect()]
        })
        .collect();
    let p = proto(n);
    let got = allreduce(&updates, &p).unwrap();
    let bound = aggregation_error_bound(n, p.scaling_factor) as f32;
    for i in 0..elems {
        let exact: f64 = updates.iter().map(|u| u[0][i] as f64).sum();
        let err = (got[0][i] as f64 - exact).abs() as f32;
        assert!(
            err <= bound + 1e-4,
            "elem {i}: err {err} exceeds Theorem 1 bound {bound}"
        );
    }
}

#[test]
fn multi_tensor_stream_preserves_boundaries() {
    // Appendix B: many tensors reduced as one virtual stream; results
    // must land back in the right tensors even when chunk boundaries
    // straddle tensor boundaries.
    let n = 2;
    let shapes = [33usize, 1, 7, 129, 64]; // deliberately k-unaligned
    let updates: Vec<Vec<Vec<f32>>> = (0..n)
        .map(|w| {
            shapes
                .iter()
                .enumerate()
                .map(|(t, &len)| (0..len).map(|i| (w + t + i) as f32 * 0.01).collect())
                .collect()
        })
        .collect();
    let got = allreduce(&updates, &proto(n)).unwrap();
    assert_eq!(got.len(), shapes.len());
    for (t, &len) in shapes.iter().enumerate() {
        assert_eq!(got[t].len(), len, "tensor {t} length");
        for (i, &g) in got[t].iter().enumerate() {
            let exact: f32 = (0..n).map(|w| (w + t + i) as f32 * 0.01).sum();
            assert!((g - exact).abs() < 1e-3, "tensor {t} elem {i}");
        }
    }
}

#[test]
fn f16_wire_mode_end_to_end() {
    use switchml::core::config::NumericMode;
    let n = 4;
    let updates: Vec<Vec<Vec<f32>>> = (0..n)
        .map(|w| {
            vec![(0..200)
                .map(|i| (w as f32 + 1.0) * 0.5 + (i % 3) as f32 * 0.25)
                .collect()]
        })
        .collect();
    let p = Protocol {
        mode: NumericMode::Float16,
        scaling_factor: 256.0,
        ..proto(n)
    };
    let got = allreduce(&updates, &p).unwrap();
    for i in 0..200 {
        let exact: f32 = updates.iter().map(|u| u[0][i]).sum();
        // f16 wire precision: scaled values ≤ ~1000 → abs error ≤ n·0.5/f·scale…
        assert!(
            (got[0][i] - exact).abs() < 0.05,
            "elem {i}: {} vs {exact}",
            got[0][i]
        );
    }
}

#[test]
fn pool_tuning_feeds_protocol() {
    // §3.6 end to end: tune s from the link's BDP, validate against
    // the pipeline model, then run with the tuned pool.
    use switchml::core::switch::pipeline::PipelineModel;
    use switchml::core::tune_pool_size;
    let s = tune_pool_size(10_000_000_000, 15_000, 32);
    assert_eq!(s, 128); // the paper's 10 Gbps deployment value
    let p = Protocol {
        n_workers: 8,
        pool_size: s,
        ..Protocol::default()
    };
    PipelineModel::default().validate(&p).unwrap();
    let updates: Vec<Vec<Vec<f32>>> = (0..8).map(|w| vec![vec![w as f32; 64]]).collect();
    let got = allreduce(&updates, &p).unwrap();
    assert!((got[0][0] - 28.0).abs() < 1e-3); // 0+1+…+7
}
