//! Integration tests for the built-out extensions: Appendix D masking
//! through the full lossy protocol, §6 multi-tenancy, and a
//! three-level aggregation tree (deeper than the paper's two-level
//! sketch).

use switchml::core::config::Protocol;
use switchml::core::packet::{Packet, PacketKind, Payload, PoolVersion};
use switchml::core::quant::masking::Masker;
use switchml::core::switch::hierarchy::{HierAction, HierarchicalSwitch, Role};
use switchml::core::switch::reliable::ReliableSwitch;
use switchml::core::switch::SwitchAction;

/// Appendix D masking composed with Algorithm 3's loss recovery: a
/// retransmitted masked update must not double-apply its mask (the
/// seen-bitmap guarantees each mask enters the sum exactly once, which
/// is precisely what cancellation needs).
#[test]
fn masking_survives_retransmission_and_slot_reuse() {
    let n = 3;
    let k = 4;
    let proto = Protocol {
        n_workers: n,
        k,
        pool_size: 1,
        wrapping_add: true,
        ..Protocol::default()
    };
    let mut sw = ReliableSwitch::new(&proto).unwrap();
    let seed = 0xFEED;

    let masked = |w: usize, off: u64, base: i32| -> Vec<i32> {
        let mut v = vec![base + w as i32; k];
        Masker::new(w, n, seed).mask_chunk(off, &mut v);
        v
    };
    let upd = |w: usize, ver: PoolVersion, off: u64, v: Vec<i32>| Packet {
        kind: PacketKind::Update,
        wid: w as u16,
        ver,
        idx: 0,
        off,
        job: 0,
        epoch: 0,
        retransmission: false,
        payload: Payload::I32(v),
    };

    // Phase 0 at offset 0: worker 0 "retransmits" (duplicate) before
    // completion — the duplicate's mask must be ignored.
    let v0 = PoolVersion::V0;
    sw.on_packet(upd(0, v0, 0, masked(0, 0, 10))).unwrap();
    sw.on_packet(upd(0, v0, 0, masked(0, 0, 10))).unwrap(); // dup
    sw.on_packet(upd(1, v0, 0, masked(1, 0, 10))).unwrap();
    let r = match sw.on_packet(upd(2, v0, 0, masked(2, 0, 10))).unwrap() {
        SwitchAction::Multicast(p) => p.payload.to_i32(),
        other => panic!("{other:?}"),
    };
    // Sum of (10+w) over workers = 33 in every element; masks cancel.
    assert_eq!(r, vec![33; k]);

    // Workers 0 and 1 advance to the next phase (same slot, flipped
    // pool, fresh offsets → fresh masks). Worker 2 missed the result.
    let v1 = PoolVersion::V1;
    let off = k as u64;
    sw.on_packet(upd(0, v1, off, masked(0, off, 100))).unwrap();
    sw.on_packet(upd(1, v1, off, masked(1, off, 100))).unwrap();

    // Worker 2's retransmission of its phase-0 update (it never sent
    // v1 — Algorithm 4's one-phase-lag invariant) hits the shadow
    // copy: the switch serves the *unmasked* phase-0 aggregate.
    match sw.on_packet(upd(2, v0, 0, masked(2, 0, 10))).unwrap() {
        SwitchAction::Unicast(wid, p) => {
            assert_eq!(wid, 2);
            assert_eq!(p.payload.to_i32(), vec![33; k]);
        }
        other => panic!("{other:?}"),
    }

    // Worker 2 then joins phase 1 and completes it; masks cancel again.
    let r = match sw.on_packet(upd(2, v1, off, masked(2, off, 100))).unwrap() {
        SwitchAction::Multicast(p) => p.payload.to_i32(),
        other => panic!("{other:?}"),
    };
    assert_eq!(r, vec![303; k]);
}

/// Three aggregation layers: workers → leaf switches → mid switches →
/// root. The paper sketches arbitrary-depth trees ("a very large n …
/// would require a hierarchy with H > 3"); the composition rules must
/// hold at any depth.
#[test]
fn three_level_hierarchy_aggregates() {
    let k = 2;
    let proto = |n: usize| Protocol {
        n_workers: n,
        k,
        pool_size: 1,
        ..Protocol::default()
    };
    // 2 leaves per mid, 2 mids: 8 workers total, 2 per leaf.
    let mut leaves: Vec<HierarchicalSwitch> = (0..4)
        .map(|i| {
            HierarchicalSwitch::new(
                &proto(2),
                Role::Intermediate {
                    upstream_wid: (i % 2) as u16,
                },
            )
            .unwrap()
        })
        .collect();
    let mut mids: Vec<HierarchicalSwitch> = (0..2)
        .map(|i| {
            HierarchicalSwitch::new(
                &proto(2),
                Role::Intermediate {
                    upstream_wid: i as u16,
                },
            )
            .unwrap()
        })
        .collect();
    let mut root = HierarchicalSwitch::new(&proto(2), Role::Root).unwrap();

    let upd = |w: u16, val: i32| Packet {
        kind: PacketKind::Update,
        wid: w,
        ver: PoolVersion::V0,
        idx: 0,
        off: 0,
        job: 0,
        epoch: 0,
        retransmission: false,
        payload: Payload::I32(vec![val; k]),
    };

    // Drive bottom-up by hand: each leaf gets 2 workers' updates.
    let mut to_mid: Vec<Vec<Packet>> = vec![Vec::new(), Vec::new()];
    for (li, leaf) in leaves.iter_mut().enumerate() {
        for w in 0..2u16 {
            let val = (li * 2 + w as usize + 1) as i32; // worker values 1..8
            for act in leaf.on_update_from_below(upd(w, val)).unwrap() {
                match act {
                    HierAction::SendUp(p) => to_mid[li / 2].push(p),
                    other => panic!("leaf emitted {other:?}"),
                }
            }
        }
    }
    let mut to_root = Vec::new();
    for (mi, mid) in mids.iter_mut().enumerate() {
        for p in to_mid[mi].drain(..) {
            for act in mid.on_update_from_below(p).unwrap() {
                match act {
                    HierAction::SendUp(p) => to_root.push(p),
                    other => panic!("mid emitted {other:?}"),
                }
            }
        }
    }
    let mut down = Vec::new();
    for p in to_root {
        for act in root.on_update_from_below(p).unwrap() {
            match act {
                HierAction::MulticastDown(p) => down.push(p),
                other => panic!("root emitted {other:?}"),
            }
        }
    }
    assert_eq!(down.len(), 1, "root multicasts once");
    // 1+2+…+8 = 36.
    assert_eq!(down[0].payload.to_i32(), vec![36; k]);

    // Results cascade down: mids re-multicast, then leaves.
    let mut to_leaves = Vec::new();
    for mid in mids.iter_mut() {
        for act in mid.on_result_from_above(down[0].clone()).unwrap() {
            match act {
                HierAction::MulticastDown(p) => to_leaves.push(p),
                other => panic!("{other:?}"),
            }
        }
    }
    assert_eq!(to_leaves.len(), 2);
    for (li, leaf) in leaves.iter_mut().enumerate() {
        let acts = leaf
            .on_result_from_above(to_leaves[li / 2].clone())
            .unwrap();
        assert!(matches!(
            &acts[..],
            [HierAction::MulticastDown(p)] if p.payload.to_i32() == vec![36; k]
        ));
    }
}

/// Two tenants share a switch through the §6 admission mechanism while
/// the full worker machinery drives one of them.
#[test]
fn multijob_isolation_under_protocol_traffic() {
    use switchml::core::switch::multijob::MultiJobSwitch;
    use switchml::core::switch::pipeline::PipelineModel;
    use switchml::core::worker::stream::TensorStream;
    use switchml::core::worker::Worker;

    let proto_a = Protocol {
        n_workers: 2,
        k: 4,
        pool_size: 4,
        scaling_factor: 100.0,
        ..Protocol::default()
    };
    let proto_b = Protocol {
        n_workers: 3,
        k: 4,
        pool_size: 4,
        ..Protocol::default()
    };
    let mut sw = MultiJobSwitch::new(PipelineModel::default());
    sw.admit(1, &proto_a).unwrap();
    sw.admit(2, &proto_b).unwrap();

    // Job 1: full worker state machines (job id stamped on packets).
    let mk = |w: u16| {
        let data = vec![w as f32 + 1.0; 16];
        let stream =
            TensorStream::from_f32(&[data], proto_a.mode, proto_a.scaling_factor, proto_a.k)
                .unwrap();
        Worker::new(w, &proto_a, stream).unwrap()
    };
    let mut w0 = mk(0);
    let mut w1 = mk(1);
    let stamp = |mut p: Packet| {
        p.job = 1;
        p
    };
    let mut inflight: Vec<Packet> = Vec::new();
    inflight.extend(w0.start(0).unwrap().into_iter().map(stamp));
    inflight.extend(w1.start(0).unwrap().into_iter().map(stamp));
    // Interleave a job-2 packet mid-stream; it must not disturb job 1.
    let mut j2 = Packet::update(0, PoolVersion::V0, 0, 0, vec![9; 4]);
    j2.job = 2;
    sw.on_packet(j2).unwrap();

    while let Some(pkt) = inflight.pop() {
        match sw.on_packet(pkt).unwrap() {
            SwitchAction::Multicast(r) => {
                inflight.extend(w0.on_result(&r, 0).unwrap().into_iter().map(stamp));
                inflight.extend(w1.on_result(&r, 0).unwrap().into_iter().map(stamp));
            }
            SwitchAction::Unicast(_, _) => panic!("no retx expected"),
            SwitchAction::Drop => {}
        }
    }
    assert!(w0.is_done() && w1.is_done());
    let r = w0.into_results(1).unwrap();
    assert!((r[0][0] - 3.0).abs() < 0.05); // 1 + 2
    assert_eq!(sw.stats(1).unwrap().completions, 4);
    assert_eq!(sw.stats(2).unwrap().completions, 0); // job 2 still waiting
}
