//! Property-based tests over the full protocol stack.

use proptest::prelude::*;
use switchml::core::agg::{allreduce, run_inprocess, HarnessConfig, Hop};
use switchml::core::config::{NumericMode, Protocol};
use switchml::core::packet::{Packet, PacketKind, Payload, PoolVersion};
use switchml::core::quant::aggregation_error_bound;

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<bool>(),
        any::<u16>(),
        any::<bool>(),
        any::<u32>(),
        any::<u64>(),
        any::<u8>(),
        any::<bool>(),
        prop::collection::vec(any::<i32>(), 0..64),
    )
        .prop_map(|(result, wid, ver, idx, off, job, retx, vals)| Packet {
            kind: if result {
                PacketKind::Result
            } else {
                PacketKind::Update
            },
            wid,
            ver: PoolVersion::from_bit(ver),
            idx,
            off,
            job,
            retransmission: retx,
            payload: Payload::I32(vals),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wire format: encode/decode is the identity for any field values.
    #[test]
    fn packet_roundtrip(pkt in arb_packet()) {
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(decoded, pkt);
    }

    /// Wire format: any single-byte mutation is rejected.
    #[test]
    fn packet_bitflip_rejected(pkt in arb_packet(), pos in any::<u16>(), mask in 1u8..=255) {
        let mut bytes = pkt.encode().to_vec();
        let pos = pos as usize % bytes.len();
        bytes[pos] ^= mask;
        prop_assert!(Packet::decode(&bytes).is_err());
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Packet::decode(&data);
    }

    /// Lossless all-reduce matches the exact sum within Theorem 1.
    #[test]
    fn allreduce_within_theorem1(
        n in 1usize..6,
        elems in 1usize..80,
        seed in any::<u32>(),
    ) {
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| {
                        let h = (w as u32)
                            .wrapping_mul(2654435761)
                            .wrapping_add((i as u32).wrapping_mul(40503))
                            .wrapping_add(seed);
                        (h % 2000) as f32 * 0.005 - 5.0
                    })
                    .collect()]
            })
            .collect();
        let proto = Protocol {
            n_workers: n,
            k: 4,
            pool_size: 4,
            scaling_factor: 100_000.0,
            ..Protocol::default()
        };
        let got = allreduce(&updates, &proto).unwrap();
        let bound = aggregation_error_bound(n, proto.scaling_factor) as f32 + 1e-4;
        for i in 0..elems {
            let exact: f32 = updates.iter().map(|u| u[0][i]).sum();
            prop_assert!((got[0][i] - exact).abs() <= bound,
                "elem {}: {} vs {}", i, got[0][i], exact);
        }
    }

    /// Under arbitrary deterministic loss patterns (bounded rate), the
    /// protocol converges, every worker sees the identical result, and
    /// it equals the exact sum.
    #[test]
    fn allreduce_survives_random_loss(
        n in 2usize..5,
        elems in 8usize..64,
        seed in any::<u64>(),
        loss_num in 0u64..30, // loss probability = loss_num / 100
    ) {
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| vec![(0..elems).map(|i| (w * 3 + i) as f32 * 0.125).collect()])
            .collect();
        let proto = Protocol {
            n_workers: n,
            k: 4,
            pool_size: 4,
            rto_ns: 50_000,
            scaling_factor: 10_000.0,
            ..Protocol::default()
        };
        // Hash-based deterministic "random" drops so the case is
        // perfectly reproducible from the proptest seed.
        let mut counter = 0u64;
        let harness = HarnessConfig { latency_ns: 500, deadline_ns: 120_000_000_000 };
        let out = run_inprocess(&updates, &proto, &harness, |_, _| {
            counter = counter.wrapping_mul(6364136223846793005).wrapping_add(seed | 1);
            (counter >> 33) % 100 < loss_num
        }).unwrap();
        for w in 1..n {
            prop_assert_eq!(&out.results[0], &out.results[w]);
        }
        for i in 0..elems {
            let exact: f32 = updates.iter().map(|u| u[0][i]).sum();
            prop_assert!((out.results[0][0][i] - exact).abs() < 0.01);
        }
    }

    /// The f16 wire mode stays within its coarser precision envelope.
    #[test]
    fn f16_mode_bounded_error(
        n in 2usize..5,
        elems in 1usize..40,
        seed in any::<u32>(),
    ) {
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| ((w as u32 * 7 + i as u32 * 3 + seed) % 100) as f32 * 0.02 - 1.0)
                    .collect()]
            })
            .collect();
        let f = 1000.0;
        let proto = Protocol {
            n_workers: n,
            k: 4,
            pool_size: 2,
            mode: NumericMode::Float16,
            scaling_factor: f,
            ..Protocol::default()
        };
        let got = allreduce(&updates, &proto).unwrap();
        // Scaled magnitudes ≤ 1000 → f16 quantization step ≤ 1.0 per
        // contribution; aggregate error ≤ n·1/f plus rounding.
        let tol = n as f32 * 1.0 / f as f32 + 2e-3;
        for i in 0..elems {
            let exact: f32 = updates.iter().map(|u| u[0][i]).sum();
            prop_assert!((got[0][i] - exact).abs() <= tol,
                "elem {}: {} vs {} (tol {})", i, got[0][i], exact, tol);
        }
    }

    /// Deterministic loss + same seed ⇒ identical outcome (stats and
    /// results), across the whole stack.
    #[test]
    fn loss_runs_are_reproducible(seed in any::<u64>()) {
        let updates: Vec<Vec<Vec<f32>>> =
            (0..3).map(|w| vec![vec![w as f32 + 0.5; 32]]).collect();
        let proto = Protocol {
            n_workers: 3,
            k: 4,
            pool_size: 2,
            rto_ns: 50_000,
            scaling_factor: 1000.0,
            ..Protocol::default()
        };
        let run = || {
            let mut c = 0u64;
            run_inprocess(&updates, &proto, &HarnessConfig::default(), |_, hop| {
                c = c.wrapping_mul(25214903917).wrapping_add(seed | 1);
                hop == Hop::Up && (c >> 30) % 10 == 0
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.results, b.results);
        prop_assert_eq!(a.duration_ns, b.duration_ns);
        prop_assert_eq!(a.switch_stats, b.switch_stats);
    }
}
