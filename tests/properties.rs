//! Property-based tests over the full protocol stack.

use proptest::prelude::*;
use switchml::core::agg::{allreduce, run_inprocess, HarnessConfig, Hop};
use switchml::core::config::{NumericMode, Protocol, RtoPolicy};
use switchml::core::packet::{Packet, PacketKind, Payload, PoolVersion};
use switchml::core::quant::aggregation_error_bound;
use switchml::core::switch::pipeline::PipelineModel;
use switchml::ctrl::controller::{Action, Controller, CtrlConfig, Phase};
use switchml::ctrl::msg::{bitmap_and, chunk_bitmap, CtrlMsg};

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<bool>(),
        any::<u16>(),
        any::<bool>(),
        any::<u32>(),
        any::<u64>(),
        any::<u8>(),
        any::<u8>(),
        any::<bool>(),
        prop::collection::vec(any::<i32>(), 0..64),
    )
        .prop_map(
            |(result, wid, ver, idx, off, job, epoch, retx, vals)| Packet {
                kind: if result {
                    PacketKind::Result
                } else {
                    PacketKind::Update
                },
                wid,
                ver: PoolVersion::from_bit(ver),
                idx,
                off,
                job,
                epoch,
                retransmission: retx,
                payload: Payload::I32(vals),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wire format: encode/decode is the identity for any field values.
    #[test]
    fn packet_roundtrip(pkt in arb_packet()) {
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(decoded, pkt);
    }

    /// Wire format: any single-byte mutation is rejected.
    #[test]
    fn packet_bitflip_rejected(pkt in arb_packet(), pos in any::<u16>(), mask in 1u8..=255) {
        let mut bytes = pkt.encode().to_vec();
        let pos = pos as usize % bytes.len();
        bytes[pos] ^= mask;
        prop_assert!(Packet::decode(&bytes).is_err());
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Packet::decode(&data);
    }

    /// Lossless all-reduce matches the exact sum within Theorem 1.
    #[test]
    fn allreduce_within_theorem1(
        n in 1usize..6,
        elems in 1usize..80,
        seed in any::<u32>(),
    ) {
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| {
                        let h = (w as u32)
                            .wrapping_mul(2654435761)
                            .wrapping_add((i as u32).wrapping_mul(40503))
                            .wrapping_add(seed);
                        (h % 2000) as f32 * 0.005 - 5.0
                    })
                    .collect()]
            })
            .collect();
        let proto = Protocol {
            n_workers: n,
            k: 4,
            pool_size: 4,
            scaling_factor: 100_000.0,
            ..Protocol::default()
        };
        let got = allreduce(&updates, &proto).unwrap();
        let bound = aggregation_error_bound(n, proto.scaling_factor) as f32 + 1e-4;
        for i in 0..elems {
            let exact: f32 = updates.iter().map(|u| u[0][i]).sum();
            prop_assert!((got[0][i] - exact).abs() <= bound,
                "elem {}: {} vs {}", i, got[0][i], exact);
        }
    }

    /// Under arbitrary deterministic loss patterns (bounded rate), the
    /// protocol converges, every worker sees the identical result, and
    /// it equals the exact sum.
    #[test]
    fn allreduce_survives_random_loss(
        n in 2usize..5,
        elems in 8usize..64,
        seed in any::<u64>(),
        loss_num in 0u64..30, // loss probability = loss_num / 100
    ) {
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| vec![(0..elems).map(|i| (w * 3 + i) as f32 * 0.125).collect()])
            .collect();
        let proto = Protocol {
            n_workers: n,
            k: 4,
            pool_size: 4,
            rto_ns: 50_000,
            scaling_factor: 10_000.0,
            ..Protocol::default()
        };
        // Hash-based deterministic "random" drops so the case is
        // perfectly reproducible from the proptest seed.
        let mut counter = 0u64;
        let harness = HarnessConfig { latency_ns: 500, deadline_ns: 120_000_000_000 };
        let out = run_inprocess(&updates, &proto, &harness, |_, _| {
            counter = counter.wrapping_mul(6364136223846793005).wrapping_add(seed | 1);
            (counter >> 33) % 100 < loss_num
        }).unwrap();
        for w in 1..n {
            prop_assert_eq!(&out.results[0], &out.results[w]);
        }
        for i in 0..elems {
            let exact: f32 = updates.iter().map(|u| u[0][i]).sum();
            prop_assert!((out.results[0][0][i] - exact).abs() < 0.01);
        }
    }

    /// The f16 wire mode stays within its coarser precision envelope.
    #[test]
    fn f16_mode_bounded_error(
        n in 2usize..5,
        elems in 1usize..40,
        seed in any::<u32>(),
    ) {
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| ((w as u32 * 7 + i as u32 * 3 + seed) % 100) as f32 * 0.02 - 1.0)
                    .collect()]
            })
            .collect();
        let f = 1000.0;
        let proto = Protocol {
            n_workers: n,
            k: 4,
            pool_size: 2,
            mode: NumericMode::Float16,
            scaling_factor: f,
            ..Protocol::default()
        };
        let got = allreduce(&updates, &proto).unwrap();
        // Scaled magnitudes ≤ 1000 → f16 quantization step ≤ 1.0 per
        // contribution; aggregate error ≤ n·1/f plus rounding.
        let tol = n as f32 * 1.0 / f as f32 + 2e-3;
        for i in 0..elems {
            let exact: f32 = updates.iter().map(|u| u[0][i]).sum();
            prop_assert!((got[0][i] - exact).abs() <= tol,
                "elem {}: {} vs {} (tol {})", i, got[0][i], exact, tol);
        }
    }

    /// Any sequence of join / crash membership transitions keeps the
    /// control plane and the switch SRAM ledger consistent: the
    /// controller never declares a live worker dead, its alive count
    /// tracks the crash model exactly, every `Reconfigure` frontier is
    /// the AND of the survivors' acked bitmaps, and the ledger's
    /// committed bytes always equal the recomputed cost of the jobs it
    /// holds — reaching exactly zero at completion.
    #[test]
    fn membership_transitions_keep_ledger_consistent(
        n in 2usize..6,
        steps in prop::collection::vec(any::<u8>(), 10..120),
    ) {
        const CHUNKS: u64 = 16;
        let cfg = CtrlConfig {
            heartbeat_interval_ns: 10,
            failure_timeout_ns: 50,
            probe_rto_ns: 10,
            probe_policy: RtoPolicy::ExponentialBackoff { max_ns: 40 },
            probe_limit: 2,
        };
        let pipeline = PipelineModel::default();
        let mut ctrl = Controller::new(cfg, vec![pipeline.clone()]);
        let proto = Protocol {
            n_workers: n,
            k: 4,
            pool_size: 4,
            scaling_factor: 1e6,
            ..Protocol::default()
        };
        ctrl.create_job(0, proto, 16.0, CHUNKS, 0).unwrap();

        // Each worker always acks a quiesce with the same bitmap, so
        // the expected frontier is a pure function of the survivors.
        let ack_bitmap =
            |w: usize| chunk_bitmap(CHUNKS, |c| !(c + w as u64).is_multiple_of(3));

        let mut t: u64 = 0;
        let mut registered = 0usize;
        let mut crashed = vec![false; n]; // what we did to each worker
        let mut declared = vec![false; n]; // what the controller knows
        let mut wid_of: Vec<u16> = (0..n as u16).collect();
        let mut reconfigs = 0u32;
        let mut complete = false;

        // Action batches are checked one call at a time so the model
        // is current when a death or reconfiguration lands.
        macro_rules! absorb {
            ($acts:expr) => {
                for a in $acts {
                    match a {
                        Action::WorkerDead { job: 0, wid } => {
                            let w = (0..n)
                                .find(|&w| !declared[w] && wid_of[w] == wid)
                                .expect("death of an unknown wid");
                            prop_assert!(crashed[w], "false death: worker {}", w);
                            declared[w] = true;
                        }
                        Action::Reconfigured { job: 0, n: n_new, epoch, .. } => {
                            reconfigs += 1;
                            prop_assert_eq!(epoch, reconfigs);
                            let mut next = 0u16;
                            for w in 0..n {
                                if !declared[w] {
                                    wid_of[w] = next;
                                    next += 1;
                                }
                            }
                            prop_assert_eq!(n_new as usize, next as usize);
                        }
                        Action::Send { msg: CtrlMsg::Reconfigure { frontier, .. }, .. } => {
                            // Every survivor's Reconfigure carries the
                            // AND of the (undeclared) survivors' acked
                            // bitmaps. `declared` is current here: the
                            // deaths behind this quiesce arrived in
                            // earlier action batches.
                            let mut expected = chunk_bitmap(CHUNKS, |_| true);
                            for w in (0..n).filter(|&w| !declared[w]) {
                                bitmap_and(&mut expected, &ack_bitmap(w));
                            }
                            prop_assert_eq!(&frontier, &expected);
                        }
                        Action::JobComplete { job: 0 } => complete = true,
                        _ => {}
                    }
                }
            };
        }

        let mut drive = steps.clone();
        // Tail of deterministic steps so every run drains: pending
        // deaths get declared and the quiesce in flight completes.
        drive.resize(drive.len() + 200, 1);
        for op in drive {
            t += 10;
            if registered < n {
                absorb!(ctrl.on_message(
                    100 + registered as u64,
                    CtrlMsg::Register { job: 0 },
                    t
                ));
                registered += 1;
                continue;
            }
            // Maybe crash one worker — always leaving a survivor.
            if op % 4 == 0 {
                let victim = (op as usize / 4) % n;
                let live = crashed.iter().filter(|c| !**c).count();
                if !crashed[victim] && live > 1 {
                    crashed[victim] = true;
                }
            }
            // Live workers speak; crashed ones are silent forever.
            let epoch = ctrl.epoch(0).unwrap();
            let phase = ctrl.phase(0).unwrap();
            for w in 0..n {
                if crashed[w] || complete {
                    continue;
                }
                let msg = match phase {
                    Phase::Running => CtrlMsg::Heartbeat { job: 0, wid: wid_of[w], epoch },
                    Phase::Quiescing => CtrlMsg::QuiesceAck {
                        job: 0,
                        wid: wid_of[w],
                        epoch,
                        done: ack_bitmap(w),
                    },
                    _ => continue,
                };
                absorb!(ctrl.on_message(100 + w as u64, msg, t));
            }
            absorb!(ctrl.on_tick(t));

            // Invariants, every step.
            let undeclared = (0..n).filter(|&w| !declared[w]).count();
            prop_assert_eq!(ctrl.alive_count(0), Some(undeclared));
            let ledger = ctrl.ledger(0);
            let recomputed: usize = ledger
                .job_ids()
                .iter()
                .map(|&id| {
                    let r = pipeline.validate(ledger.job_proto(id).unwrap()).unwrap();
                    r.pool_bytes + r.bookkeeping_bytes
                })
                .sum();
            prop_assert_eq!(ledger.committed_bytes(), recomputed);
            prop_assert!(recomputed <= pipeline.register_sram_bytes);
        }

        // The drain tail declared every crashed worker and finished
        // any in-flight quiesce; now the survivors finish the job.
        prop_assert_eq!(ctrl.phase(0), Some(Phase::Running));
        for w in 0..n {
            prop_assert_eq!(declared[w], crashed[w]);
        }
        let epoch = ctrl.epoch(0).unwrap();
        prop_assert_eq!(epoch, reconfigs);
        for w in (0..n).filter(|&w| !crashed[w]) {
            absorb!(ctrl.on_message(
                100 + w as u64,
                CtrlMsg::Done { job: 0, wid: wid_of[w], epoch },
                t + 10
            ));
        }
        prop_assert!(complete);
        prop_assert_eq!(ctrl.phase(0), Some(Phase::Complete));
        prop_assert_eq!(ctrl.ledger(0).committed_bytes(), 0);
        prop_assert_eq!(ctrl.ledger(0).job_count(), 0);
    }

    /// Deterministic loss + same seed ⇒ identical outcome (stats and
    /// results), across the whole stack.
    #[test]
    fn loss_runs_are_reproducible(seed in any::<u64>()) {
        let updates: Vec<Vec<Vec<f32>>> =
            (0..3).map(|w| vec![vec![w as f32 + 0.5; 32]]).collect();
        let proto = Protocol {
            n_workers: 3,
            k: 4,
            pool_size: 2,
            rto_ns: 50_000,
            scaling_factor: 1000.0,
            ..Protocol::default()
        };
        let run = || {
            let mut c = 0u64;
            run_inprocess(&updates, &proto, &HarnessConfig::default(), |_, hop| {
                c = c.wrapping_mul(25214903917).wrapping_add(seed | 1);
                hop == Hop::Up && (c >> 30).is_multiple_of(10)
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.results, b.results);
        prop_assert_eq!(a.duration_ns, b.duration_ns);
        prop_assert_eq!(a.switch_stats, b.switch_stats);
    }
}
