//! Continuous streaming across iterations (Appendix B): the same
//! switch pools serve many all-reduce sessions, with workers carrying
//! pool-version parity forward. Exercised here in lockstep against a
//! single persistent `ReliableSwitch`, including a session whose chunk
//! count leaves slots at *mixed* parities, and with losses in between.

use switchml::core::config::Protocol;
use switchml::core::packet::Packet;
use switchml::core::switch::reliable::ReliableSwitch;
use switchml::core::switch::SwitchAction;
use switchml::core::worker::stream::TensorStream;
use switchml::core::worker::Worker;

fn proto(n: usize) -> Protocol {
    Protocol {
        n_workers: n,
        k: 4,
        pool_size: 4,
        scaling_factor: 1000.0,
        ..Protocol::default()
    }
}

/// Drive all workers against the switch in lockstep until done.
fn drive(switch: &mut ReliableSwitch, workers: &mut [Worker]) {
    let mut inflight: Vec<Packet> = Vec::new();
    for w in workers.iter_mut() {
        inflight.extend(w.start(0).unwrap());
    }
    let mut guard = 0;
    while let Some(pkt) = inflight.pop() {
        guard += 1;
        assert!(guard < 100_000, "did not converge");
        match switch.on_packet(pkt).unwrap() {
            SwitchAction::Multicast(r) => {
                for w in workers.iter_mut() {
                    inflight.extend(w.on_result(&r, 0).unwrap());
                }
            }
            SwitchAction::Unicast(wid, r) => {
                inflight.extend(workers[wid as usize].on_result(&r, 0).unwrap());
            }
            SwitchAction::Drop => {}
        }
    }
    assert!(workers.iter().all(|w| w.is_done()));
}

#[test]
fn ten_sessions_share_one_switch() {
    let n = 3;
    let p = proto(n);
    let mut switch = ReliableSwitch::new(&p).unwrap();

    // Session sizes chosen so slots end at different parities: 5
    // chunks over 4 slots → slot 0 runs 2 phases, slots 1–3 run 1.
    let sizes = [20usize, 20, 12, 28, 4, 36, 20, 8, 24, 16];
    let mut workers: Vec<Worker> = (0..n)
        .map(|w| {
            let data: Vec<f32> = (0..sizes[0]).map(|i| (w + i) as f32).collect();
            let stream = TensorStream::from_f32(&[data], p.mode, p.scaling_factor, p.k).unwrap();
            Worker::new(w as u16, &p, stream).unwrap()
        })
        .collect();

    for (session, &elems) in sizes.iter().enumerate() {
        drive(&mut switch, &mut workers);
        // Verify this session's sums.
        for w in workers.iter() {
            let got = w.stream().result_tensors_f32(1).unwrap();
            for (i, &x) in got[0].iter().enumerate() {
                let expect: f32 = (0..n).map(|ww| (session * 100 + ww + i) as f32).sum();
                assert!(
                    (x - expect).abs() < 0.01,
                    "session {session} elem {i}: {x} vs {expect}"
                );
            }
        }
        // Continue into the next session (if any) with fresh tensors.
        if session + 1 < sizes.len() {
            let next_elems = sizes[session + 1];
            workers = workers
                .drain(..)
                .enumerate()
                .map(|(w, worker)| {
                    let data: Vec<f32> = (0..next_elems)
                        .map(|i| ((session + 1) * 100 + w + i) as f32)
                        .collect();
                    let stream =
                        TensorStream::from_f32(&[data], p.mode, p.scaling_factor, p.k).unwrap();
                    let (_results, next) = worker.into_next_session(stream).unwrap();
                    next
                })
                .collect();
        }
        let _ = elems;
    }
    // The one switch aggregated every session's chunks.
    let total_chunks: u64 = sizes.iter().map(|&e| e.div_ceil(4) as u64).sum();
    assert_eq!(switch.stats().completions, total_chunks);
}

#[test]
fn fresh_worker_against_dirty_switch_gets_stale_data() {
    // Negative control: WITHOUT version continuation, fresh workers'
    // V0 updates against a switch whose V0 pools hold completed phases
    // at the *same offsets* are treated as duplicates — the switch
    // serves the previous session's cached aggregates, and the workers
    // cannot tell (same ver/idx/off). Silent data corruption: exactly
    // the failure `into_next_session` exists to prevent.
    let n = 2;
    let p = proto(n);
    let mut switch = ReliableSwitch::new(&p).unwrap();
    let mk = |w: usize, base: usize| {
        // 16 elems = 4 chunks over 4 slots: one V0 phase per slot.
        let data: Vec<f32> = (0..16).map(|i| (base + w + i) as f32).collect();
        let stream = TensorStream::from_f32(&[data], p.mode, p.scaling_factor, p.k).unwrap();
        Worker::new(w as u16, &p, stream).unwrap()
    };
    let mut workers: Vec<Worker> = (0..n).map(|w| mk(w, 0)).collect();
    drive(&mut switch, &mut workers);

    // Naive fresh workers (V0 again) with DIFFERENT data (base 50).
    let mut fresh: Vec<Worker> = (0..n).map(|w| mk(w, 50)).collect();
    drive(&mut switch, &mut fresh); // completes — but with what data?

    let got = fresh[0].stream().result_tensors_f32(1).unwrap();
    let fresh_expect: f32 = (0..n).map(|ww| (50 + ww) as f32).sum(); // elem 0
    let stale_session1: f32 = (0..n).map(|ww| ww as f32).sum();
    assert!(
        (got[0][0] - stale_session1).abs() < 0.01,
        "expected the stale session-1 aggregate, got {}",
        got[0][0]
    );
    assert!(
        (got[0][0] - fresh_expect).abs() > 1.0,
        "naive pool reuse silently returned wrong (stale) data — \
         which is the point of this negative control"
    );
    // And the switch never even aggregated the new contributions.
    assert_eq!(switch.stats().completions, 4, "only session 1 completed");
    assert!(
        switch.stats().result_retx >= 4,
        "all served from stale cache"
    );
}
