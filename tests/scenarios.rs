//! Standing regression suite: the curated scenario library replayed
//! against every transport each scenario supports.
//!
//! This is the chaos lab's front door. Each scenario in
//! `switchml_scenario::library` is a declarative value — topology,
//! workload, fault plan, expectation oracle — and this suite runs the
//! whole catalog, split by transport/runner so `cargo test` can
//! parallelize the heavy channel and UDP runs.
//!
//! The UDP subset lives in a test whose name contains `udp` so the CI
//! gate (`cargo test --workspace -q udp`) picks it up alongside the
//! transport crate's loopback tests.

use switchml_scenario::{library, run_scenario, RunnerKind, Scenario, Transport};

/// Run every library scenario that supports `t` and satisfies `pred`;
/// fail with a digest of every violated scenario rather than stopping
/// at the first.
fn run_subset<F>(t: Transport, pred: F)
where
    F: Fn(&Scenario) -> bool,
{
    let mut ran = 0usize;
    let mut failures = Vec::new();
    for sc in library::all() {
        if !sc.supports(t) || !pred(&sc) {
            continue;
        }
        ran += 1;
        match run_scenario(&sc, t) {
            Ok(rep) if rep.passed() => {}
            Ok(rep) => failures.push(rep.summary()),
            Err(e) => failures.push(format!(
                "{} [{}]: not attemptable: {}",
                sc.name,
                t.name(),
                e
            )),
        }
    }
    assert!(ran > 0, "subset selected no scenarios on {}", t.name());
    assert!(
        failures.is_empty(),
        "{} scenario(s) failed on {}:\n  {}",
        failures.len(),
        t.name(),
        failures.join("\n  ")
    );
}

fn is_control_plane(sc: &Scenario) -> bool {
    matches!(sc.runner, RunnerKind::Ctrl | RunnerKind::Sched)
}

/// Every netsim-supported scenario: deterministic, simulated time.
#[test]
fn scenario_suite_netsim() {
    run_subset(Transport::Netsim, |_| true);
}

/// Channel-transport data-plane scenarios (plain/sharded/reactor).
#[test]
fn scenario_suite_channel_data_plane() {
    run_subset(Transport::Channel, |sc| !is_control_plane(sc));
}

/// Channel-transport control-plane scenarios (ctrl + sched runners):
/// kills, switch restarts, multi-tenant churn.
#[test]
fn scenario_suite_channel_control_plane() {
    run_subset(Transport::Channel, is_control_plane);
}

/// UDP loopback subset — the scenarios that exercise something the
/// channel transport cannot (GSO/GRO batching, kernel socket RTO
/// behavior) plus a loss storm and a membership-shrink as smoke.
#[test]
fn scenario_suite_udp_subset() {
    run_subset(Transport::Udp, |sc| {
        library::udp_subset().contains(&sc.name.as_str())
    });
}
