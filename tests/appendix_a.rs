//! Appendix A's worked example, reproduced as a deterministic scripted
//! trace (the paper's Figure 9).
//!
//! Three workers, one slot `x`, loss of w3's update on the upstream
//! path (t3) and of w1's result copy on the downstream path (t7). The
//! script follows the paper's event list t0–t15 exactly and asserts
//! the switch/worker behaviour the paper describes at each step.

use switchml_core::config::Protocol;
use switchml_core::packet::{Packet, PacketKind, Payload, PoolVersion};
use switchml_core::switch::reliable::ReliableSwitch;
use switchml_core::switch::SwitchAction;

const X: u32 = 0; // the slot under study
const K: usize = 4;

fn proto() -> Protocol {
    Protocol {
        n_workers: 3,
        k: K,
        pool_size: 2,
        ..Protocol::default()
    }
}

fn update(wid: u16, ver: PoolVersion, off: u64, val: i32, retx: bool) -> Packet {
    Packet {
        kind: PacketKind::Update,
        wid,
        ver,
        idx: X,
        off,
        job: 0,
        epoch: 0,
        retransmission: retx,
        payload: Payload::I32(vec![val; K]),
    }
}

#[test]
fn figure9_scripted_trace() {
    let mut sw = ReliableSwitch::new(&proto()).unwrap();
    let v0 = PoolVersion::V0;
    let v1 = PoolVersion::V1;
    let off = 0u64;
    let next_off = (K * 2) as u64; // off + k·s

    // t0: w1 sends its update for slot x, offset off.
    assert_eq!(
        sw.on_packet(update(0, v0, off, 1, false)).unwrap(),
        SwitchAction::Drop
    );
    // t1: w2 sends its update.
    assert_eq!(
        sw.on_packet(update(1, v0, off, 2, false)).unwrap(),
        SwitchAction::Drop
    );
    // t2/t3: w3's update is lost on the upstream path — the switch
    // simply never sees it.

    // t4: w1's timeout fires; it retransmits. The switch ignores the
    // duplicate (seen bit set) and does not double-apply.
    assert_eq!(
        sw.on_packet(update(0, v0, off, 1, true)).unwrap(),
        SwitchAction::Drop
    );
    assert_eq!(sw.stats().duplicates, 1);
    // t5: w2 retransmits; ignored likewise.
    assert_eq!(
        sw.on_packet(update(1, v0, off, 2, true)).unwrap(),
        SwitchAction::Drop
    );
    assert_eq!(sw.stats().duplicates, 2);

    // t6: w3's retransmission finally arrives; the aggregation
    // completes and the switch multicasts the result.
    let result = match sw.on_packet(update(2, v0, off, 3, true)).unwrap() {
        SwitchAction::Multicast(p) => p,
        other => panic!("expected multicast at t6, got {other:?}"),
    };
    assert_eq!(result.payload, Payload::I32(vec![6; K])); // 1+2+3
    assert_eq!(result.kind, PacketKind::Result);

    // t7: the response copy toward w1 is lost downstream. w2 and w3
    // receive theirs (t9, t10) and move to the next phase: same slot,
    // flipped pool version, next offset (t12, t13).
    assert_eq!(
        sw.on_packet(update(1, v1, next_off, 20, false)).unwrap(),
        SwitchAction::Drop
    );
    assert_eq!(
        sw.on_packet(update(2, v1, next_off, 30, false)).unwrap(),
        SwitchAction::Drop
    );

    // t8: w1, still missing its result, retransmits its *old* update
    // (slot x, version 0). The slot has become the shadow copy, but
    // the result is still there: the switch answers with a unicast
    // (t11) instead of corrupting the new phase.
    match sw.on_packet(update(0, v0, off, 1, true)).unwrap() {
        SwitchAction::Unicast(wid, p) => {
            assert_eq!(wid, 0);
            assert_eq!(p.payload, Payload::I32(vec![6; K]));
            assert_eq!(p.ver, v0);
        }
        other => panic!("expected unicast retransmission at t8, got {other:?}"),
    }
    assert_eq!(sw.stats().result_retx, 1);

    // t14: w1 has its result now and joins the next phase; its update
    // completes the slot in pool 1 (t15), which also confirms every
    // worker received the pool-0 result — the switch flips roles again.
    let result2 = match sw.on_packet(update(0, v1, next_off, 10, false)).unwrap() {
        SwitchAction::Multicast(p) => p,
        other => panic!("expected multicast at t15, got {other:?}"),
    };
    assert_eq!(result2.payload, Payload::I32(vec![60; K])); // 10+20+30
    assert_eq!(result2.ver, v1);
    assert_eq!(sw.stats().completions, 2);

    // Epilogue (the "safely and unambiguously confirms" property):
    // pool 0's slot can now be reused for a third phase without any
    // residue from phase 0.
    let third_off = next_off * 2;
    assert_eq!(
        sw.on_packet(update(0, v0, third_off, 100, false)).unwrap(),
        SwitchAction::Drop
    );
    assert_eq!(
        sw.on_packet(update(1, v0, third_off, 200, false)).unwrap(),
        SwitchAction::Drop
    );
    match sw.on_packet(update(2, v0, third_off, 300, false)).unwrap() {
        SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![600; K])),
        other => panic!("{other:?}"),
    }
}

/// The same scenario driven through the full worker state machines and
/// the virtual-time harness, with the losses injected by packet
/// predicate instead of by hand — proving the end-to-end system
/// reproduces the Appendix A recovery, not just the switch half.
#[test]
fn figure9_end_to_end() {
    use switchml_core::agg::{run_inprocess, HarnessConfig, Hop};

    let updates: Vec<Vec<Vec<f32>>> = (0..3).map(|w| vec![vec![(w + 1) as f32; 16]]).collect();
    let proto = Protocol {
        n_workers: 3,
        k: 4,
        pool_size: 2,
        scaling_factor: 1000.0,
        ..Protocol::default()
    };
    let mut dropped_up = false;
    let mut dropped_down = false;
    let outcome = run_inprocess(&updates, &proto, &HarnessConfig::default(), |pkt, hop| {
        // t3: w3's first update for slot 0 lost upstream.
        if !dropped_up && hop == Hop::Up && pkt.wid == 2 && pkt.idx == 0 && !pkt.retransmission {
            dropped_up = true;
            return true;
        }
        // t7: w1's result copy for slot 0 lost downstream.
        if !dropped_down && matches!(hop, Hop::Down { to: 0 }) && pkt.idx == 0 {
            dropped_down = true;
            return true;
        }
        false
    })
    .unwrap();
    assert!(dropped_up && dropped_down);
    // Correct sums everywhere despite both loss events.
    for w in 0..3 {
        for &x in &outcome.results[w][0] {
            assert!((x - 6.0).abs() < 0.01, "worker {w} saw {x}");
        }
    }
    // The switch served at least one unicast retransmission (t11).
    assert!(outcome.switch_stats.result_retx >= 1);
    // And ignored at least one duplicate (t4/t5-style).
    assert!(outcome.switch_stats.duplicates >= 1);
}
