#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, tests. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== cargo bench --no-run (criterion benches must compile)"
cargo bench --workspace --no-run

echo "== SIMD kernel parity: dispatched vs forced-scalar (release)"
# The quantize/aggregation/byteswap kernels must be bit-identical to
# the scalar reference on BOTH dispatch arms: once with whatever ISA
# the host detects (built for it explicitly so the autovectorized
# scalar baseline is as strong as possible), once with dispatch pinned
# to scalar via the env override.
RUSTFLAGS="-C target-cpu=native" \
    timeout 300 cargo test --release -q -p switchml-core simd
RUSTFLAGS="-C target-cpu=native" SWITCHML_FORCE_SCALAR=1 \
    timeout 300 cargo test --release -q -p switchml-core simd
SWITCHML_FORCE_SCALAR=1 timeout 300 cargo test --release -q -p switchml-core kernel_properties

echo "== hotpath smoke (release, sharded runner with n_cores > 1, zero-alloc check)"
cargo run --release -q -p switchml-bench --bin hotpath -- --smoke

# The published hotpath bench must carry the new raw-speed fields: the
# dispatch backend that produced the numbers, the oversubscription
# marker on threaded ATE rows, and the reactor scaling section.
for key in '"backend"' '"quantize_kernel_gbps"' '"reactor_scale"' '"engines_per_thread"' \
           '"threaded_ate"'; do
  if ! grep -qF "$key" BENCH_hotpath.json; then
    echo "ERROR: BENCH_hotpath.json missing $key" >&2
    exit 1
  fi
done

echo "== udp burst data plane: tests + quick bench (release, hard time budget)"
# Every test whose name mentions udp — transport unit tests plus the
# sharded UDP-vs-channel-vs-reference differentials.
timeout 180 cargo test --workspace -q udp
# The burst receive bench must complete and write a well-formed
# BENCH_udp.json (both sections present, allocation counter included).
timeout 300 cargo run --release -q -p switchml-bench --bin hotpath -- \
    --quick --udp --udp-out /tmp/ci_bench_udp.json
for key in '"bench": "udp"' '"recv_path"' '"allreduce"' '"allocs_per_packet"'; do
  if ! grep -qF "$key" /tmp/ci_bench_udp.json; then
    echo "ERROR: BENCH_udp.json missing $key" >&2
    exit 1
  fi
done
rm -f /tmp/ci_bench_udp.json

echo "== hierarchical data plane: differentials + rack-kill refence + crossover bench (release)"
# Every test whose name mentions hier — the flat-vs-tree-vs-reference
# differentials on channel and UDP, loss on both hops, leaf-kill
# recovery, and the scenario-crate hierarchy runs.
timeout 300 cargo test --workspace -q hier
# A seeded leaf-switch crash must refence only its rack's epoch and
# still produce bit-identical tensors (exits nonzero on violation).
timeout 120 cargo run --release -q -p switchml-cli -- scenario run \
    hier-rack-kill-refence --transport channel
# The crossover bench must complete, verify bit-identity at every grid
# point, and write a well-formed BENCH_hierarchy.json.
timeout 600 cargo run --release -q -p switchml-bench --bin hotpath -- \
    --hierarchy --quick --hier-out /tmp/ci_bench_hier.json
for key in '"bench": "hierarchy"' '"crossover"' '"first_win_at_workers"' \
           '"hier_ate_per_sec"' '"flat_ate_per_sec"'; do
  if ! grep -qF "$key" /tmp/ci_bench_hier.json; then
    echo "ERROR: BENCH_hierarchy.json missing $key" >&2
    exit 1
  fi
done
rm -f /tmp/ci_bench_hier.json

echo "== model checker: bounded-exhaustive exploration (release, hard time budget)"
# The two acceptance configurations must explore to exhaustion with
# zero violations. `timeout` enforces the CI wall-clock budget.
timeout 120 cargo run --release -q -p switchml-cli -- check \
    --workers 2 --slots 1 --chunks 2
timeout 300 cargo run --release -q -p switchml-cli -- check \
    --workers 2 --slots 2 --chunks 3
# The seeded mutants must be caught — a checker that cannot fail is
# not checking anything. First Algorithm 3 minus the duplicate check,
# then Algorithm 3 minus the §5.4 epoch fence (hunted with the
# dead-generation ghost adversary move).
if timeout 120 cargo run --release -q -p switchml-cli -- check \
    --switch mutant-no-bitmap >/dev/null 2>&1; then
  echo "ERROR: explorer failed to catch the no-bitmap mutant" >&2
  exit 1
fi
if timeout 120 cargo run --release -q -p switchml-cli -- check \
    --switch mutant-no-epoch --stale-epochs 1 >/dev/null 2>&1; then
  echo "ERROR: explorer failed to catch the no-epoch-fence mutant" >&2
  exit 1
fi

echo "== model checker: regression trace replay (release)"
timeout 300 cargo test --release -q -p switchml-check

echo "== scenario suite: the standing chaos-lab regression gate (release)"
# The full named-scenario library on netsim + channel and the curated
# UDP subset, each run held to its declared expectation oracles. The
# command exits nonzero on any violated oracle — silent corruption,
# a failed resume, a missing epoch bump, leaked tenant faults.
timeout 300 cargo run --release -q -p switchml-cli -- scenario suite
# The old chaos CLI path must keep working as a thin DSL adapter
# (same flags, same exit-code contract) on its historical seed.
timeout 120 cargo run --release -q -p switchml-cli -- chaos \
    --transport channel --workers 3 --elems 8192 --seed 7 --straggler 1

echo "== multi-tenant scheduler: seeded churn + measured isolation (release)"
# One seeded churn per transport: staggered arrivals, priority
# preemption, live repartition, plus a 10% loss storm aimed at one
# tenant. The command exits nonzero if any job fails to drain, a quiet
# tenant absorbs injected faults, or the quiet p99 completion latency
# leaves 2x of the storm-free baseline.
timeout 180 cargo run --release -q -p switchml-cli -- sched \
    --transport channel --noisy-loss 0.1 --seed 7
timeout 300 cargo run --release -q -p switchml-cli -- sched \
    --transport udp --noisy-loss 0.1 --seed 7
# The scheduler that skipped the slot-disjointness check must be
# caught by the partition-disjoint oracle.
if timeout 120 cargo run --release -q -p switchml-cli -- check \
    --switch mutant-overlap-partition >/dev/null 2>&1; then
  echo "ERROR: explorer failed to catch the overlap-partition mutant" >&2
  exit 1
fi

echo "CI green."
