#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, tests. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== cargo bench --no-run (criterion benches must compile)"
cargo bench --workspace --no-run

echo "== hotpath smoke (release, sharded runner with n_cores > 1, zero-alloc check)"
cargo run --release -q -p switchml-bench --bin hotpath -- --smoke

echo "CI green."
