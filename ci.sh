#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, tests. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== cargo bench --no-run (criterion benches must compile)"
cargo bench --workspace --no-run

echo "== hotpath smoke (release, sharded runner with n_cores > 1, zero-alloc check)"
cargo run --release -q -p switchml-bench --bin hotpath -- --smoke

echo "== udp burst data plane: tests + quick bench (release, hard time budget)"
# Every test whose name mentions udp — transport unit tests plus the
# sharded UDP-vs-channel-vs-reference differentials.
timeout 180 cargo test --workspace -q udp
# The burst receive bench must complete and write a well-formed
# BENCH_udp.json (both sections present, allocation counter included).
timeout 300 cargo run --release -q -p switchml-bench --bin hotpath -- \
    --quick --udp --udp-out /tmp/ci_bench_udp.json
for key in '"bench": "udp"' '"recv_path"' '"allreduce"' '"allocs_per_packet"'; do
  if ! grep -qF "$key" /tmp/ci_bench_udp.json; then
    echo "ERROR: BENCH_udp.json missing $key" >&2
    exit 1
  fi
done
rm -f /tmp/ci_bench_udp.json

echo "== model checker: bounded-exhaustive exploration (release, hard time budget)"
# The two acceptance configurations must explore to exhaustion with
# zero violations. `timeout` enforces the CI wall-clock budget.
timeout 120 cargo run --release -q -p switchml-cli -- check \
    --workers 2 --slots 1 --chunks 2
timeout 300 cargo run --release -q -p switchml-cli -- check \
    --workers 2 --slots 2 --chunks 3
# The seeded mutant (Algorithm 3 minus the duplicate check) must be
# caught — a checker that cannot fail is not checking anything.
if timeout 120 cargo run --release -q -p switchml-cli -- check \
    --switch mutant-no-bitmap >/dev/null 2>&1; then
  echo "ERROR: explorer failed to catch the no-bitmap mutant" >&2
  exit 1
fi

echo "== model checker: regression trace replay (release)"
timeout 300 cargo test --release -q -p switchml-check

echo "CI green."
