//! Acceptance scenarios for the control plane (deterministic netsim).
//!
//! The two headline behaviors:
//!
//! 1. **Worker failure → shrink**: kill one of 8 workers
//!    mid-iteration; the controller detects the death by heartbeat
//!    timeout, quiesces the survivors, rescales `f` for n−1, and the
//!    remaining 7 finish with aggregates *exactly* equal to a fresh
//!    7-worker run over the same tensors.
//! 2. **Switch failover**: drain every admitted job off a failing
//!    switch onto a standby with no lost slot state — the results are
//!    exactly what an undisturbed run produces.

use switchml_core::quant::scaling::max_safe_factor;
use switchml_ctrl::netsim::{run_ctrl, scenario_tensor, CtrlScenario};

/// The quantized elementwise sum the dataplane must produce for
/// `worker_slots` at scaling factor `f` — the ground truth every
/// surviving worker's aggregate is compared against, bit for bit.
fn exact_sum(worker_slots: &[usize], elems: usize, bound: f64, f: f64) -> Vec<f32> {
    (0..elems)
        .map(|i| {
            let q: i64 = worker_slots
                .iter()
                .map(|&s| {
                    switchml_core::quant::fixed::quantize_one(
                        scenario_tensor(s, elems, bound)[i],
                        f,
                    ) as i64
                })
                .sum();
            (q as f64 / f) as f32
        })
        .collect()
}

#[test]
fn kill_one_of_eight_survivors_match_fresh_seven_worker_run() {
    // Worker 3 registers (its Register lands at ~20 us) and then dies
    // at 25 us — before its Start arrives at ~40 us — so it joins the
    // membership but contributes nothing to the dataplane.
    let sc = CtrlScenario {
        n_workers: 8,
        elems: 512,
        fail_worker: Some((3, 25)),
        ..CtrlScenario::default()
    };
    let out = run_ctrl(&sc);
    assert!(out.finished, "events: {:?}", out.events);

    // The controller detected the death, shrank 8 → 7, and rescaled.
    assert_eq!(out.final_n[0], 7, "events: {:?}", out.events);
    assert_eq!(out.final_epoch[0], 1);
    let f7 = sc.requested_f.min(max_safe_factor(7, sc.bound));
    assert_eq!(out.final_f[0], f7);
    // (The simulation ends the moment every surviving worker holds the
    // full aggregate, so the final Done → JobComplete control hop may
    // still be in flight; completion is asserted via `finished`.)
    assert!(out.events.iter().any(|e| e.contains("dead")));
    assert!(out.events.iter().any(|e| e.contains("n=7")));

    // The victim produced nothing; all 7 survivors agree exactly.
    assert!(out.results[0][3].is_none());
    let survivor = out.results[0][0].as_ref().unwrap();
    for w in [1, 2, 4, 5, 6, 7] {
        assert_eq!(out.results[0][w].as_ref().unwrap(), survivor);
    }

    // A fresh 7-worker run over exactly the survivors' tensors
    // (tensor_skip maps slots 3.. to 4..) must agree bit for bit.
    let fresh = run_ctrl(&CtrlScenario {
        n_workers: 7,
        fail_worker: None,
        tensor_skip: Some(3),
        ..sc.clone()
    });
    assert!(fresh.finished, "events: {:?}", fresh.events);
    assert_eq!(fresh.final_f[0], f7, "same clamp, same f");
    assert_eq!(
        survivor,
        fresh.results[0][0].as_ref().unwrap(),
        "shrunk run must equal a fresh (n-1)-worker run exactly"
    );

    // And both match the quantized ground truth.
    let want = exact_sum(&[0, 1, 2, 4, 5, 6, 7], sc.elems, sc.bound, f7);
    assert_eq!(survivor[0], want);
}

#[test]
fn switch_failover_drains_all_jobs_onto_standby_losslessly() {
    // Two jobs on switch 0, standby switch 1; at 100 us — mid-stream —
    // the operator drains switch 0.
    let sc = CtrlScenario {
        n_jobs: 2,
        n_workers: 4,
        elems: 512,
        n_switches: 2,
        fail_over: Some((100, 0, 1)),
        ..CtrlScenario::default()
    };
    let out = run_ctrl(&sc);
    assert!(out.finished, "events: {:?}", out.events);
    assert!(out
        .events
        .iter()
        .any(|e| e.contains("failover: switch 0 -> 1")));

    let f4 = sc.requested_f.min(max_safe_factor(4, sc.bound));
    for job in 0..2 {
        // Every job re-homed (one reconfiguration epoch), kept all its
        // workers, and completed on the standby.
        assert_eq!(out.final_epoch[job], 1, "events: {:?}", out.events);
        assert_eq!(out.final_n[job], 4);
        assert_eq!(out.final_f[job], f4, "failover must not change f");

        let first = out.results[job][0].as_ref().unwrap();
        for w in 1..4 {
            assert_eq!(out.results[job][w].as_ref().unwrap(), first);
        }
        // No slot state lost in the drain: bitwise-identical to the
        // quantized ground-truth sums (what an undisturbed run yields).
        let slots: Vec<usize> = (job * 4..job * 4 + 4).collect();
        let want = exact_sum(&slots, sc.elems, sc.bound, f4);
        assert_eq!(first[0], want, "job {job}");
    }

    // Sanity: the undisturbed twin agrees, so the failover was truly
    // transparent to the aggregates.
    let calm = run_ctrl(&CtrlScenario {
        fail_over: None,
        n_switches: 1,
        ..sc.clone()
    });
    assert!(calm.finished, "events: {:?}", calm.events);
    for job in 0..2 {
        assert_eq!(out.results[job][0], calm.results[job][0]);
    }
}

#[test]
fn kill_under_loss_still_shrinks_and_agrees() {
    // The full package: per-link loss on the worker links AND a death
    // mid-run. Control-plane resends mask the loss; the shrink engine
    // handles the death; survivors still agree exactly.
    let sc = CtrlScenario {
        n_workers: 5,
        elems: 256,
        loss: 0.02,
        seed: 11,
        fail_worker: Some((2, 25)),
        deadline_ms: 2_000,
        ..CtrlScenario::default()
    };
    let out = run_ctrl(&sc);
    assert!(out.finished, "events: {:?}", out.events);
    assert_eq!(out.final_n[0], 4, "events: {:?}", out.events);
    assert!(out.results[0][2].is_none());
    let first = out.results[0][0].as_ref().unwrap();
    for w in [1, 3, 4] {
        assert_eq!(out.results[0][w].as_ref().unwrap(), first);
    }
}
