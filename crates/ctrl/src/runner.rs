//! The control plane over real transport ports and threads.
//!
//! Same state machines as [`crate::netsim`], deployment-shaped: the
//! controller, the multi-job switch, and each worker run on their own
//! threads with wall-clock heartbeats and retransmission timers,
//! exchanging datagrams over a [`Port`] fabric (in-memory channels or
//! UDP). Endpoint layout: `0` = switch, `1..=n` = workers, `n + 1` =
//! controller; control-plane peer ids are the endpoint indices.
//!
//! [`run_controlled`] drives one job end to end — including an
//! optional scheduled worker kill, in which case the controller
//! detects the death by heartbeat timeout, quiesces the survivors,
//! shrinks the job, and the survivors finish under the reconfigured
//! `n` and `f`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use switchml_core::config::{Protocol, RtoPolicy};
use switchml_core::error::{Error, Result};
use switchml_core::packet::Packet;
use switchml_core::switch::multijob::MultiJobSwitch;
use switchml_core::switch::pipeline::PipelineModel;
use switchml_core::switch::{SwitchAction, SwitchStats};
use switchml_core::worker::engine::EngineStats;
use switchml_core::worker::stream::TensorStream;
use switchml_core::worker::Worker;
use switchml_transport::{Port, PortStats, SWITCH_ENDPOINT};

use crate::controller::{Action, Controller, CtrlConfig};
use crate::msg::{bitmap_contains, chunk_bitmap, CtrlMsg};

/// Options for a controlled run.
#[derive(Debug, Clone)]
pub struct CtrlRunConfig {
    /// Abort if the job has not completed within this budget.
    pub max_wall: Duration,
    /// Engine shards per worker.
    pub n_cores: usize,
    /// Worker heartbeat interval.
    pub heartbeat: Duration,
    /// Controller failure timeout (silence before probing).
    pub failure_timeout: Duration,
    /// Crash worker `wid` (by endpoint order) after the given delay.
    pub kill: Option<(u16, Duration)>,
    /// Restart the switch process after the given delay: all pool
    /// state and job admissions are lost, as if the switch OS rebooted
    /// (§5.4). The controller notices one `failure_timeout` later and
    /// fails every job over in place — quiesce the members, compute
    /// the completion frontier, bump the epoch, re-admit — so the
    /// workers re-drive everything not yet aggregated everywhere.
    pub switch_restart: Option<Duration>,
    /// Per-worker gradient magnitude bound `B` for Theorem-2 clamping.
    pub bound: f64,
    /// Live slot repartitions: at each delay, quiesce the job at its
    /// chunk frontier and resume it on a pool of the given size under
    /// a bumped epoch. This is the primitive the multi-tenant
    /// scheduler uses to preempt and hand back switch slots.
    pub resize: Vec<(Duration, usize)>,
}

impl Default for CtrlRunConfig {
    fn default() -> Self {
        CtrlRunConfig {
            max_wall: Duration::from_secs(30),
            n_cores: 1,
            heartbeat: Duration::from_millis(5),
            failure_timeout: Duration::from_millis(25),
            kill: None,
            switch_restart: None,
            bound: 16.0,
            resize: Vec::new(),
        }
    }
}

/// What a controlled run produced.
#[derive(Debug)]
pub struct CtrlRunReport {
    /// Aggregated tensors per worker, endpoint order (`None` for a
    /// killed worker).
    pub results: Vec<Option<Vec<Vec<f32>>>>,
    /// Controller event log (deaths, reconfigurations, completion).
    pub events: Vec<String>,
    /// Final epoch of the job.
    pub final_epoch: u32,
    /// Surviving worker count.
    pub final_n: usize,
    /// Final negotiated scaling factor.
    pub final_f: f64,
    /// Final slot pool size (after any scheduled repartitions).
    pub final_pool: usize,
    /// Per-worker engine counters, endpoint order, summed across the
    /// worker's epochs (retransmissions, RTT estimate, epoch fences).
    pub worker_stats: Vec<EngineStats>,
    /// Switch counters summed over every pool the run admitted —
    /// including pools evicted by reconfigurations and, after a
    /// [`CtrlRunConfig::switch_restart`], pools the restart wiped.
    pub switch_stats: SwitchStats,
    /// The same counters per admitted pool, keyed by the pool's wire
    /// job id in harvest order: one entry per (job, epoch) pool the
    /// run admitted, so a reconfiguring job shows one line per epoch.
    /// This is how the chaos harness attributes stale-epoch drops to
    /// the pool that fenced them.
    pub per_pool_switch_stats: Vec<(u8, SwitchStats)>,
    /// Transport counters summed over every endpoint (switch, workers,
    /// controller).
    pub transport_stats: PortStats,
    pub wall: Duration,
}

fn controller_endpoint(n_workers: usize) -> usize {
    n_workers + 1
}

/// What the switch thread hands back: run-total counters, the same
/// counters broken down per admitted pool (wire job id, in harvest
/// order — a job that reconfigures appears once per epoch's pool),
/// and the port's transport counters.
pub(crate) struct SwitchOut {
    pub total: SwitchStats,
    pub per_pool: Vec<(u8, SwitchStats)>,
    pub port_stats: PortStats,
}

pub(crate) fn switch_thread<P: Port>(
    mut port: P,
    stop: &AtomicBool,
    deadline: Instant,
    epoch0: Instant,
    mut restart: Option<Duration>,
) -> Result<SwitchOut> {
    let mut switch = MultiJobSwitch::new(PipelineModel::default());
    let mut members: std::collections::HashMap<u8, Vec<usize>> = Default::default();
    // Counters belong to the harness's observer, not the switch
    // process: they survive evictions and restarts so the report can
    // total the whole run.
    let mut total = SwitchStats::default();
    let mut per_pool: Vec<(u8, SwitchStats)> = Vec::new();
    let harvest = |switch: &MultiJobSwitch,
                   job: u8,
                   total: &mut SwitchStats,
                   per: &mut Vec<(u8, SwitchStats)>| {
        if let Some(s) = switch.stats(job) {
            total.merge(s);
            per.push((job, s));
        }
    };
    while !stop.load(Ordering::Acquire) {
        if Instant::now() > deadline {
            return Err(Error::ProtocolViolation(
                "switch thread exceeded the wall-clock budget".into(),
            ));
        }
        if restart.is_some_and(|after| epoch0.elapsed() >= after) {
            restart = None;
            // Process restart: every admitted pool and its routing
            // state is gone. Recovery is the controller's job — it
            // will notice, quiesce, and re-admit under a bumped epoch.
            for job in switch.job_ids() {
                harvest(&switch, job, &mut total, &mut per_pool);
            }
            switch = MultiJobSwitch::new(PipelineModel::default());
            members.clear();
        }
        let Some((_, data)) = port.recv_timeout(Duration::from_micros(200)) else {
            continue;
        };
        if CtrlMsg::is_ctrl(&data) {
            match CtrlMsg::decode(&data) {
                Ok(CtrlMsg::AdmitJob {
                    job,
                    epoch,
                    proto,
                    members: peers,
                }) if switch.admit(job, &proto).is_ok() => {
                    switch
                        .set_job_epoch(job, (epoch & 0xff) as u8)
                        .expect("just admitted");
                    members.insert(job, peers.iter().map(|&p| p as usize).collect());
                }
                Ok(CtrlMsg::EvictJob { job }) => {
                    harvest(&switch, job, &mut total, &mut per_pool);
                    let _ = switch.evict(job);
                    members.remove(&job);
                }
                _ => {}
            }
            continue;
        }
        let Ok(pkt) = Packet::decode(&data) else {
            continue; // corrupted / foreign datagram
        };
        let job = pkt.job;
        // An error means traffic for an unadmitted (stale-epoch) job;
        // dropping it is exactly the eviction semantics we want.
        match switch.on_packet(pkt) {
            Ok(SwitchAction::Multicast(result)) => {
                let bytes = result.encode();
                if let Some(ws) = members.get(&job) {
                    for &w in ws {
                        port.send(w, &bytes);
                    }
                }
            }
            Ok(SwitchAction::Unicast(wid, result)) => {
                if let Some(&w) = members.get(&job).and_then(|ws| ws.get(wid as usize)) {
                    port.send(w, &result.encode());
                }
            }
            _ => {}
        }
    }
    for job in switch.job_ids() {
        harvest(&switch, job, &mut total, &mut per_pool);
    }
    Ok(SwitchOut {
        total,
        per_pool,
        port_stats: port.stats(),
    })
}

struct CtrlThreadOut {
    final_epoch: u32,
    final_n: usize,
    final_f: f64,
    final_pool: usize,
    port_stats: PortStats,
}

#[allow(clippy::too_many_arguments)]
fn controller_thread<P: Port>(
    mut port: P,
    mut ctrl: Controller,
    epoch0: Instant,
    tick: Duration,
    stop: &AtomicBool,
    job_done: &AtomicBool,
    deadline: Instant,
    events: &Mutex<Vec<String>>,
    mut failover_after: Option<Duration>,
    mut resize: Vec<(Duration, usize)>,
) -> Result<CtrlThreadOut> {
    let now_ns = || epoch0.elapsed().as_nanos() as u64;
    let mut next_tick = Instant::now();
    resize.sort_by_key(|&(at, _)| at);
    while !stop.load(Ordering::Acquire) {
        if Instant::now() > deadline {
            return Err(Error::ProtocolViolation(
                "controller thread exceeded the wall-clock budget".into(),
            ));
        }
        let mut actions = Vec::new();
        while resize
            .first()
            .is_some_and(|&(at, _)| epoch0.elapsed() >= at)
        {
            let (_, pool) = resize.remove(0);
            events
                .lock()
                .unwrap()
                .push(format!("job 0: repartition to {pool} slots requested"));
            match ctrl.resize_job(0, pool, now_ns()) {
                Ok(acts) => actions.extend(acts),
                Err(e) => events
                    .lock()
                    .unwrap()
                    .push(format!("job 0: repartition rejected: {e}")),
            }
        }
        if failover_after.is_some_and(|after| epoch0.elapsed() >= after) {
            failover_after = None;
            events
                .lock()
                .unwrap()
                .push("switch restart detected: failing all jobs over in place".into());
            actions.extend(ctrl.fail_over_all(0, 0, now_ns()));
        }
        if let Some((from, data)) = port.recv_timeout(tick / 4) {
            if let Ok(msg) = CtrlMsg::decode(&data) {
                actions.extend(ctrl.on_message(from as u64, msg, now_ns()));
            }
        }
        if Instant::now() >= next_tick {
            actions.extend(ctrl.on_tick(now_ns()));
            next_tick = Instant::now() + tick;
        }
        for act in actions {
            match act {
                Action::Send { to, msg } => port.send(to as usize, &msg.encode()),
                Action::SwitchCtl { msg, .. } => port.send(SWITCH_ENDPOINT, &msg.encode()),
                Action::WorkerDead { job, wid } => events
                    .lock()
                    .unwrap()
                    .push(format!("job {job}: worker {wid} declared dead")),
                Action::Reconfigured { job, epoch, n, f } => events.lock().unwrap().push(format!(
                    "job {job}: reconfigured to epoch {epoch} n={n} f={f}"
                )),
                Action::JobComplete { job } => {
                    events.lock().unwrap().push(format!("job {job}: complete"));
                    job_done.store(true, Ordering::Release);
                }
            }
        }
    }
    Ok(CtrlThreadOut {
        final_epoch: ctrl.epoch(0).unwrap_or(0),
        final_n: ctrl.alive_count(0).unwrap_or(0),
        final_f: ctrl.negotiated_f(0).unwrap_or(0.0),
        final_pool: ctrl.pool_size(0).unwrap_or(0),
        port_stats: port.stats(),
    })
}

enum RState {
    Registering,
    Ready,
    Running(Box<Worker>),
    Quiesced(Box<TensorStream>),
    Finished(Box<TensorStream>),
}

fn send_update<P: Port>(port: &mut P, mut pkt: Packet, wire_job: u8) {
    pkt.job = wire_job;
    port.send(SWITCH_ENDPOINT, &pkt.encode());
}

/// What one worker thread hands back.
pub(crate) struct WorkerOut {
    /// Aggregated tensors, `None` if the worker crashed or never
    /// finished.
    pub tensors: Option<Vec<Vec<f32>>>,
    /// Engine counters summed across every epoch this worker ran.
    pub stats: EngineStats,
    /// When (relative to the run's epoch) the first aggregated result
    /// landed — the scheduler's admission-to-first-aggregate clock.
    pub first_result: Option<Duration>,
    pub port_stats: PortStats,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn worker_thread<P: Port>(
    mut port: P,
    job: u8,
    ctrl_ep: usize,
    tensors: Vec<Vec<f32>>,
    mut base: Protocol,
    cfg: &CtrlRunConfig,
    epoch0: Instant,
    kill_after: Option<Duration>,
    stop: &AtomicBool,
    deadline: Instant,
) -> Result<WorkerOut> {
    let now_ns = || epoch0.elapsed().as_nanos() as u64;
    let quiesce_bitmap = |s: &TensorStream| chunk_bitmap(s.total_chunks(), |c| s.chunk_is_done(c));

    let mut state = RState::Registering;
    let (mut wid, mut epoch, mut wire_job) = (0u16, 0u32, 0u8);
    let mut next_beat = Instant::now();
    // Accumulated across epochs: harvested whenever a live Worker is
    // torn down (quiesce, finish, teardown).
    let mut stats = EngineStats::default();
    let mut first_result: Option<Duration> = None;

    let tensors = loop {
        if stop.load(Ordering::Acquire) {
            // Run torn down (job complete or aborted): hand back
            // whatever this worker aggregated.
            break match state {
                RState::Finished(s) => Some(s.result_tensors_f32(1)?),
                RState::Running(w) => {
                    stats.merge(w.stats());
                    None
                }
                _ => None,
            };
        }
        if kill_after.is_some_and(|k| epoch0.elapsed() >= k) {
            break None; // simulated crash: silent exit, no teardown
        }
        if Instant::now() > deadline {
            return Err(Error::ProtocolViolation(
                "worker thread exceeded the wall-clock budget".into(),
            ));
        }

        // Periodic control traffic: Register until welcomed, Done after
        // finishing (the completion report is retried until the job is
        // torn down), heartbeats otherwise.
        if Instant::now() >= next_beat {
            let msg = match &state {
                RState::Registering => CtrlMsg::Register { job },
                RState::Finished(_) => CtrlMsg::Done { job, wid, epoch },
                _ => CtrlMsg::Heartbeat { job, wid, epoch },
            };
            port.send(ctrl_ep, &msg.encode());
            next_beat = Instant::now() + cfg.heartbeat;
        }

        if let Some((_, data)) = port.recv_timeout(Duration::from_micros(500)) {
            if CtrlMsg::is_ctrl(&data) {
                let Ok(msg) = CtrlMsg::decode(&data) else {
                    continue;
                };
                match msg {
                    CtrlMsg::Welcome {
                        job: j,
                        wid: w,
                        epoch: e,
                        n,
                        f,
                        wire_job: wj,
                        ..
                    } if j == job && matches!(state, RState::Registering) => {
                        wid = w;
                        epoch = e;
                        wire_job = wj;
                        base.n_workers = n as usize;
                        base.scaling_factor = f;
                        state = RState::Ready;
                    }
                    CtrlMsg::Start { job: j, epoch: e }
                        if j == job && e == epoch && matches!(state, RState::Ready) =>
                    {
                        let stream = TensorStream::from_f32(
                            &tensors,
                            base.mode,
                            base.scaling_factor,
                            base.k,
                        )?;
                        let mut w = Worker::sharded(wid, &base, stream, cfg.n_cores)?;
                        w.set_epoch((epoch & 0xff) as u8);
                        for pkt in w.start(now_ns())? {
                            send_update(&mut port, pkt, wire_job);
                        }
                        state = RState::Running(Box::new(w));
                    }
                    CtrlMsg::Quiesce { job: j, epoch: e } if j == job && e == epoch => {
                        let (next, done) = match std::mem::replace(&mut state, RState::Registering)
                        {
                            RState::Running(w) => {
                                stats.merge(w.stats());
                                let s = w.into_stream();
                                let bm = quiesce_bitmap(&s);
                                (RState::Quiesced(Box::new(s)), Some(bm))
                            }
                            RState::Quiesced(s) => {
                                let bm = quiesce_bitmap(&s);
                                (RState::Quiesced(s), Some(bm))
                            }
                            RState::Finished(s) => {
                                let bm = quiesce_bitmap(&s);
                                (RState::Finished(s), Some(bm))
                            }
                            // Welcomed but never started: nothing done.
                            RState::Ready => (RState::Ready, Some(Vec::new())),
                            other => (other, None),
                        };
                        state = next;
                        if let Some(done) = done {
                            port.send(
                                ctrl_ep,
                                &CtrlMsg::QuiesceAck {
                                    job,
                                    wid,
                                    epoch,
                                    done,
                                }
                                .encode(),
                            );
                        }
                    }
                    CtrlMsg::Reconfigure {
                        job: j,
                        epoch: e,
                        n,
                        new_wid,
                        f,
                        wire_job: wj,
                        pool_size,
                        frontier,
                        ..
                    } if j == job && e == epoch + 1 => {
                        let stream = match std::mem::replace(&mut state, RState::Registering) {
                            RState::Quiesced(s) | RState::Finished(s) => Some(*s),
                            // Never started (lost Start): from scratch.
                            RState::Ready => None,
                            other => {
                                state = other;
                                continue;
                            }
                        };
                        epoch = e;
                        wid = new_wid;
                        wire_job = wj;
                        base.n_workers = n as usize;
                        base.scaling_factor = f;
                        base.pool_size = pool_size as usize;
                        let mut stream = match stream {
                            Some(s) => s,
                            None => TensorStream::from_f32(&tensors, base.mode, f, base.k)?,
                        };
                        // Keep only chunks aggregated at *every*
                        // survivor; the rest re-stream under new n, f.
                        for c in 0..stream.total_chunks() {
                            if stream.chunk_is_done(c) && !bitmap_contains(&frontier, c) {
                                stream.mark_undone(c);
                            }
                        }
                        stream.set_scaling(f)?;
                        let mut w = Worker::resume(wid, &base, stream, cfg.n_cores)?;
                        w.set_epoch((epoch & 0xff) as u8);
                        for pkt in w.start(now_ns())? {
                            send_update(&mut port, pkt, wire_job);
                        }
                        // Immediate heartbeat marks this member synced.
                        port.send(ctrl_ep, &CtrlMsg::Heartbeat { job, wid, epoch }.encode());
                        state = RState::Running(Box::new(w));
                    }
                    CtrlMsg::Probe { job: j, .. }
                        if j == job && !matches!(state, RState::Registering) =>
                    {
                        port.send(ctrl_ep, &CtrlMsg::Heartbeat { job, wid, epoch }.encode());
                    }
                    _ => {}
                }
            } else if let Ok(pkt) = Packet::decode(&data) {
                // Results from a pre-reconfiguration epoch carry the
                // old wire job id and are dropped here.
                if pkt.job == wire_job {
                    if let RState::Running(w) = &mut state {
                        first_result.get_or_insert_with(|| epoch0.elapsed());
                        for out in w.on_result(&pkt, now_ns())? {
                            send_update(&mut port, out, wire_job);
                        }
                    }
                }
            }
        }

        if let RState::Running(w) = &mut state {
            let t = now_ns();
            if w.next_deadline().is_some_and(|d| d <= t) {
                for pkt in w.expired(t)? {
                    send_update(&mut port, pkt, wire_job);
                }
            }
        }
        if matches!(&state, RState::Running(w) if w.is_done()) {
            let RState::Running(w) = std::mem::replace(&mut state, RState::Registering) else {
                unreachable!()
            };
            stats.merge(w.stats());
            state = RState::Finished(Box::new(w.into_stream()));
            port.send(ctrl_ep, &CtrlMsg::Done { job, wid, epoch }.encode());
        }
    };
    Ok(WorkerOut {
        tensors,
        stats,
        first_result,
        port_stats: port.stats(),
    })
}

/// Run one controller-managed job over a transport fabric.
///
/// `ports` layout: `[switch, worker 0, …, worker n−1, controller]`.
/// `updates[w]` is worker `w`'s tensor set. With `cfg.kill` set, the
/// named worker crashes mid-run; the controller detects the silence,
/// quiesces, shrinks the job, and the survivors complete under the
/// reconfigured membership.
pub fn run_controlled<P: Port + 'static>(
    ports: Vec<P>,
    updates: Vec<Vec<Vec<f32>>>,
    proto: &Protocol,
    cfg: &CtrlRunConfig,
) -> Result<CtrlRunReport> {
    proto.validate()?;
    let n = proto.n_workers;
    if updates.len() != n {
        return Err(Error::InvalidConfig("one update set per worker".into()));
    }
    if ports.len() != n + 2 {
        return Err(Error::InvalidConfig(format!(
            "need {} ports (switch + workers + controller), got {}",
            n + 2,
            ports.len()
        )));
    }
    // Coarse-clocked transports (UDP's 100 us SO_RCVTIMEO granule)
    // cannot honor a finer RTO; resolve before the config is propagated
    // to workers and the controller's reconfigure messages.
    let proto = &switchml_transport::resolve_run_proto(proto, &ports)?;

    let probe = TensorStream::from_f32(&updates[0], proto.mode, 1.0, proto.k)?;
    let n_chunks = probe.total_chunks();
    let hb = cfg.heartbeat.as_nanos() as u64;
    let ctrl_cfg = CtrlConfig {
        heartbeat_interval_ns: hb,
        failure_timeout_ns: cfg.failure_timeout.as_nanos() as u64,
        probe_rto_ns: hb,
        probe_policy: RtoPolicy::ExponentialBackoff {
            max_ns: cfg.failure_timeout.as_nanos() as u64,
        },
        probe_limit: 3,
    };
    let mut controller = Controller::new(ctrl_cfg, vec![PipelineModel::default()]);
    controller.create_job(0, proto.clone(), cfg.bound, n_chunks, 0)?;

    let t0 = Instant::now();
    let deadline = t0 + cfg.max_wall;
    let stop = Arc::new(AtomicBool::new(false));
    let job_done = Arc::new(AtomicBool::new(false));
    let events = Arc::new(Mutex::new(Vec::new()));

    let mut ports = ports;
    let ctrl_port = ports.pop().expect("controller port");
    let worker_ports: Vec<P> = ports.drain(1..).collect();
    let switch_port = ports.pop().expect("switch port");

    // The controller learns of a switch restart only after the switch
    // has been silent for a failure timeout — firing the failover
    // before the wipe would let the freshly admitted pool be wiped
    // too, stranding the survivors.
    let failover_after = cfg.switch_restart.map(|d| d + cfg.failure_timeout);

    std::thread::scope(|scope| {
        let switch_handle = {
            let stop = Arc::clone(&stop);
            let restart = cfg.switch_restart;
            scope.spawn(move || switch_thread(switch_port, &stop, deadline, t0, restart))
        };
        let ctrl_handle = {
            let stop = Arc::clone(&stop);
            let job_done = Arc::clone(&job_done);
            let events = Arc::clone(&events);
            let tick = cfg.heartbeat / 2;
            scope.spawn(move || {
                controller_thread(
                    ctrl_port,
                    controller,
                    t0,
                    tick,
                    &stop,
                    &job_done,
                    deadline,
                    &events,
                    failover_after,
                    cfg.resize.clone(),
                )
            })
        };
        let worker_handles: Vec<_> = worker_ports
            .into_iter()
            .enumerate()
            .map(|(w, port)| {
                let stop = Arc::clone(&stop);
                let tensors = updates[w].clone();
                let base = proto.clone();
                let cfg = cfg.clone();
                let kill = match cfg.kill {
                    Some((victim, after)) if victim as usize == w => Some(after),
                    _ => None,
                };
                let ctrl_ep = controller_endpoint(n);
                scope.spawn(move || {
                    worker_thread(
                        port, 0, ctrl_ep, tensors, base, &cfg, t0, kill, &stop, deadline,
                    )
                })
            })
            .collect();

        // Tear the fabric down once the controller declares the job
        // complete, or the budget runs out (threads then report why).
        while !job_done.load(Ordering::Acquire) && Instant::now() <= deadline {
            std::thread::sleep(Duration::from_micros(500));
        }
        stop.store(true, Ordering::Release);

        let mut results = Vec::with_capacity(n);
        let mut worker_stats = Vec::with_capacity(n);
        let mut transport_stats = PortStats::default();
        let mut first_err = None;
        for h in worker_handles {
            match h.join().expect("worker thread panicked") {
                Ok(out) => {
                    results.push(out.tensors);
                    worker_stats.push(out.stats);
                    transport_stats.merge(out.port_stats);
                }
                Err(e) => {
                    results.push(None);
                    worker_stats.push(EngineStats::default());
                    first_err = first_err.or(Some(e));
                }
            }
        }
        let ctrl_out = ctrl_handle.join().expect("controller thread panicked")?;
        let switch_out = switch_handle.join().expect("switch thread panicked")?;
        transport_stats.merge(ctrl_out.port_stats);
        transport_stats.merge(switch_out.port_stats);
        if !job_done.load(Ordering::Acquire) {
            return Err(first_err.unwrap_or_else(|| {
                Error::ProtocolViolation("job did not complete within the budget".into())
            }));
        }
        Ok(CtrlRunReport {
            results,
            events: events.lock().unwrap().clone(),
            final_epoch: ctrl_out.final_epoch,
            final_n: ctrl_out.final_n,
            final_f: ctrl_out.final_f,
            final_pool: ctrl_out.final_pool,
            worker_stats,
            switch_stats: switch_out.total,
            per_pool_switch_stats: switch_out.per_pool,
            transport_stats,
            wall: t0.elapsed(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchml_transport::channel::channel_fabric;

    fn proto(n: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 8,
            pool_size: 16,
            rto_ns: 2_000_000,   // 2 ms real time
            scaling_factor: 1e9, // deliberately high; controller clamps
            ..Protocol::default()
        }
    }

    fn updates(n: usize, elems: usize) -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 * 0.5 + (i % 7) as f32 * 0.25)
                    .collect()]
            })
            .collect()
    }

    #[test]
    fn controlled_allreduce_completes() {
        let n = 3;
        let ports = channel_fabric(n + 2);
        let report =
            run_controlled(ports, updates(n, 256), &proto(n), &CtrlRunConfig::default()).unwrap();
        assert_eq!(report.final_epoch, 0);
        assert_eq!(report.final_n, n);
        let first = report.results[0].as_ref().unwrap();
        for w in 1..n {
            assert_eq!(report.results[w].as_ref().unwrap(), first);
        }
        assert!(report.events.iter().any(|e| e.contains("complete")));
    }

    #[test]
    fn killed_worker_triggers_shrink_and_survivors_finish() {
        let n = 3;
        let cfg = CtrlRunConfig {
            kill: Some((1, Duration::from_millis(8))),
            heartbeat: Duration::from_millis(2),
            failure_timeout: Duration::from_millis(10),
            ..CtrlRunConfig::default()
        };
        let ports = channel_fabric(n + 2);
        // Large enough that the stream is still in flight at kill time.
        let report = run_controlled(ports, updates(n, 16384), &proto(n), &cfg).unwrap();
        assert_eq!(report.final_n, n - 1, "events: {:?}", report.events);
        assert!(report.final_epoch >= 1);
        assert!(
            report.events.iter().any(|e| e.contains("dead")),
            "events: {:?}",
            report.events
        );
        assert!(report.results[1].is_none());
        let a = report.results[0].as_ref().unwrap();
        let b = report.results[2].as_ref().unwrap();
        assert_eq!(a, b, "survivors must agree exactly");
    }

    /// §5.4 switch failure: the switch process restarts mid-run,
    /// losing every pool. The controller notices, quiesces the
    /// (unharmed) workers, bumps the epoch, re-admits, and the workers
    /// re-drive everything past the completion frontier. The final
    /// sums must be exactly what an uninterrupted run produces.
    #[test]
    fn switch_restart_recovers_via_epoch_bump() {
        let n = 3;
        let elems = 16384;
        let cfg = CtrlRunConfig {
            switch_restart: Some(Duration::from_millis(8)),
            heartbeat: Duration::from_millis(2),
            failure_timeout: Duration::from_millis(10),
            ..CtrlRunConfig::default()
        };
        let ports = channel_fabric(n + 2);
        let report = run_controlled(ports, updates(n, elems), &proto(n), &cfg).unwrap();
        assert_eq!(report.final_n, n, "no worker died: {:?}", report.events);
        assert!(
            report.final_epoch >= 1,
            "restart must bump the epoch: {:?}",
            report.events
        );
        assert!(
            report.events.iter().any(|e| e.contains("switch restart")),
            "events: {:?}",
            report.events
        );
        // Clean reference: same inputs, no faults.
        let clean = run_controlled(
            channel_fabric(n + 2),
            updates(n, elems),
            &proto(n),
            &CtrlRunConfig::default(),
        )
        .unwrap();
        let first = report.results[0].as_ref().unwrap();
        for w in 0..n {
            assert_eq!(report.results[w].as_ref().unwrap(), first);
        }
        assert_eq!(
            first,
            clean.results[0].as_ref().unwrap(),
            "recovered run must be bit-identical to the clean run"
        );
    }

    /// Crash-and-resume over a real UDP fabric: a worker dies mid-run,
    /// the survivors shrink into a bumped epoch and finish; the report
    /// carries the engine/switch/transport counters of the whole run.
    #[test]
    fn udp_crash_and_resume_shrinks_and_finishes() {
        use switchml_transport::udp::udp_fabric;
        let n = 3;
        let cfg = CtrlRunConfig {
            kill: Some((2, Duration::from_millis(8))),
            heartbeat: Duration::from_millis(2),
            failure_timeout: Duration::from_millis(10),
            ..CtrlRunConfig::default()
        };
        let Ok(ports) = udp_fabric(n + 2) else {
            eprintln!("skipping: no loopback UDP available");
            return;
        };
        let report = run_controlled(ports, updates(n, 16384), &proto(n), &cfg).unwrap();
        assert_eq!(report.final_n, n - 1, "events: {:?}", report.events);
        assert!(report.final_epoch >= 1);
        assert!(report.results[2].is_none());
        let a = report.results[0].as_ref().unwrap();
        let b = report.results[1].as_ref().unwrap();
        assert_eq!(a, b, "survivors must agree exactly");
        // The whole run's counters surface in the report.
        let sent: u64 = report.worker_stats.iter().map(|s| s.sent).sum();
        assert!(sent > 0, "no worker counters harvested");
    }

    /// Live repartition under load: the job is shrunk at its chunk
    /// frontier mid-training, then regrown, and still finishes
    /// bit-identical to an unpartitioned reference run. Committed
    /// chunks survive both repartitions; stragglers from the old
    /// partitions die on the §5.4 epoch fence.
    #[test]
    fn shrink_then_regrow_matches_unpartitioned_reference() {
        let n = 3;
        let elems = 16384;
        let cfg = CtrlRunConfig {
            resize: vec![
                (Duration::from_millis(6), 4),
                (Duration::from_millis(14), 24),
            ],
            heartbeat: Duration::from_millis(2),
            failure_timeout: Duration::from_millis(10),
            ..CtrlRunConfig::default()
        };
        let ports = channel_fabric(n + 2);
        let report = run_controlled(ports, updates(n, elems), &proto(n), &cfg).unwrap();
        assert_eq!(report.final_n, n, "no worker died: {:?}", report.events);
        assert!(
            report.final_epoch >= 2,
            "both repartitions must bump the epoch: {:?}",
            report.events
        );
        assert_eq!(report.final_pool, 24, "events: {:?}", report.events);
        let clean = run_controlled(
            channel_fabric(n + 2),
            updates(n, elems),
            &proto(n),
            &CtrlRunConfig::default(),
        )
        .unwrap();
        let first = report.results[0].as_ref().unwrap();
        for w in 0..n {
            assert_eq!(report.results[w].as_ref().unwrap(), first);
        }
        assert_eq!(
            first,
            clean.results[0].as_ref().unwrap(),
            "repartitioned run must be bit-identical to the reference"
        );
    }

    /// The adaptive estimator runs end to end under the control plane:
    /// samples accumulate and the epoch-stamped traffic still
    /// completes.
    #[test]
    fn controlled_run_with_adaptive_rto() {
        let n = 2;
        let p = Protocol {
            rto_policy: switchml_core::config::RtoPolicy::Adaptive {
                min_ns: 200_000,
                max_ns: 50_000_000,
            },
            ..proto(n)
        };
        let ports = channel_fabric(n + 2);
        let report =
            run_controlled(ports, updates(n, 2048), &p, &CtrlRunConfig::default()).unwrap();
        let samples: u64 = report.worker_stats.iter().map(|s| s.rtt_samples).sum();
        assert!(samples > 0, "no RTT samples under adaptive policy");
        let first = report.results[0].as_ref().unwrap();
        assert_eq!(report.results[1].as_ref().unwrap(), first);
    }
}
