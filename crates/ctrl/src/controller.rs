//! Sans-IO control-plane state machine.
//!
//! The [`Controller`] owns no sockets and no clocks: drivers feed it
//! `(message, now)` pairs via [`Controller::on_message`] and periodic
//! [`Controller::on_tick`] calls, and it returns a list of
//! [`Action`]s to execute (messages to send, switch ledger updates,
//! operator-visible events). The same state machine therefore runs
//! unchanged under the discrete-event simulator and the threaded
//! transport runner, and is trivially unit-testable with synthetic
//! timestamps.
//!
//! # Job lifecycle
//!
//! A job is created with [`Controller::create_job`], which admits it
//! into the target switch's [`MultiJobSwitch`] ledger (the
//! controller's model of switch SRAM; admission fails if the pool
//! does not fit the [`PipelineModel`] budget). Workers `Register`,
//! and once `n` have joined the controller assigns dense worker ids,
//! negotiates the scaling factor (the requested factor clamped to
//! Theorem 2's `max_safe_factor(n, bound)`), and broadcasts
//! `Welcome` + `Start`.
//!
//! # Failure detection
//!
//! Workers heartbeat every `heartbeat_interval_ns`. When a worker has
//! been silent for `failure_timeout_ns` the controller probes it,
//! spacing successive probes with the configured [`RtoPolicy`]
//! (exponential backoff by default, mirroring the dataplane's
//! retransmission policy). After `probe_limit` unanswered probes the
//! worker is declared dead — deterministically, as a pure function of
//! message timestamps.
//!
//! # Live reconfiguration (shrink n → n−1)
//!
//! On a death the controller quiesces the survivors. Each returns the
//! bitmap of chunks whose aggregate it already holds; the *frontier*
//! — the bitwise AND of those bitmaps — is the set of chunks that are
//! fully aggregated everywhere and need no further work. The
//! controller then rescales `f` for the new `n` (Theorem 2), rotates
//! the job's wire id so stale dataplane traffic from the old epoch is
//! dropped at both switch and workers, swaps the switch pool
//! ([`MultiJobSwitch::reset_job`]), and tells every survivor to
//! resume streaming exactly the chunks outside the frontier.
//!
//! # Switch failover
//!
//! [`Controller::fail_over_all`] drains every job on a failing switch
//! through the same quiesce path, re-admitting each onto the standby
//! switch with its committed per-worker state replayed via the
//! frontier. No slot state is lost: chunks inside the frontier keep
//! their aggregates, everything else is re-aggregated on the standby.

use std::collections::HashMap;

use switchml_core::config::{Protocol, RtoPolicy, TimeNs};
use switchml_core::error::{Error, Result};
use switchml_core::quant::scaling::max_safe_factor;
use switchml_core::switch::multijob::MultiJobSwitch;
use switchml_core::switch::pipeline::PipelineModel;

use crate::msg::{bitmap_and, chunk_bitmap, CtrlMsg, PeerId};

/// Tunables for the control plane.
#[derive(Debug, Clone)]
pub struct CtrlConfig {
    /// How often workers are expected to heartbeat.
    pub heartbeat_interval_ns: TimeNs,
    /// Silence longer than this triggers probing.
    pub failure_timeout_ns: TimeNs,
    /// Base spacing between liveness probes.
    pub probe_rto_ns: TimeNs,
    /// How probe spacing evolves across consecutive misses.
    pub probe_policy: RtoPolicy,
    /// Unanswered probes before a worker is declared dead.
    pub probe_limit: u32,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            heartbeat_interval_ns: 50_000,
            failure_timeout_ns: 200_000,
            probe_rto_ns: 50_000,
            probe_policy: RtoPolicy::ExponentialBackoff { max_ns: 400_000 },
            probe_limit: 3,
        }
    }
}

/// What the driver must do on the controller's behalf.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Send `msg` to a worker peer.
    Send { to: PeerId, msg: CtrlMsg },
    /// Apply `msg` (AdmitJob / EvictJob) to physical switch `switch`.
    SwitchCtl { switch: usize, msg: CtrlMsg },
    /// Operator event: worker `wid` of `job` was declared dead.
    WorkerDead { job: u8, wid: u16 },
    /// Operator event: the job reconfigured into a new epoch.
    Reconfigured { job: u8, epoch: u32, n: u16, f: f64 },
    /// Operator event: every member finished its stream.
    JobComplete { job: u8 },
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for `n` registrations.
    Forming,
    /// Streaming; members are monitored for liveness.
    Running,
    /// Survivors are draining their dataplane before a new epoch.
    Quiescing,
    /// Every member reported `Done`.
    Complete,
}

#[derive(Debug, Clone)]
struct Member {
    peer: PeerId,
    /// The wid this member was assigned for the current epoch (at
    /// Welcome, then at each Reconfigure). Stable until the next
    /// epoch: a death mid-epoch must NOT renumber the survivors, or
    /// their in-flight heartbeats and acks would be misattributed.
    wid: u16,
    alive: bool,
    last_seen: TimeNs,
    /// Probes sent since the last sign of life.
    probes: u32,
    cur_probe_rto: TimeNs,
    next_probe: TimeNs,
    /// Quiesce bookkeeping for the in-flight reconfiguration.
    acked: bool,
    done_bitmap: Vec<u8>,
    /// Reported `Done` in the current epoch.
    done: bool,
    /// Has sent *any* current-epoch message (used to detect a lost
    /// `Reconfigure`, which is then re-sent).
    synced: bool,
}

#[derive(Debug, Clone)]
struct Job {
    /// Protocol at the *current* n (scaling_factor = negotiated f).
    proto: Protocol,
    /// The operator-requested factor, re-clamped on every shrink.
    requested_f: f64,
    /// Per-worker gradient magnitude bound (Theorem 2's `B`).
    bound: f64,
    /// Total chunks in the tensor stream (for frontier bitmaps).
    n_chunks: u64,
    epoch: u32,
    phase: Phase,
    /// Index of the physical switch currently hosting the pool.
    switch: usize,
    /// Dataplane job id for the current epoch; rotated on every
    /// reconfiguration so stale traffic self-identifies.
    wire_job: u8,
    /// All members ever registered, in registration order. Each live
    /// member carries the wid assigned for the current epoch.
    members: Vec<Member>,
    /// Target switch for the reconfiguration in flight, if this
    /// quiesce is a failover rather than a shrink.
    pending_failover: Option<usize>,
    /// Target pool size for the reconfiguration in flight, if this
    /// quiesce is a scheduler-driven slot repartition (grow/shrink of
    /// the job's slot range while it keeps running).
    pending_resize: Option<usize>,
    /// Control messages are fire-and-forget on a lossy fabric, so the
    /// controller re-sends `Quiesce` (to unacked members) and
    /// `Reconfigure` (to unsynced members) on this cadence.
    resend_at: TimeNs,
    /// The per-survivor `Reconfigure` of the current epoch, kept until
    /// every survivor shows a sign of life in that epoch.
    last_reconfig: Vec<(PeerId, CtrlMsg)>,
}

impl Job {
    fn alive_count(&self) -> usize {
        self.members.iter().filter(|m| m.alive).count()
    }

    fn member_by_wid(&mut self, wid: u16) -> Option<&mut Member> {
        self.members.iter_mut().find(|m| m.alive && m.wid == wid)
    }
}

/// The control-plane brain: job table plus one [`MultiJobSwitch`]
/// ledger per physical switch.
pub struct Controller {
    cfg: CtrlConfig,
    switches: Vec<MultiJobSwitch>,
    jobs: HashMap<u8, Job>,
    /// Monotonic allocator for dataplane wire ids.
    next_wire_job: u8,
}

impl Controller {
    /// One ledger per physical switch, all sharing nothing.
    pub fn new(cfg: CtrlConfig, pipelines: Vec<PipelineModel>) -> Self {
        Controller {
            cfg,
            switches: pipelines.into_iter().map(MultiJobSwitch::new).collect(),
            jobs: HashMap::new(),
            next_wire_job: 0,
        }
    }

    /// Register a job and reserve its pool on switch `switch`. The
    /// requested scaling factor is clamped to `max_safe_factor(n,
    /// bound)` at admission and again on every shrink.
    pub fn create_job(
        &mut self,
        job: u8,
        mut proto: Protocol,
        bound: f64,
        n_chunks: u64,
        switch: usize,
    ) -> Result<()> {
        if self.jobs.contains_key(&job) {
            return Err(Error::InvalidConfig(format!("job {job} already exists")));
        }
        if switch >= self.switches.len() {
            return Err(Error::OutOfRange("switch index"));
        }
        let requested_f = proto.scaling_factor;
        proto.scaling_factor = requested_f.min(max_safe_factor(proto.n_workers, bound));
        let wire_job = self.alloc_wire_job()?;
        self.switches[switch].admit(wire_job, &proto)?;
        self.jobs.insert(
            job,
            Job {
                proto,
                requested_f,
                bound,
                n_chunks,
                epoch: 0,
                phase: Phase::Forming,
                switch,
                wire_job,
                members: Vec::new(),
                pending_failover: None,
                pending_resize: None,
                resend_at: 0,
                last_reconfig: Vec::new(),
            },
        );
        Ok(())
    }

    fn alloc_wire_job(&mut self) -> Result<u8> {
        // Wire ids are never reused while any ledger still knows them,
        // so a resurrected packet from epoch e can't alias epoch e+1.
        for _ in 0..=u8::MAX as usize {
            let id = self.next_wire_job;
            self.next_wire_job = self.next_wire_job.wrapping_add(1);
            if self.switches.iter().all(|s| s.job_proto(id).is_none()) {
                return Ok(id);
            }
        }
        Err(Error::InvalidConfig("wire job id space exhausted".into()))
    }

    /// Feed one inbound control message. `from` identifies the peer
    /// (used to route replies and detect re-registrations).
    pub fn on_message(&mut self, from: PeerId, msg: CtrlMsg, now: TimeNs) -> Vec<Action> {
        let mut out = Vec::new();
        match msg {
            CtrlMsg::Register { job } => self.handle_register(from, job, now, &mut out),
            CtrlMsg::Heartbeat { job, wid, epoch } => {
                self.touch(job, wid, epoch, now);
            }
            CtrlMsg::QuiesceAck {
                job,
                wid,
                epoch,
                done,
            } => self.handle_quiesce_ack(job, wid, epoch, done, now, &mut out),
            CtrlMsg::Done { job, wid, epoch } => self.handle_done(job, wid, epoch, now, &mut out),
            // Controller→worker / controller→switch messages looping
            // back (e.g. a misdirected frame) are ignored.
            _ => {}
        }
        out
    }

    fn handle_register(&mut self, from: PeerId, job: u8, now: TimeNs, out: &mut Vec<Action>) {
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        if let Some(idx) = j.members.iter().position(|m| m.peer == from) {
            // Duplicate Register: the worker retransmits because our
            // Welcome was lost. Refresh liveness and, if the job is
            // already underway, replay the (current-epoch) Welcome.
            let m = &mut j.members[idx];
            let wid = m.wid;
            m.last_seen = now;
            m.probes = 0;
            if m.alive && j.phase == Phase::Running {
                out.push(Action::Send {
                    to: from,
                    msg: CtrlMsg::Welcome {
                        job,
                        wid,
                        epoch: j.epoch,
                        n: j.proto.n_workers as u16,
                        f: j.proto.scaling_factor,
                        wire_job: j.wire_job,
                        switch: j.switch as u8,
                    },
                });
                out.push(Action::Send {
                    to: from,
                    msg: CtrlMsg::Start {
                        job,
                        epoch: j.epoch,
                    },
                });
            }
            return;
        }
        if j.phase != Phase::Forming || j.members.len() >= j.proto.n_workers {
            return;
        }
        let wid = j.members.len() as u16;
        j.members.push(Member {
            peer: from,
            wid,
            alive: true,
            last_seen: now,
            probes: 0,
            cur_probe_rto: 0,
            next_probe: 0,
            acked: false,
            done_bitmap: Vec::new(),
            done: false,
            synced: true,
        });
        if j.members.len() == j.proto.n_workers {
            j.phase = Phase::Running;
            let (n, f, epoch) = (j.proto.n_workers as u16, j.proto.scaling_factor, j.epoch);
            let (wire_job, switch) = (j.wire_job, j.switch as u8);
            // Install the pool on the physical switch before any
            // worker is told to start (same-batch ordering: the admit
            // takes one hop, the first update at least two).
            out.push(Action::SwitchCtl {
                switch: j.switch,
                msg: CtrlMsg::AdmitJob {
                    job: j.wire_job,
                    epoch,
                    proto: j.proto.clone(),
                    members: j.members.iter().map(|m| m.peer).collect(),
                },
            });
            for (wid, m) in j.members.iter_mut().enumerate() {
                m.last_seen = now;
                out.push(Action::Send {
                    to: m.peer,
                    msg: CtrlMsg::Welcome {
                        job,
                        wid: wid as u16,
                        epoch,
                        n,
                        f,
                        wire_job,
                        switch,
                    },
                });
            }
            for m in &j.members {
                out.push(Action::Send {
                    to: m.peer,
                    msg: CtrlMsg::Start { job, epoch },
                });
            }
        }
    }

    /// Any authenticated-enough sign of life resets probe state.
    fn touch(&mut self, job: u8, wid: u16, epoch: u32, now: TimeNs) {
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        if epoch != j.epoch {
            return; // stale epoch: not proof of progress
        }
        if let Some(m) = j.member_by_wid(wid) {
            m.last_seen = now;
            m.probes = 0;
            m.synced = true;
        }
    }

    fn handle_done(&mut self, job: u8, wid: u16, epoch: u32, now: TimeNs, out: &mut Vec<Action>) {
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        if epoch != j.epoch || j.phase != Phase::Running {
            return;
        }
        if let Some(m) = j.member_by_wid(wid) {
            m.last_seen = now;
            m.probes = 0;
            m.done = true;
        }
        if j.members.iter().filter(|m| m.alive).all(|m| m.done) {
            j.phase = Phase::Complete;
            let (switch, wire_job) = (j.switch, j.wire_job);
            // Ledger eviction can only fail if the ledger lost track of
            // the job, which would be a controller bug.
            self.switches[switch]
                .evict(wire_job)
                .expect("complete job must be admitted");
            out.push(Action::SwitchCtl {
                switch,
                msg: CtrlMsg::EvictJob { job: wire_job },
            });
            out.push(Action::JobComplete { job });
        }
    }

    fn handle_quiesce_ack(
        &mut self,
        job: u8,
        wid: u16,
        epoch: u32,
        done: Vec<u8>,
        now: TimeNs,
        out: &mut Vec<Action>,
    ) {
        let Some(j) = self.jobs.get_mut(&job) else {
            return;
        };
        if epoch != j.epoch || j.phase != Phase::Quiescing {
            return;
        }
        if let Some(m) = j.member_by_wid(wid) {
            m.last_seen = now;
            m.probes = 0;
            m.synced = true;
            if !m.acked {
                m.acked = true;
                m.done_bitmap = done;
            }
        }
        if j.members.iter().filter(|m| m.alive).all(|m| m.acked) {
            self.finish_quiesce(job, now, out);
        }
    }

    /// Periodic liveness scan. Call at roughly the heartbeat interval;
    /// correctness only depends on the timestamps, not the call rate.
    pub fn on_tick(&mut self, now: TimeNs) -> Vec<Action> {
        let mut out = Vec::new();
        let job_ids: Vec<u8> = self.jobs.keys().copied().collect();
        for job in job_ids {
            let j = self.jobs.get_mut(&job).unwrap();
            if j.phase != Phase::Running && j.phase != Phase::Quiescing {
                continue;
            }
            let mut newly_dead = Vec::new();
            for idx in 0..j.members.len() {
                let m = &mut j.members[idx];
                let wid = m.wid;
                if !m.alive || now.saturating_sub(m.last_seen) < self.cfg.failure_timeout_ns {
                    continue;
                }
                if m.probes == 0 {
                    m.cur_probe_rto = self.cfg.probe_rto_ns;
                    m.next_probe = now;
                }
                if m.probes < self.cfg.probe_limit {
                    if now >= m.next_probe {
                        m.probes += 1;
                        m.next_probe = now + m.cur_probe_rto;
                        if let RtoPolicy::ExponentialBackoff { max_ns } = self.cfg.probe_policy {
                            m.cur_probe_rto = (m.cur_probe_rto * 2).min(max_ns);
                        }
                        out.push(Action::Send {
                            to: m.peer,
                            msg: CtrlMsg::Probe {
                                job,
                                epoch: j.epoch,
                            },
                        });
                    }
                } else if now >= m.next_probe {
                    m.alive = false;
                    newly_dead.push((idx, wid));
                }
            }
            if !newly_dead.is_empty() {
                for &(_, wid) in &newly_dead {
                    out.push(Action::WorkerDead { job, wid });
                }
                self.begin_quiesce(job, now, &mut out);
                // If the job was *already* quiescing, the death may
                // have removed the last straggler — or the last
                // survivor. No further QuiesceAck will arrive in
                // either case, so re-check the finish condition here.
                self.maybe_finish_quiesce(job, now, &mut out);
                continue;
            }
            // Control messages are not individually acked on the wire;
            // re-send the phase's pending message until every member
            // responds (Quiesce → QuiesceAck, Reconfigure → any
            // current-epoch message).
            let j = self.jobs.get_mut(&job).unwrap();
            if now < j.resend_at {
                continue;
            }
            j.resend_at = now + self.cfg.heartbeat_interval_ns;
            match j.phase {
                Phase::Quiescing => {
                    let epoch = j.epoch;
                    for m in j.members.iter().filter(|m| m.alive && !m.acked) {
                        out.push(Action::Send {
                            to: m.peer,
                            msg: CtrlMsg::Quiesce { job, epoch },
                        });
                    }
                }
                Phase::Running if !j.last_reconfig.is_empty() => {
                    let synced: Vec<PeerId> = j
                        .members
                        .iter()
                        .filter(|m| m.alive && m.synced)
                        .map(|m| m.peer)
                        .collect();
                    j.last_reconfig.retain(|(p, _)| !synced.contains(p));
                    for (peer, msg) in &j.last_reconfig {
                        out.push(Action::Send {
                            to: *peer,
                            msg: msg.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Drain every job hosted on switch `from` and re-home it onto
    /// switch `to`, replaying committed state through the frontier.
    pub fn fail_over_all(&mut self, from: usize, to: usize, now: TimeNs) -> Vec<Action> {
        let mut out = Vec::new();
        let job_ids: Vec<u8> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.switch == from && j.phase == Phase::Running)
            .map(|(&id, _)| id)
            .collect();
        for job in job_ids {
            self.jobs.get_mut(&job).unwrap().pending_failover = Some(to);
            self.begin_quiesce(job, now, &mut out);
        }
        out
    }

    /// Live slot repartition: quiesce the running job at its chunk
    /// frontier, then reconfigure it onto a pool of `new_pool_size`
    /// slots under a bumped epoch. The §5.4 fence makes this safe
    /// while traffic is in flight: stragglers from the old partition
    /// carry the old epoch byte (and the old wire job id) and are
    /// counted-and-dropped, never folded into the new pool.
    ///
    /// The scheduler calls this to preempt slots from a best-effort
    /// tenant (shrink) or hand them back (grow). Chunks already
    /// aggregated at every member survive via the frontier bitmap —
    /// preemption never loses a committed chunk.
    pub fn resize_job(
        &mut self,
        job: u8,
        new_pool_size: usize,
        now: TimeNs,
    ) -> Result<Vec<Action>> {
        let j = self
            .jobs
            .get_mut(&job)
            .ok_or(Error::OutOfRange("resize of unknown job"))?;
        if new_pool_size == 0 {
            return Err(Error::InvalidConfig("pool_size must be > 0".into()));
        }
        match j.phase {
            Phase::Running => {}
            Phase::Quiescing => {
                // Fold into the quiesce already in flight.
                j.pending_resize = Some(new_pool_size);
                return Ok(Vec::new());
            }
            Phase::Forming => {
                // Not streaming yet: repartition the ledger in place,
                // no quiesce needed.
                let mut proto = j.proto.clone();
                proto.pool_size = new_pool_size;
                let (switch, wire) = (j.switch, j.wire_job);
                self.switches[switch].reset_job(wire, &proto)?;
                self.jobs.get_mut(&job).unwrap().proto = proto;
                return Ok(Vec::new());
            }
            Phase::Complete => {
                return Err(Error::InvalidConfig(format!("job {job} already complete")));
            }
        }
        if j.proto.pool_size == new_pool_size {
            return Ok(Vec::new());
        }
        j.pending_resize = Some(new_pool_size);
        let mut out = Vec::new();
        self.begin_quiesce(job, now, &mut out);
        Ok(out)
    }

    /// Ask every survivor to stop its dataplane and report progress.
    /// If none are left alive, the job simply completes as dead.
    fn begin_quiesce(&mut self, job: u8, now: TimeNs, out: &mut Vec<Action>) {
        let j = self.jobs.get_mut(&job).unwrap();
        if j.phase == Phase::Quiescing {
            return; // second failure mid-quiesce folds into this round
        }
        j.phase = Phase::Quiescing;
        for m in &mut j.members {
            m.acked = false;
            m.done_bitmap.clear();
            m.done = false;
        }
        if j.alive_count() == 0 {
            let (switch, wire_job) = (j.switch, j.wire_job);
            j.phase = Phase::Complete;
            self.switches[switch]
                .evict(wire_job)
                .expect("quiesced job must be admitted");
            out.push(Action::SwitchCtl {
                switch,
                msg: CtrlMsg::EvictJob { job: wire_job },
            });
            out.push(Action::JobComplete { job });
            return;
        }
        j.resend_at = now + self.cfg.heartbeat_interval_ns;
        let epoch = j.epoch;
        for m in j.members.iter().filter(|m| m.alive) {
            out.push(Action::Send {
                to: m.peer,
                msg: CtrlMsg::Quiesce { job, epoch },
            });
        }
    }

    /// Re-check an in-flight quiesce after a membership change. A
    /// death mid-quiesce can leave every remaining survivor already
    /// acked (the dead worker was the only straggler), or no
    /// survivors at all; neither case produces another QuiesceAck,
    /// so [`handle_quiesce_ack`](Self::handle_quiesce_ack) alone
    /// would never fire the finish.
    fn maybe_finish_quiesce(&mut self, job: u8, now: TimeNs, out: &mut Vec<Action>) {
        let j = self.jobs.get_mut(&job).unwrap();
        if j.phase != Phase::Quiescing {
            return;
        }
        if j.alive_count() == 0 {
            let (switch, wire_job) = (j.switch, j.wire_job);
            j.phase = Phase::Complete;
            self.switches[switch]
                .evict(wire_job)
                .expect("quiesced job must be admitted");
            out.push(Action::SwitchCtl {
                switch,
                msg: CtrlMsg::EvictJob { job: wire_job },
            });
            out.push(Action::JobComplete { job });
            return;
        }
        if j.members.iter().filter(|m| m.alive).all(|m| m.acked) {
            self.finish_quiesce(job, now, out);
        }
    }

    /// All survivors acked: compute the frontier, renegotiate f for
    /// the surviving n, rotate the wire id, swap the pool (possibly
    /// onto a failover target), and resume everyone.
    fn finish_quiesce(&mut self, job: u8, now: TimeNs, out: &mut Vec<Action>) {
        let j = self.jobs.get_mut(&job).unwrap();
        let n_new = j.alive_count();
        debug_assert!(n_new > 0, "finish_quiesce with no survivors");

        // Frontier = chunks aggregated at every survivor.
        let mut frontier = chunk_bitmap(j.n_chunks, |_| true);
        for m in j.members.iter().filter(|m| m.alive) {
            bitmap_and(&mut frontier, &m.done_bitmap);
        }

        let old_switch = j.switch;
        let old_wire = j.wire_job;
        let old_pool = j.proto.pool_size;
        let new_switch = j.pending_failover.take().unwrap_or(old_switch);

        let mut proto = j.proto.clone();
        proto.n_workers = n_new;
        proto.scaling_factor = j.requested_f.min(max_safe_factor(n_new, j.bound));
        if let Some(pool) = j.pending_resize.take() {
            proto.pool_size = pool;
        }

        j.epoch += 1;
        let epoch = j.epoch;
        let survivors: Vec<PeerId> = j
            .members
            .iter()
            .filter(|m| m.alive)
            .map(|m| m.peer)
            .collect();

        let new_wire = self.alloc_wire_job().expect("wire id available");
        // Swap pools: evict the old epoch's pool, then admit the new
        // one (on the failover target when re-homing). A grow can lose
        // the race against a concurrent admission that squeezed the
        // SRAM budget; the job then resumes at its old size rather
        // than stalling (the scheduler will retry on the next
        // rebalance).
        self.switches[old_switch]
            .evict(old_wire)
            .expect("reconfiguring job must be admitted");
        if self.switches[new_switch].admit(new_wire, &proto).is_err() {
            proto.pool_size = old_pool;
            self.switches[new_switch]
                .admit(new_wire, &proto)
                .expect("same-size pool must still fit");
        }
        self.switches[new_switch]
            .set_job_epoch(new_wire, (epoch & 0xff) as u8)
            .expect("just admitted");
        let (n, f) = (proto.n_workers as u16, proto.scaling_factor);
        let pool_size = proto.pool_size as u32;

        let j = self.jobs.get_mut(&job).unwrap();
        j.proto = proto;
        j.switch = new_switch;
        j.wire_job = new_wire;
        j.phase = Phase::Running;
        j.resend_at = now + self.cfg.heartbeat_interval_ns;
        // Renumber the survivors densely for the new epoch; this is
        // the only point where a member's wid may change.
        let mut next_wid = 0u16;
        for m in &mut j.members {
            m.last_seen = now;
            m.probes = 0;
            m.synced = false;
            if m.alive {
                m.wid = next_wid;
                next_wid += 1;
            }
        }

        out.push(Action::SwitchCtl {
            switch: old_switch,
            msg: CtrlMsg::EvictJob { job: old_wire },
        });
        out.push(Action::SwitchCtl {
            switch: new_switch,
            msg: CtrlMsg::AdmitJob {
                job: new_wire,
                epoch,
                proto: self.jobs[&job].proto.clone(),
                members: survivors.clone(),
            },
        });
        let mut reconfigs = Vec::with_capacity(survivors.len());
        for (new_wid, &peer) in survivors.iter().enumerate() {
            let msg = CtrlMsg::Reconfigure {
                job,
                epoch,
                n,
                new_wid: new_wid as u16,
                f,
                switch: new_switch as u8,
                wire_job: new_wire,
                pool_size,
                frontier: frontier.clone(),
            };
            reconfigs.push((peer, msg.clone()));
            out.push(Action::Send { to: peer, msg });
        }
        self.jobs.get_mut(&job).unwrap().last_reconfig = reconfigs;
        out.push(Action::Reconfigured { job, epoch, n, f });
    }

    // ---- introspection (drivers, tests, operators) ----

    /// All job ids, ascending.
    pub fn job_ids(&self) -> Vec<u8> {
        let mut ids: Vec<u8> = self.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    pub fn phase(&self, job: u8) -> Option<Phase> {
        self.jobs.get(&job).map(|j| j.phase)
    }

    pub fn epoch(&self, job: u8) -> Option<u32> {
        self.jobs.get(&job).map(|j| j.epoch)
    }

    /// The currently negotiated (clamped) scaling factor.
    pub fn negotiated_f(&self, job: u8) -> Option<f64> {
        self.jobs.get(&job).map(|j| j.proto.scaling_factor)
    }

    /// The job's current pool size (slots), after any live resize.
    pub fn pool_size(&self, job: u8) -> Option<usize> {
        self.jobs.get(&job).map(|j| j.proto.pool_size)
    }

    /// Current dataplane wire id for the job.
    pub fn wire_job(&self, job: u8) -> Option<u8> {
        self.jobs.get(&job).map(|j| j.wire_job)
    }

    /// Which physical switch hosts the job's pool.
    pub fn job_switch(&self, job: u8) -> Option<usize> {
        self.jobs.get(&job).map(|j| j.switch)
    }

    /// Number of members currently alive.
    pub fn alive_count(&self, job: u8) -> Option<usize> {
        self.jobs.get(&job).map(|j| j.alive_count())
    }

    /// Read-only view of a switch's admission ledger.
    pub fn ledger(&self, switch: usize) -> &MultiJobSwitch {
        &self.switches[switch]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto(n: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 8,
            pool_size: 4,
            scaling_factor: 1e6,
            ..Protocol::default()
        }
    }

    fn form(ctrl: &mut Controller, job: u8, n: usize, t0: TimeNs) -> Vec<Action> {
        let mut all = Vec::new();
        for w in 0..n as u64 {
            all.extend(ctrl.on_message(100 + w, CtrlMsg::Register { job }, t0));
        }
        all
    }

    #[test]
    fn formation_assigns_dense_wids_and_clamps_f() {
        let mut ctrl = Controller::new(CtrlConfig::default(), vec![PipelineModel::default()]);
        ctrl.create_job(0, proto(3), 50.0, 16, 0).unwrap();
        assert_eq!(ctrl.phase(0), Some(Phase::Forming));
        let acts = form(&mut ctrl, 0, 3, 1_000);
        assert_eq!(ctrl.phase(0), Some(Phase::Running));
        let clamped = 1e6f64.min(max_safe_factor(3, 50.0));
        assert_eq!(ctrl.negotiated_f(0), Some(clamped));
        let welcomes: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: CtrlMsg::Welcome { wid, f, n, .. },
                } => Some((*to, *wid, *f, *n)),
                _ => None,
            })
            .collect();
        assert_eq!(welcomes.len(), 3);
        for (i, &(to, wid, f, n)) in welcomes.iter().enumerate() {
            assert_eq!((to, wid, n), (100 + i as u64, i as u16, 3));
            assert_eq!(f, clamped);
        }
        assert_eq!(
            acts.iter()
                .filter(|a| matches!(
                    a,
                    Action::Send {
                        msg: CtrlMsg::Start { .. },
                        ..
                    }
                ))
                .count(),
            3
        );
    }

    #[test]
    fn silent_worker_is_probed_then_declared_dead() {
        let cfg = CtrlConfig {
            heartbeat_interval_ns: 10,
            failure_timeout_ns: 100,
            probe_rto_ns: 20,
            probe_policy: RtoPolicy::ExponentialBackoff { max_ns: 1_000 },
            probe_limit: 2,
        };
        let mut ctrl = Controller::new(cfg, vec![PipelineModel::default()]);
        ctrl.create_job(0, proto(3), 50.0, 16, 0).unwrap();
        form(&mut ctrl, 0, 3, 0);
        // Workers 0 and 2 keep heartbeating; worker 1 goes silent.
        let mut t = 0;
        let mut dead_seen = None;
        let mut probes = 0;
        while t < 10_000 {
            t += 10;
            for wid in [0u16, 2] {
                ctrl.on_message(
                    100 + wid as u64,
                    CtrlMsg::Heartbeat {
                        job: 0,
                        wid,
                        epoch: 0,
                    },
                    t,
                );
            }
            for a in ctrl.on_tick(t) {
                match a {
                    Action::Send {
                        to,
                        msg: CtrlMsg::Probe { .. },
                    } => {
                        assert_eq!(to, 101);
                        probes += 1;
                    }
                    Action::WorkerDead { job, wid } => {
                        assert_eq!((job, wid), (0, 1));
                        dead_seen = Some(t);
                    }
                    _ => {}
                }
            }
            if dead_seen.is_some() {
                break;
            }
        }
        // Two probes (limit), spaced 20 then 40ns, after the 100ns
        // timeout: death lands deterministically at 100+20+40 = 160ns
        // rounded up to the next 10ns tick.
        assert_eq!(probes, 2);
        assert_eq!(dead_seen, Some(160));
        assert_eq!(ctrl.phase(0), Some(Phase::Quiescing));
        assert_eq!(ctrl.alive_count(0), Some(2));
    }

    #[test]
    fn heartbeats_suppress_probing() {
        let mut ctrl = Controller::new(CtrlConfig::default(), vec![PipelineModel::default()]);
        ctrl.create_job(0, proto(2), 50.0, 16, 0).unwrap();
        form(&mut ctrl, 0, 2, 0);
        for step in 1..100u64 {
            let t = step * 50_000;
            for wid in 0..2u16 {
                ctrl.on_message(
                    100 + wid as u64,
                    CtrlMsg::Heartbeat {
                        job: 0,
                        wid,
                        epoch: 0,
                    },
                    t,
                );
            }
            assert!(ctrl.on_tick(t).is_empty());
        }
        assert_eq!(ctrl.phase(0), Some(Phase::Running));
    }

    #[test]
    fn shrink_reconfigures_with_frontier_and_rescaled_f() {
        let cfg = CtrlConfig {
            failure_timeout_ns: 100,
            probe_rto_ns: 10,
            probe_limit: 1,
            ..CtrlConfig::default()
        };
        let mut ctrl = Controller::new(cfg, vec![PipelineModel::default()]);
        ctrl.create_job(0, proto(3), 50.0, 16, 0).unwrap();
        form(&mut ctrl, 0, 3, 0);
        let wire0 = ctrl.wire_job(0).unwrap();
        // Kill worker 1 (silence), then survivors ack the quiesce with
        // overlapping-but-different bitmaps.
        let mut acts = Vec::new();
        for t in [150u64, 200, 300] {
            for wid in [0u16, 2] {
                ctrl.on_message(
                    100 + wid as u64,
                    CtrlMsg::Heartbeat {
                        job: 0,
                        wid,
                        epoch: 0,
                    },
                    t,
                );
            }
            acts.extend(ctrl.on_tick(t));
        }
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::WorkerDead { wid: 1, .. })));
        assert_eq!(ctrl.phase(0), Some(Phase::Quiescing));

        // Survivors ack with the wids they were assigned at epoch 0 —
        // the death must not have renumbered them mid-epoch.
        let bm0 = chunk_bitmap(16, |c| c < 6); // wid 0 has chunks 0..6
        let bm2 = chunk_bitmap(16, |c| c < 4 || c == 7); // wid 2: 0..4, 7
        let mut acts = ctrl.on_message(
            100,
            CtrlMsg::QuiesceAck {
                job: 0,
                wid: 0,
                epoch: 0,
                done: bm0,
            },
            400,
        );
        assert!(acts.is_empty()); // waiting on the second survivor
        acts.extend(ctrl.on_message(
            102,
            CtrlMsg::QuiesceAck {
                job: 0,
                wid: 2,
                epoch: 0,
                done: bm2,
            },
            410,
        ));

        assert_eq!(ctrl.phase(0), Some(Phase::Running));
        assert_eq!(ctrl.epoch(0), Some(1));
        let wire1 = ctrl.wire_job(0).unwrap();
        assert_ne!(wire0, wire1, "wire id must rotate");
        let f_new = 1e6f64.min(max_safe_factor(2, 50.0));
        assert_eq!(ctrl.negotiated_f(0), Some(f_new));
        // Ledger swapped to the new wire id at n=2.
        assert_eq!(ctrl.ledger(0).job_ids(), vec![wire1]);
        assert_eq!(ctrl.ledger(0).job_proto(wire1).unwrap().n_workers, 2);

        let expected_frontier = chunk_bitmap(16, |c| c < 4);
        let reconfigs: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg:
                        CtrlMsg::Reconfigure {
                            epoch,
                            n,
                            new_wid,
                            f,
                            wire_job,
                            frontier,
                            ..
                        },
                } => Some((*to, *epoch, *n, *new_wid, *f, *wire_job, frontier.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(reconfigs.len(), 2);
        assert_eq!(
            reconfigs[0],
            (100, 1, 2, 0, f_new, wire1, expected_frontier.clone())
        );
        assert_eq!(
            reconfigs[1],
            (102, 1, 2, 1, f_new, wire1, expected_frontier)
        );
    }

    #[test]
    fn resize_job_quiesces_then_reconfigures_pool() {
        let mut ctrl = Controller::new(CtrlConfig::default(), vec![PipelineModel::default()]);
        ctrl.create_job(0, proto(2), 50.0, 16, 0).unwrap();
        form(&mut ctrl, 0, 2, 0);
        assert_eq!(ctrl.pool_size(0), Some(4));
        let wire0 = ctrl.wire_job(0).unwrap();

        let acts = ctrl.resize_job(0, 8, 100).unwrap();
        assert_eq!(
            acts.iter()
                .filter(|a| matches!(
                    a,
                    Action::Send {
                        msg: CtrlMsg::Quiesce { .. },
                        ..
                    }
                ))
                .count(),
            2
        );
        assert_eq!(ctrl.phase(0), Some(Phase::Quiescing));

        // Both members ack at the same frontier.
        let bm = chunk_bitmap(16, |c| c < 5);
        ctrl.on_message(
            100,
            CtrlMsg::QuiesceAck {
                job: 0,
                wid: 0,
                epoch: 0,
                done: bm.clone(),
            },
            200,
        );
        let acts = ctrl.on_message(
            101,
            CtrlMsg::QuiesceAck {
                job: 0,
                wid: 1,
                epoch: 0,
                done: bm.clone(),
            },
            210,
        );
        assert_eq!(ctrl.phase(0), Some(Phase::Running));
        assert_eq!(ctrl.epoch(0), Some(1));
        assert_eq!(ctrl.pool_size(0), Some(8));
        let wire1 = ctrl.wire_job(0).unwrap();
        assert_ne!(wire0, wire1, "wire id rotates on resize too");
        assert_eq!(ctrl.ledger(0).job_proto(wire1).unwrap().pool_size, 8);

        // Reconfigures carry the new pool; n unchanged (nobody died)
        // and the committed frontier survives the repartition.
        let recfg: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg:
                        CtrlMsg::Reconfigure {
                            n,
                            pool_size,
                            frontier,
                            ..
                        },
                    ..
                } => Some((*n, *pool_size, frontier.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(recfg.len(), 2);
        for (n, pool, fr) in recfg {
            assert_eq!((n, pool), (2, 8));
            assert_eq!(fr, bm);
        }
    }

    #[test]
    fn grow_that_loses_sram_race_falls_back_to_old_size() {
        // Budget fits the 4-slot pool but not a 4096-slot one.
        let model = PipelineModel {
            register_sram_bytes: 64 * 1024,
            ..PipelineModel::default()
        };
        let mut ctrl = Controller::new(CtrlConfig::default(), vec![model]);
        ctrl.create_job(0, proto(2), 50.0, 16, 0).unwrap();
        form(&mut ctrl, 0, 2, 0);
        ctrl.resize_job(0, 4096, 100).unwrap();
        let bm = chunk_bitmap(16, |_| false);
        for wid in 0..2u16 {
            ctrl.on_message(
                100 + wid as u64,
                CtrlMsg::QuiesceAck {
                    job: 0,
                    wid,
                    epoch: 0,
                    done: bm.clone(),
                },
                200,
            );
        }
        // The grow could not be honored: the job resumes at its old
        // size instead of stalling.
        assert_eq!(ctrl.phase(0), Some(Phase::Running));
        assert_eq!(ctrl.pool_size(0), Some(4));
    }

    #[test]
    fn done_from_all_members_completes_and_frees_sram() {
        let mut ctrl = Controller::new(CtrlConfig::default(), vec![PipelineModel::default()]);
        ctrl.create_job(0, proto(2), 50.0, 16, 0).unwrap();
        form(&mut ctrl, 0, 2, 0);
        let committed = ctrl.ledger(0).committed_bytes();
        assert!(committed > 0);
        ctrl.on_message(
            100,
            CtrlMsg::Done {
                job: 0,
                wid: 0,
                epoch: 0,
            },
            50,
        );
        let acts = ctrl.on_message(
            101,
            CtrlMsg::Done {
                job: 0,
                wid: 1,
                epoch: 0,
            },
            60,
        );
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::JobComplete { job: 0 })));
        assert_eq!(ctrl.phase(0), Some(Phase::Complete));
        assert_eq!(ctrl.ledger(0).committed_bytes(), 0);
    }

    #[test]
    fn failover_rehomes_all_jobs_onto_standby() {
        let mut ctrl = Controller::new(
            CtrlConfig::default(),
            vec![PipelineModel::default(), PipelineModel::default()],
        );
        ctrl.create_job(0, proto(2), 50.0, 8, 0).unwrap();
        ctrl.create_job(1, proto(2), 50.0, 8, 0).unwrap();
        form(&mut ctrl, 0, 2, 0);
        let mut acts = Vec::new();
        for w in 0..2u64 {
            acts.extend(ctrl.on_message(200 + w, CtrlMsg::Register { job: 1 }, 0));
        }
        assert_eq!(ctrl.ledger(0).job_count(), 2);

        let acts = ctrl.fail_over_all(0, 1, 1_000);
        assert_eq!(
            acts.iter()
                .filter(|a| matches!(
                    a,
                    Action::Send {
                        msg: CtrlMsg::Quiesce { .. },
                        ..
                    }
                ))
                .count(),
            4
        );
        // Survivors ack with full bitmaps (mid-run partial progress).
        let bm = chunk_bitmap(8, |c| c < 3);
        for (job, peers) in [(0u8, [100u64, 101]), (1, [200, 201])] {
            for (wid, peer) in peers.iter().enumerate() {
                ctrl.on_message(
                    *peer,
                    CtrlMsg::QuiesceAck {
                        job,
                        wid: wid as u16,
                        epoch: 0,
                        done: bm.clone(),
                    },
                    2_000,
                );
            }
        }
        // Both jobs re-homed: old switch empty, standby holds both,
        // same n (no shrink), committed state preserved via frontier.
        assert_eq!(ctrl.ledger(0).job_count(), 0);
        assert_eq!(ctrl.ledger(1).job_count(), 2);
        assert_eq!(ctrl.job_switch(0), Some(1));
        assert_eq!(ctrl.job_switch(1), Some(1));
        assert_eq!(ctrl.phase(0), Some(Phase::Running));
        assert_eq!(ctrl.epoch(0), Some(1));
        assert_eq!(ctrl.negotiated_f(0), ctrl.negotiated_f(1));
    }

    #[test]
    fn stale_epoch_messages_are_ignored() {
        let cfg = CtrlConfig {
            failure_timeout_ns: 100,
            probe_rto_ns: 10,
            probe_limit: 1,
            ..CtrlConfig::default()
        };
        let mut ctrl = Controller::new(cfg, vec![PipelineModel::default()]);
        ctrl.create_job(0, proto(2), 50.0, 8, 0).unwrap();
        form(&mut ctrl, 0, 2, 0);
        // Worker 1 dies; worker 0 acks; epoch becomes 1.
        for t in [150u64, 200] {
            ctrl.on_message(
                100,
                CtrlMsg::Heartbeat {
                    job: 0,
                    wid: 0,
                    epoch: 0,
                },
                t,
            );
            ctrl.on_tick(t);
        }
        ctrl.on_message(
            100,
            CtrlMsg::QuiesceAck {
                job: 0,
                wid: 0,
                epoch: 0,
                done: chunk_bitmap(8, |_| false),
            },
            300,
        );
        assert_eq!(ctrl.epoch(0), Some(1));
        // A Done tagged with the dead epoch must not complete the job.
        let acts = ctrl.on_message(
            100,
            CtrlMsg::Done {
                job: 0,
                wid: 0,
                epoch: 0,
            },
            400,
        );
        assert!(acts.is_empty());
        assert_eq!(ctrl.phase(0), Some(Phase::Running));
    }

    #[test]
    fn death_of_last_straggler_mid_quiesce_still_reconfigures() {
        // A quiesce (here: a switch failover) is waiting on exactly
        // one ack when that member dies. No further QuiesceAck will
        // ever arrive, so the death itself must finish the quiesce.
        let cfg = CtrlConfig {
            heartbeat_interval_ns: 10,
            failure_timeout_ns: 100,
            probe_rto_ns: 20,
            probe_policy: RtoPolicy::ExponentialBackoff { max_ns: 1_000 },
            probe_limit: 2,
        };
        let mut ctrl = Controller::new(
            cfg,
            vec![PipelineModel::default(), PipelineModel::default()],
        );
        ctrl.create_job(0, proto(3), 50.0, 16, 0).unwrap();
        form(&mut ctrl, 0, 3, 0);
        ctrl.fail_over_all(0, 1, 10);
        assert_eq!(ctrl.phase(0), Some(Phase::Quiescing));
        // Workers 0 and 2 ack; worker 1 crashes without acking.
        for wid in [0u16, 2] {
            ctrl.on_message(
                100 + wid as u64,
                CtrlMsg::QuiesceAck {
                    job: 0,
                    wid,
                    epoch: 0,
                    done: chunk_bitmap(16, |_| true),
                },
                20,
            );
        }
        assert_eq!(ctrl.phase(0), Some(Phase::Quiescing));
        let mut reconf = None;
        let mut t = 20;
        while t < 1_000 && reconf.is_none() {
            t += 10;
            for a in ctrl.on_tick(t) {
                if let Action::Reconfigured { job, epoch, n, .. } = a {
                    reconf = Some((job, epoch, n));
                }
            }
        }
        let got = reconf.expect("quiesce wedged after the last straggler died");
        assert_eq!(got, (0, 1, 2));
        assert_eq!(ctrl.phase(0), Some(Phase::Running));
        assert_eq!(ctrl.job_switch(0), Some(1)); // failover still honored
        assert_eq!(ctrl.alive_count(0), Some(2));
    }

    #[test]
    fn all_members_dying_mid_quiesce_completes_the_job() {
        // Worker 0 crashes immediately; worker 1 outlives it just
        // long enough for the shrink quiesce to start, then crashes
        // without ever acking. With no survivors the job must
        // complete (and release its pool), not wedge in Quiescing.
        let cfg = CtrlConfig {
            heartbeat_interval_ns: 10,
            failure_timeout_ns: 100,
            probe_rto_ns: 20,
            probe_policy: RtoPolicy::ExponentialBackoff { max_ns: 1_000 },
            probe_limit: 2,
        };
        let mut ctrl = Controller::new(cfg, vec![PipelineModel::default()]);
        ctrl.create_job(0, proto(2), 50.0, 16, 0).unwrap();
        form(&mut ctrl, 0, 2, 0);
        let mut complete = false;
        for step in 1..100u64 {
            let t = step * 10;
            if t <= 150 {
                ctrl.on_message(
                    101,
                    CtrlMsg::Heartbeat {
                        job: 0,
                        wid: 1,
                        epoch: 0,
                    },
                    t,
                );
            }
            for a in ctrl.on_tick(t) {
                if let Action::JobComplete { job } = a {
                    assert_eq!(job, 0);
                    complete = true;
                }
            }
        }
        assert!(complete, "job wedged in quiesce after losing every member");
        assert_eq!(ctrl.phase(0), Some(Phase::Complete));
        assert_eq!(ctrl.ledger(0).committed_bytes(), 0);
    }
}
