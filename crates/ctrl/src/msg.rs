//! Control-plane wire format.
//!
//! Control messages share transport endpoints with dataplane
//! [`Packet`](switchml_core::packet::Packet)s, so they carry their own
//! magic (`"CP"` vs. the dataplane's `"SM"`): a receiver first tries
//! the dataplane decoder and falls back to [`CtrlMsg::decode`]. Like
//! the dataplane format, every message ends in a CRC-32 trailer and is
//! rejected on any mismatch — a corrupted control message is dropped
//! and repaired by retransmission-by-heartbeat, never half-applied.
//!
//! Chunk sets (a worker's aggregated chunks in `QuiesceAck`, the
//! global frontier in `Reconfigure`) travel as little-endian bitmaps:
//! chunk `i` is bit `i % 8` of byte `i / 8`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use switchml_core::checksum::Crc32;
use switchml_core::config::{NumericMode, Protocol, RtoPolicy};
use switchml_core::error::{Error, Result};

const MAGIC: u16 = 0x4350; // "CP"
const VERSION: u8 = 1;

/// Identifies the control-plane peer a message came from; drivers map
/// it to a netsim `NodeId` or a transport endpoint index.
pub type PeerId = u64;

/// A control-plane message. Worker→controller messages carry the
/// sender's current `(wid, epoch)` so the controller can discard
/// stragglers from before a reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg {
    // ---- worker → controller ----
    /// Join a job; the controller assigns the wid in `Welcome`.
    Register { job: u8 },
    /// Periodic liveness beacon (also the answer to `Probe`).
    Heartbeat { job: u8, wid: u16, epoch: u32 },
    /// The worker has stopped its dataplane; `done` is the bitmap of
    /// chunks whose aggregate it holds.
    QuiesceAck {
        job: u8,
        wid: u16,
        epoch: u32,
        done: Vec<u8>,
    },
    /// The worker's whole stream is aggregated.
    Done { job: u8, wid: u16, epoch: u32 },

    // ---- controller → worker ----
    /// Registration accepted: here is your wid and the negotiated
    /// configuration (workers scale by `f`, which the controller
    /// clamps to Theorem 2's overflow-safe maximum). Dataplane packets
    /// must be tagged `wire_job` and aimed at switch `switch`.
    Welcome {
        job: u8,
        wid: u16,
        epoch: u32,
        n: u16,
        f: f64,
        wire_job: u8,
        switch: u8,
    },
    /// All `n` workers registered; start streaming.
    Start { job: u8, epoch: u32 },
    /// Stop the dataplane and report the chunk bitmap.
    Quiesce { job: u8, epoch: u32 },
    /// New epoch: `n` survivors, you are `new_wid`, scale by `f`,
    /// tag dataplane packets `wire_job`, aim at switch `switch`, and
    /// stream over a pool of `pool_size` slots (the scheduler may have
    /// repartitioned the slot range while the job was quiesced).
    /// `frontier` is the bitmap of chunks aggregated at *every*
    /// survivor — anything outside it must be re-aggregated.
    Reconfigure {
        job: u8,
        epoch: u32,
        n: u16,
        new_wid: u16,
        f: f64,
        switch: u8,
        wire_job: u8,
        pool_size: u32,
        frontier: Vec<u8>,
    },
    /// Liveness challenge after missed heartbeats; answer with
    /// `Heartbeat`.
    Probe { job: u8, epoch: u32 },

    // ---- controller → switch ----
    /// Install a fresh pool for `job` under `proto`; `members[wid]`
    /// is the peer to address results to. `epoch` is the job
    /// generation the pool serves: the switch fences data-plane
    /// packets whose epoch byte disagrees (§5.4).
    AdmitJob {
        job: u8,
        epoch: u32,
        proto: Protocol,
        members: Vec<PeerId>,
    },
    /// Tear the job's pool down.
    EvictJob { job: u8 },
}

// Message type tags on the wire.
const T_REGISTER: u8 = 1;
const T_HEARTBEAT: u8 = 2;
const T_QUIESCE_ACK: u8 = 3;
const T_DONE: u8 = 4;
const T_WELCOME: u8 = 5;
const T_START: u8 = 6;
const T_QUIESCE: u8 = 7;
const T_RECONFIGURE: u8 = 8;
const T_PROBE: u8 = 9;
const T_ADMIT_JOB: u8 = 10;
const T_EVICT_JOB: u8 = 11;

fn put_proto(buf: &mut BytesMut, p: &Protocol) {
    buf.put_u16(p.n_workers as u16);
    buf.put_u32(p.k as u32);
    buf.put_u32(p.pool_size as u32);
    buf.put_u64(p.rto_ns);
    // Policy block: tag byte + two u64 operands (unused ones zero).
    match p.rto_policy {
        RtoPolicy::Fixed => {
            buf.put_u8(0);
            buf.put_u64(0);
            buf.put_u64(0);
        }
        RtoPolicy::ExponentialBackoff { max_ns } => {
            buf.put_u8(1);
            buf.put_u64(max_ns);
            buf.put_u64(0);
        }
        RtoPolicy::Adaptive { min_ns, max_ns } => {
            buf.put_u8(2);
            buf.put_u64(min_ns);
            buf.put_u64(max_ns);
        }
    }
    buf.put_u8(match p.mode {
        NumericMode::Fixed32 => 0,
        NumericMode::Float16 => 1,
        NumericMode::NativeInt32 => 2,
    });
    buf.put_u8(p.wrapping_add as u8);
    buf.put_f64(p.scaling_factor);
}

fn get_proto(data: &mut &[u8]) -> Result<Protocol> {
    if data.len() < 2 + 4 + 4 + 8 + 1 + 8 + 8 + 1 + 1 + 8 {
        return Err(Error::Malformed("short protocol block"));
    }
    let n_workers = data.get_u16() as usize;
    let k = data.get_u32() as usize;
    let pool_size = data.get_u32() as usize;
    let rto_ns = data.get_u64();
    let policy_tag = data.get_u8();
    let a = data.get_u64();
    let b = data.get_u64();
    let rto_policy = match policy_tag {
        0 => RtoPolicy::Fixed,
        1 => RtoPolicy::ExponentialBackoff { max_ns: a },
        2 => RtoPolicy::Adaptive {
            min_ns: a,
            max_ns: b,
        },
        _ => return Err(Error::Malformed("unknown rto policy")),
    };
    let mode = match data.get_u8() {
        0 => NumericMode::Fixed32,
        1 => NumericMode::Float16,
        2 => NumericMode::NativeInt32,
        _ => return Err(Error::Malformed("unknown numeric mode")),
    };
    let wrapping_add = data.get_u8() != 0;
    let scaling_factor = data.get_f64();
    Ok(Protocol {
        n_workers,
        k,
        pool_size,
        rto_ns,
        rto_policy,
        mode,
        wrapping_add,
        scaling_factor,
    })
}

fn put_bitmap(buf: &mut BytesMut, bm: &[u8]) {
    buf.put_u32(bm.len() as u32);
    buf.put_slice(bm);
}

fn get_bitmap(data: &mut &[u8]) -> Result<Vec<u8>> {
    if data.len() < 4 {
        return Err(Error::Malformed("short bitmap length"));
    }
    let len = data.get_u32() as usize;
    if data.len() < len {
        return Err(Error::Malformed("short bitmap"));
    }
    let out = data[..len].to_vec();
    data.advance(len);
    Ok(out)
}

impl CtrlMsg {
    /// Serialize (magic, version, type, body, CRC-32).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u16(MAGIC);
        buf.put_u8(VERSION);
        match self {
            CtrlMsg::Register { job } => {
                buf.put_u8(T_REGISTER);
                buf.put_u8(*job);
            }
            CtrlMsg::Heartbeat { job, wid, epoch } => {
                buf.put_u8(T_HEARTBEAT);
                buf.put_u8(*job);
                buf.put_u16(*wid);
                buf.put_u32(*epoch);
            }
            CtrlMsg::QuiesceAck {
                job,
                wid,
                epoch,
                done,
            } => {
                buf.put_u8(T_QUIESCE_ACK);
                buf.put_u8(*job);
                buf.put_u16(*wid);
                buf.put_u32(*epoch);
                put_bitmap(&mut buf, done);
            }
            CtrlMsg::Done { job, wid, epoch } => {
                buf.put_u8(T_DONE);
                buf.put_u8(*job);
                buf.put_u16(*wid);
                buf.put_u32(*epoch);
            }
            CtrlMsg::Welcome {
                job,
                wid,
                epoch,
                n,
                f,
                wire_job,
                switch,
            } => {
                buf.put_u8(T_WELCOME);
                buf.put_u8(*job);
                buf.put_u16(*wid);
                buf.put_u32(*epoch);
                buf.put_u16(*n);
                buf.put_f64(*f);
                buf.put_u8(*wire_job);
                buf.put_u8(*switch);
            }
            CtrlMsg::Start { job, epoch } => {
                buf.put_u8(T_START);
                buf.put_u8(*job);
                buf.put_u32(*epoch);
            }
            CtrlMsg::Quiesce { job, epoch } => {
                buf.put_u8(T_QUIESCE);
                buf.put_u8(*job);
                buf.put_u32(*epoch);
            }
            CtrlMsg::Reconfigure {
                job,
                epoch,
                n,
                new_wid,
                f,
                switch,
                wire_job,
                pool_size,
                frontier,
            } => {
                buf.put_u8(T_RECONFIGURE);
                buf.put_u8(*job);
                buf.put_u32(*epoch);
                buf.put_u16(*n);
                buf.put_u16(*new_wid);
                buf.put_f64(*f);
                buf.put_u8(*switch);
                buf.put_u8(*wire_job);
                buf.put_u32(*pool_size);
                put_bitmap(&mut buf, frontier);
            }
            CtrlMsg::Probe { job, epoch } => {
                buf.put_u8(T_PROBE);
                buf.put_u8(*job);
                buf.put_u32(*epoch);
            }
            CtrlMsg::AdmitJob {
                job,
                epoch,
                proto,
                members,
            } => {
                buf.put_u8(T_ADMIT_JOB);
                buf.put_u8(*job);
                buf.put_u32(*epoch);
                put_proto(&mut buf, proto);
                buf.put_u16(members.len() as u16);
                for &m in members {
                    buf.put_u64(m);
                }
            }
            CtrlMsg::EvictJob { job } => {
                buf.put_u8(T_EVICT_JOB);
                buf.put_u8(*job);
            }
        }
        let mut crc = Crc32::new();
        crc.update(&buf);
        let sum = crc.finalize();
        buf.put_u32(sum);
        buf.freeze()
    }

    /// Is this buffer a control message (vs. a dataplane packet)?
    pub fn is_ctrl(data: &[u8]) -> bool {
        data.len() >= 2 && u16::from_be_bytes([data[0], data[1]]) == MAGIC
    }

    /// Parse and verify a control message.
    pub fn decode(data: &[u8]) -> Result<CtrlMsg> {
        if data.len() < 4 + 4 {
            return Err(Error::Malformed("short control message"));
        }
        let (body, trailer) = data.split_at(data.len() - 4);
        let stored = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let mut crc = Crc32::new();
        crc.update(body);
        let actual = crc.finalize();
        if actual != stored {
            return Err(Error::BadChecksum {
                expected: stored,
                actual,
            });
        }
        let mut body = body;
        if body.get_u16() != MAGIC {
            return Err(Error::Malformed("bad control magic"));
        }
        if body.get_u8() != VERSION {
            return Err(Error::Malformed("unsupported control version"));
        }
        let tag = body.get_u8();
        let msg = match tag {
            T_REGISTER => CtrlMsg::Register { job: body.get_u8() },
            T_HEARTBEAT => CtrlMsg::Heartbeat {
                job: body.get_u8(),
                wid: body.get_u16(),
                epoch: body.get_u32(),
            },
            T_QUIESCE_ACK => CtrlMsg::QuiesceAck {
                job: body.get_u8(),
                wid: body.get_u16(),
                epoch: body.get_u32(),
                done: get_bitmap(&mut body)?,
            },
            T_DONE => CtrlMsg::Done {
                job: body.get_u8(),
                wid: body.get_u16(),
                epoch: body.get_u32(),
            },
            T_WELCOME => CtrlMsg::Welcome {
                job: body.get_u8(),
                wid: body.get_u16(),
                epoch: body.get_u32(),
                n: body.get_u16(),
                f: body.get_f64(),
                wire_job: body.get_u8(),
                switch: body.get_u8(),
            },
            T_START => CtrlMsg::Start {
                job: body.get_u8(),
                epoch: body.get_u32(),
            },
            T_QUIESCE => CtrlMsg::Quiesce {
                job: body.get_u8(),
                epoch: body.get_u32(),
            },
            T_RECONFIGURE => CtrlMsg::Reconfigure {
                job: body.get_u8(),
                epoch: body.get_u32(),
                n: body.get_u16(),
                new_wid: body.get_u16(),
                f: body.get_f64(),
                switch: body.get_u8(),
                wire_job: body.get_u8(),
                pool_size: body.get_u32(),
                frontier: get_bitmap(&mut body)?,
            },
            T_PROBE => CtrlMsg::Probe {
                job: body.get_u8(),
                epoch: body.get_u32(),
            },
            T_ADMIT_JOB => {
                let job = body.get_u8();
                let epoch = body.get_u32();
                let proto = get_proto(&mut body)?;
                let count = body.get_u16() as usize;
                if body.len() < count * 8 {
                    return Err(Error::Malformed("short member list"));
                }
                let members = (0..count).map(|_| body.get_u64()).collect();
                CtrlMsg::AdmitJob {
                    job,
                    epoch,
                    proto,
                    members,
                }
            }
            T_EVICT_JOB => CtrlMsg::EvictJob { job: body.get_u8() },
            _ => return Err(Error::Malformed("unknown control message type")),
        };
        Ok(msg)
    }
}

/// Build a chunk bitmap from a done-test over `total` chunks.
pub fn chunk_bitmap(total: u64, mut is_done: impl FnMut(u64) -> bool) -> Vec<u8> {
    let mut bm = vec![0u8; (total as usize).div_ceil(8)];
    for c in 0..total {
        if is_done(c) {
            bm[(c / 8) as usize] |= 1 << (c % 8);
        }
    }
    bm
}

/// Test a chunk bit (chunks past the bitmap's end read as not-done).
pub fn bitmap_contains(bm: &[u8], chunk: u64) -> bool {
    bm.get((chunk / 8) as usize)
        .is_some_and(|b| b & (1 << (chunk % 8)) != 0)
}

/// Intersect `other` into `acc` (missing tail bytes read as zero).
pub fn bitmap_and(acc: &mut Vec<u8>, other: &[u8]) {
    acc.truncate(other.len());
    for (a, &b) in acc.iter_mut().zip(other) {
        *a &= b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: CtrlMsg) {
        let bytes = msg.encode();
        assert!(CtrlMsg::is_ctrl(&bytes));
        assert_eq!(CtrlMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(CtrlMsg::Register { job: 3 });
        roundtrip(CtrlMsg::Heartbeat {
            job: 1,
            wid: 7,
            epoch: 2,
        });
        roundtrip(CtrlMsg::QuiesceAck {
            job: 0,
            wid: 2,
            epoch: 1,
            done: vec![0xAB, 0x01],
        });
        roundtrip(CtrlMsg::Done {
            job: 0,
            wid: 0,
            epoch: 9,
        });
        roundtrip(CtrlMsg::Welcome {
            job: 0,
            wid: 4,
            epoch: 0,
            n: 8,
            f: 12345.5,
            wire_job: 3,
            switch: 1,
        });
        roundtrip(CtrlMsg::Start { job: 0, epoch: 0 });
        roundtrip(CtrlMsg::Quiesce { job: 2, epoch: 3 });
        roundtrip(CtrlMsg::Reconfigure {
            job: 2,
            epoch: 4,
            n: 7,
            new_wid: 5,
            f: 777.25,
            switch: 1,
            wire_job: 9,
            pool_size: 48,
            frontier: vec![0xFF, 0x0F],
        });
        roundtrip(CtrlMsg::Probe { job: 1, epoch: 0 });
        roundtrip(CtrlMsg::AdmitJob {
            job: 5,
            epoch: 3,
            proto: Protocol {
                n_workers: 7,
                rto_policy: RtoPolicy::ExponentialBackoff { max_ns: 99 },
                mode: NumericMode::Float16,
                scaling_factor: 64.0,
                ..Protocol::default()
            },
            members: vec![10, 20, 30],
        });
        roundtrip(CtrlMsg::AdmitJob {
            job: 6,
            epoch: 0,
            proto: Protocol {
                rto_policy: RtoPolicy::Adaptive {
                    min_ns: 100_000,
                    max_ns: 5_000_000,
                },
                ..Protocol::default()
            },
            members: vec![7],
        });
        roundtrip(CtrlMsg::EvictJob { job: 5 });
    }

    #[test]
    fn corruption_and_garbage_rejected() {
        let bytes = CtrlMsg::Start { job: 0, epoch: 7 }.encode().to_vec();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(CtrlMsg::decode(&bad).is_err(), "flip at {pos} accepted");
        }
        assert!(CtrlMsg::decode(b"junk").is_err());
        assert!(!CtrlMsg::is_ctrl(b"SM..")); // dataplane magic
    }

    #[test]
    fn dataplane_and_ctrl_are_distinguishable() {
        let data = switchml_core::packet::Packet::update(
            0,
            switchml_core::packet::PoolVersion::V0,
            0,
            0,
            vec![1, 2],
        )
        .encode();
        assert!(!CtrlMsg::is_ctrl(&data));
        let ctrl = CtrlMsg::Probe { job: 0, epoch: 0 }.encode();
        assert!(switchml_core::packet::Packet::decode(&ctrl).is_err());
    }

    #[test]
    fn bitmap_helpers() {
        let bm = chunk_bitmap(11, |c| c % 3 == 0);
        assert!(bitmap_contains(&bm, 0));
        assert!(bitmap_contains(&bm, 9));
        assert!(!bitmap_contains(&bm, 10));
        assert!(!bitmap_contains(&bm, 1000)); // past the end
        let mut acc = chunk_bitmap(11, |_| true);
        bitmap_and(&mut acc, &bm);
        assert_eq!(acc, bm);
    }
}
