//! # switchml-ctrl — control plane for the SwitchML reproduction
//!
//! The paper's dataplane (switch pools, pool-slot streaming, shadow
//! copies) assumes a fixed worker set per job. This crate adds the
//! piece a deployment needs around that: a controller that owns
//! **job lifecycle** (registration, scaling-factor negotiation,
//! SRAM-budgeted admission, teardown), **failure detection**
//! (heartbeats → probes with exponential backoff → deterministic
//! death declaration), **live reconfiguration** (quiesce, shrink
//! n → n−1 with Theorem-2 rescaling, resume from the aggregated
//! frontier), and **switch failover** (drain every job on a failing
//! switch and re-admit it on a standby with no lost slot state).
//!
//! Layers:
//!
//! - [`msg`] — the control wire format ([`msg::CtrlMsg`]), CRC-guarded
//!   and distinguishable from dataplane packets by magic.
//! - [`controller`] — the sans-IO state machine
//!   ([`controller::Controller`]): feed messages and ticks, execute
//!   the returned [`controller::Action`]s.
//! - [`netsim`] — controller/worker/switch nodes for the
//!   discrete-event simulator, plus [`netsim::run_ctrl`] scenarios
//!   (deterministic worker-kill and switch-failover runs).
//! - [`runner`] — the same control plane over real
//!   [`switchml_transport`] ports and threads.
//! - [`sched`] — the multi-tenant slot scheduler on top of all of it:
//!   fair sharing, priority classes with preemption, live slot
//!   repartition, and per-tenant isolation accounting for a churning
//!   job population.

pub mod controller;
pub mod msg;
pub mod netsim;
pub mod runner;
pub mod sched;

pub mod prelude {
    pub use crate::controller::{Action, Controller, CtrlConfig, Phase};
    pub use crate::msg::{bitmap_and, bitmap_contains, chunk_bitmap, CtrlMsg, PeerId};
    pub use crate::netsim::{run_ctrl, CtrlOutcome, CtrlScenario};
    pub use crate::runner::{run_controlled, CtrlRunConfig, CtrlRunReport};
    pub use crate::sched::{
        run_scheduled, sched_fabric_size, slot_capacity, Class, JobOutcome, SchedJob,
        SchedRunConfig, SchedRunReport, Scheduler, TenantSpec,
    };
}
