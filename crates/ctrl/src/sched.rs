//! Multi-tenant aggregation scheduler: one long-lived switch slot
//! pool shared fairly by a churning population of jobs.
//!
//! The paper provisions one pool per job and sizes it offline (§5.3).
//! A rack in steady state does not look like that: training jobs
//! arrive, finish, crash, and differ in importance. This module owns
//! the slot pool for the fleet and serves every concurrent job over
//! its whole lifecycle:
//!
//! - **Policy** ([`Scheduler`]): weighted max-min fair sharing within
//!   a priority class, strict priority between classes ([`Class::High`]
//!   is served its full demand before [`Class::BestEffort`] sees a
//!   slot), per-tenant quotas (caps) and guaranteed floors
//!   (`min_slots`). Admission control rejects a tenant whose floor no
//!   longer fits.
//! - **Mechanism**: re-running [`Scheduler::allocation`] after every
//!   arrival and departure, then steering each live job to its new
//!   share with [`crate::controller::Controller::resize_job`] — the
//!   quiesce-at-chunk-frontier + epoch-bump primitive. Preemption is
//!   not a special case: a high-priority arrival simply shrinks the
//!   best-effort tenants' allocations, and the §5.4 epoch fence
//!   guarantees their in-flight traffic from the old partition is
//!   counted-and-dropped, never aggregated. No committed chunk is
//!   lost because the quiesce frontier is, by construction, the set
//!   of chunks aggregated at every member.
//! - **Isolation accounting** ([`JobOutcome`]): per-job retransmit,
//!   stale-epoch, injected-fault, and latency counters, measured per
//!   tenant so a noisy neighbor's loss storm is visible in *its* row
//!   and provably absent from the quiet tenant's.
//!
//! [`run_scheduled`] drives a full churn scenario over a real
//! transport fabric (in-memory channels or UDP): the driver thread
//! owns the [`Controller`] and the [`Scheduler`], workers and the
//! multi-job switch run on their own threads, and every lifecycle
//! event is timestamped for the `BENCH_multijob` churn benchmark.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use switchml_core::config::{Protocol, RtoPolicy};
use switchml_core::error::{Error, Result};
use switchml_core::switch::pipeline::PipelineModel;
use switchml_core::switch::SwitchStats;
use switchml_core::worker::engine::EngineStats;
use switchml_core::worker::stream::TensorStream;
use switchml_transport::{Port, PortStats, SWITCH_ENDPOINT};

use crate::controller::{Action, Controller, CtrlConfig};
use crate::msg::CtrlMsg;
use crate::runner::{switch_thread, worker_thread, CtrlRunConfig};

/// Priority class of a tenant. [`Class::High`] tenants are served
/// their full demand (up to quota) before any [`Class::BestEffort`]
/// tenant receives a slot beyond its guaranteed floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    High,
    BestEffort,
}

/// One tenant's scheduling contract.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub job: u8,
    pub class: Class,
    /// Weight for max-min sharing within the class (≥ 1).
    pub weight: u32,
    /// Slot cap. `0` means "no cap beyond pool capacity".
    pub quota: u32,
    /// Guaranteed floor; admission fails if floors no longer fit.
    pub min_slots: u32,
}

impl TenantSpec {
    fn quota_eff(&self, capacity: u32) -> u32 {
        if self.quota == 0 {
            capacity
        } else {
            self.quota
        }
    }
}

/// The policy core: a pure, deterministic allocator over the slot
/// pool. It holds no transport or controller state, so every policy
/// property (fairness, priority, quotas, floors) is unit-testable
/// without threads.
#[derive(Debug)]
pub struct Scheduler {
    capacity: u32,
    tenants: BTreeMap<u8, TenantSpec>,
}

impl Scheduler {
    pub fn new(capacity: u32) -> Self {
        Scheduler {
            capacity,
            tenants: BTreeMap::new(),
        }
    }

    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    pub fn is_live(&self, job: u8) -> bool {
        self.tenants.contains_key(&job)
    }

    /// Admission control: a tenant enters only if every live floor —
    /// including its own — still fits in the pool. Weights and floors
    /// are normalized here so `allocation` never divides by zero or
    /// hands out a floor above a cap.
    pub fn admit(&mut self, mut spec: TenantSpec) -> Result<()> {
        if self.tenants.contains_key(&spec.job) {
            return Err(Error::InvalidConfig(format!(
                "tenant {} already admitted",
                spec.job
            )));
        }
        spec.weight = spec.weight.max(1);
        spec.min_slots = spec.min_slots.max(1).min(spec.quota_eff(self.capacity));
        let floors: u32 = self.tenants.values().map(|t| t.min_slots).sum();
        if floors + spec.min_slots > self.capacity {
            return Err(Error::InvalidConfig(format!(
                "tenant {}: floor {} does not fit ({} of {} slots already guaranteed)",
                spec.job, spec.min_slots, floors, self.capacity
            )));
        }
        self.tenants.insert(spec.job, spec);
        Ok(())
    }

    /// Remove a departed (or crashed) tenant; its slots return to the
    /// pool at the next `allocation`.
    pub fn remove(&mut self, job: u8) -> bool {
        self.tenants.remove(&job).is_some()
    }

    /// The target partition of the pool under the current population:
    /// every tenant gets its floor, then remaining slots water-fill
    /// the [`Class::High`] tenants (weighted max-min, quota-capped),
    /// then whatever is left water-fills [`Class::BestEffort`].
    ///
    /// Deterministic: ties break toward the lower job id. The sum of
    /// the returned shares never exceeds `capacity`.
    pub fn allocation(&self) -> BTreeMap<u8, u32> {
        let mut alloc: BTreeMap<u8, u32> = self
            .tenants
            .values()
            .map(|t| (t.job, t.min_slots))
            .collect();
        let mut left = self.capacity.saturating_sub(alloc.values().sum::<u32>());
        for class in [Class::High, Class::BestEffort] {
            while left > 0 {
                // Weighted max-min, one slot at a time: feed the
                // unsaturated tenant with the lowest share-per-weight.
                let next = self
                    .tenants
                    .values()
                    .filter(|t| t.class == class && alloc[&t.job] < t.quota_eff(self.capacity))
                    .min_by(|a, b| {
                        let ra = alloc[&a.job] as u64 * b.weight as u64;
                        let rb = alloc[&b.job] as u64 * a.weight as u64;
                        ra.cmp(&rb).then(a.job.cmp(&b.job))
                    })
                    .map(|t| t.job);
                let Some(job) = next else { break };
                *alloc.get_mut(&job).unwrap() += 1;
                left -= 1;
            }
        }
        alloc
    }
}

/// Slots the pipeline model can hold for jobs keyed with `k` elements
/// per packet: the pool capacity [`run_scheduled`] hands its
/// [`Scheduler`]. Per-slot cost (two pool versions of `k` aggregators
/// plus bookkeeping) is linear in the slot count, so the division is
/// exact.
pub fn slot_capacity(model: &PipelineModel, k: usize) -> u32 {
    let probe = Protocol {
        k,
        pool_size: 1,
        ..Protocol::default()
    };
    let r = model
        .validate(&probe)
        .expect("one-slot probe must validate");
    (model.register_sram_bytes / (r.pool_bytes + r.bookkeeping_bytes)) as u32
}

/// One job in a churn scenario.
#[derive(Debug, Clone)]
pub struct SchedJob {
    pub tenant: TenantSpec,
    /// Per-worker tensor sets; `updates.len()` is the worker count.
    pub updates: Vec<Vec<Vec<f32>>>,
    /// When (relative to run start) the job arrives.
    pub submit_at: Duration,
}

/// Knobs for a scheduled run.
#[derive(Debug, Clone)]
pub struct SchedRunConfig {
    /// Abort the run if the population has not drained by then.
    pub max_wall: Duration,
    pub heartbeat: Duration,
    pub failure_timeout: Duration,
    /// Engine shards per worker.
    pub n_cores: usize,
    /// Theorem-2 gradient bound `B`.
    pub bound: f64,
    /// Pool capacity in slots handed to the [`Scheduler`]. Must fit
    /// the physical switch's SRAM (see [`slot_capacity`]).
    pub capacity: u32,
}

impl Default for SchedRunConfig {
    fn default() -> Self {
        SchedRunConfig {
            max_wall: Duration::from_secs(60),
            heartbeat: Duration::from_millis(2),
            failure_timeout: Duration::from_millis(25),
            n_cores: 1,
            bound: 16.0,
            capacity: 64,
        }
    }
}

/// Per-tenant lifecycle record: the isolation ledger. Everything here
/// is measured, not asserted — the isolation tests and the churn
/// benchmark read these rows.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub job: u8,
    /// `false`: the scheduler's admission control rejected the tenant
    /// (floors no longer fit); nothing below is meaningful.
    pub admitted: bool,
    pub submit_at: Duration,
    /// Admission-to-first-aggregate: earliest aggregated result seen
    /// by any of the job's workers, relative to `submit_at`.
    pub first_aggregate: Option<Duration>,
    /// Admission-to-completion, relative to `submit_at`.
    pub completed_at: Option<Duration>,
    /// Engine counters summed over the job's workers (retransmits,
    /// worker-side epoch fences, RTT estimates).
    pub worker_stats: EngineStats,
    /// Switch-side counters summed over every pool this job's epochs
    /// admitted (stale-epoch fence hits land here).
    pub switch_stats: SwitchStats,
    /// Faults injected into this job's worker ports (loss storms a
    /// chaos fabric aimed at this tenant).
    pub injected_faults: u64,
    /// Every worker finished and produced bit-identical tensors.
    pub results_identical: bool,
    /// Times the scheduler repartitioned this job (grow or shrink).
    pub resizes: u32,
    pub final_epoch: u32,
}

/// What a churn run produced.
#[derive(Debug)]
pub struct SchedRunReport {
    /// One row per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Driver event log: admissions, rejections, repartitions,
    /// completions.
    pub events: Vec<String>,
    /// Fabric-wide transport counters.
    pub transport_stats: PortStats,
    pub wall: Duration,
}

impl SchedRunReport {
    /// All admitted jobs ran to completion with agreeing results.
    pub fn all_complete(&self) -> bool {
        self.outcomes
            .iter()
            .filter(|o| o.admitted)
            .all(|o| o.completed_at.is_some() && o.results_identical)
    }
}

/// Endpoint layout for a scheduled run over `jobs`:
/// `0` = switch, then each job's workers in submission order, last =
/// controller. Returns the total fabric size.
pub fn sched_fabric_size(jobs: &[SchedJob]) -> usize {
    2 + jobs.iter().map(|j| j.updates.len()).sum::<usize>()
}

struct LiveJob {
    stop: Arc<AtomicBool>,
    submit_ns: u64,
    resizes: u32,
}

/// Drive a churning job population through one shared switch under
/// the scheduler's slot policy. See the module docs for the thread
/// layout; the calling thread becomes the driver (controller +
/// scheduler + event loop).
pub fn run_scheduled<P: Port + 'static>(
    ports: Vec<P>,
    jobs: Vec<SchedJob>,
    base: &Protocol,
    cfg: &SchedRunConfig,
) -> Result<SchedRunReport> {
    if ports.len() != sched_fabric_size(&jobs) {
        return Err(Error::InvalidConfig(format!(
            "need {} ports (switch + workers + controller), got {}",
            sched_fabric_size(&jobs),
            ports.len()
        )));
    }
    // The scheduler must never allocate more than the physical switch
    // can admit, or a repartition would strand a job at admission.
    let phys = slot_capacity(&PipelineModel::default(), base.k);
    if cfg.capacity > phys {
        return Err(Error::InvalidConfig(format!(
            "capacity {} slots exceeds the switch's {} (k = {})",
            cfg.capacity, phys, base.k
        )));
    }
    let base = &switchml_transport::resolve_run_proto(
        &Protocol {
            // Validation needs plausible placeholders; per-job protos
            // override both below.
            n_workers: 2.max(jobs.iter().map(|j| j.updates.len()).max().unwrap_or(2)),
            pool_size: cfg.capacity.max(1) as usize,
            ..base.clone()
        },
        &ports,
    )?;

    let mut jobs = jobs;
    jobs.sort_by_key(|j| j.submit_at);
    // Worker endpoint ranges per job, in sorted submission order.
    let mut first_ep = 1usize;
    let mut ep_range: BTreeMap<u8, (usize, usize)> = BTreeMap::new();
    for j in &jobs {
        ep_range.insert(j.tenant.job, (first_ep, j.updates.len()));
        first_ep += j.updates.len();
    }
    let ctrl_ep = first_ep;

    let hb = cfg.heartbeat.as_nanos() as u64;
    let ctrl_cfg = CtrlConfig {
        heartbeat_interval_ns: hb,
        failure_timeout_ns: cfg.failure_timeout.as_nanos() as u64,
        probe_rto_ns: hb,
        probe_policy: RtoPolicy::ExponentialBackoff {
            max_ns: cfg.failure_timeout.as_nanos() as u64,
        },
        probe_limit: 3,
    };
    let worker_cfg = CtrlRunConfig {
        max_wall: cfg.max_wall,
        n_cores: cfg.n_cores,
        heartbeat: cfg.heartbeat,
        failure_timeout: cfg.failure_timeout,
        bound: cfg.bound,
        ..CtrlRunConfig::default()
    };

    let t0 = Instant::now();
    let deadline = t0 + cfg.max_wall;
    let stop_all = Arc::new(AtomicBool::new(false));

    let mut ports: Vec<Option<P>> = ports.into_iter().map(Some).collect();
    let ctrl_port = ports[ctrl_ep].take().expect("controller port");
    let switch_port = ports[0].take().expect("switch port");

    std::thread::scope(|scope| {
        let switch_handle = {
            let stop = Arc::clone(&stop_all);
            scope.spawn(move || switch_thread(switch_port, &stop, deadline, t0, None))
        };

        let mut ctrl = Controller::new(ctrl_cfg, vec![PipelineModel::default()]);
        let mut sched = Scheduler::new(cfg.capacity);
        let mut port = ctrl_port;
        let now_ns = || t0.elapsed().as_nanos() as u64;

        let mut events: Vec<String> = Vec::new();
        let mut pending = jobs.into_iter().peekable();
        let mut live: BTreeMap<u8, LiveJob> = BTreeMap::new();
        let mut worker_handles: BTreeMap<u8, Vec<std::thread::ScopedJoinHandle<_>>> =
            BTreeMap::new();
        // Submission-order skeleton rows, filled in as jobs finish.
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut row: BTreeMap<u8, usize> = BTreeMap::new();
        // Wire job id -> scheduler job id, for attributing per-pool
        // switch counters. Append-only within a job's lifetime; the
        // wire space (256 ids) comfortably exceeds one run's churn.
        let mut wire_to_job: BTreeMap<u8, u8> = BTreeMap::new();
        let mut completed: BTreeMap<u8, Duration> = BTreeMap::new();
        let mut current_alloc: BTreeMap<u8, u32> = BTreeMap::new();

        let mut next_tick = Instant::now();
        let tick = cfg.heartbeat / 2;

        loop {
            let drained = pending.peek().is_none() && live.is_empty();
            if drained || Instant::now() > deadline {
                break;
            }
            let mut actions: Vec<Action> = Vec::new();

            // Arrivals.
            while pending.peek().is_some_and(|j| t0.elapsed() >= j.submit_at) {
                let job = pending.next().unwrap();
                let id = job.tenant.job;
                row.insert(id, outcomes.len());
                outcomes.push(JobOutcome {
                    job: id,
                    admitted: false,
                    submit_at: t0.elapsed(),
                    first_aggregate: None,
                    completed_at: None,
                    worker_stats: EngineStats::default(),
                    switch_stats: SwitchStats::default(),
                    injected_faults: 0,
                    results_identical: false,
                    resizes: 0,
                    final_epoch: 0,
                });
                if let Err(e) = sched.admit(job.tenant.clone()) {
                    events.push(format!("job {id}: rejected: {e}"));
                    continue;
                }
                let target = sched.allocation();
                let n = job.updates.len();
                let proto = Protocol {
                    n_workers: n,
                    pool_size: target[&id] as usize,
                    ..base.clone()
                };
                let probe = TensorStream::from_f32(&job.updates[0], proto.mode, 1.0, proto.k)?;
                if let Err(e) =
                    ctrl.create_job(id, proto.clone(), cfg.bound, probe.total_chunks(), 0)
                {
                    sched.remove(id);
                    events.push(format!("job {id}: admission failed at the switch: {e}"));
                    continue;
                }
                outcomes[row[&id]].admitted = true;
                events.push(format!(
                    "job {id}: admitted class {:?} with {} slots",
                    job.tenant.class, target[&id]
                ));
                // Steer every other live job to its new share — this
                // is where a high-priority arrival preempts slots.
                actions.extend(rebalance(
                    &mut ctrl,
                    &sched,
                    &target,
                    &mut current_alloc,
                    id,
                    now_ns(),
                    &mut events,
                ));
                current_alloc = target;

                let stop = Arc::new(AtomicBool::new(false));
                live.insert(
                    id,
                    LiveJob {
                        stop: Arc::clone(&stop),
                        submit_ns: now_ns(),
                        resizes: 0,
                    },
                );
                let (ep0, _) = ep_range[&id];
                let mut handles = Vec::with_capacity(n);
                for (w, updates) in job.updates.into_iter().enumerate() {
                    let wport = ports[ep0 + w].take().expect("worker port unused");
                    let stop = Arc::clone(&stop);
                    let wproto = proto.clone();
                    let wcfg = worker_cfg.clone();
                    handles.push(scope.spawn(move || {
                        worker_thread(
                            wport, id, ctrl_ep, updates, wproto, &wcfg, t0, None, &stop, deadline,
                        )
                    }));
                }
                worker_handles.insert(id, handles);
            }

            // Control traffic.
            if let Some((from, data)) = port.recv_timeout(tick / 4) {
                if let Ok(msg) = CtrlMsg::decode(&data) {
                    actions.extend(ctrl.on_message(from as u64, msg, now_ns()));
                }
            }
            if Instant::now() >= next_tick {
                actions.extend(ctrl.on_tick(now_ns()));
                next_tick = Instant::now() + tick;
            }

            let mut finished: Vec<u8> = Vec::new();
            let mut i = 0;
            while i < actions.len() {
                // Completions splice rebalance actions onto the tail.
                let act = actions[i].clone();
                i += 1;
                match act {
                    Action::Send { to, msg } => port.send(to as usize, &msg.encode()),
                    Action::SwitchCtl { msg, .. } => port.send(SWITCH_ENDPOINT, &msg.encode()),
                    Action::WorkerDead { job, wid } => {
                        events.push(format!("job {job}: worker {wid} declared dead"))
                    }
                    Action::Reconfigured { job, epoch, n, f } => {
                        if let Some(l) = live.get_mut(&job) {
                            l.resizes += 1;
                        }
                        events.push(format!(
                            "job {job}: reconfigured to epoch {epoch} n={n} f={f} pool={}",
                            ctrl.pool_size(job).unwrap_or(0)
                        ));
                    }
                    Action::JobComplete { job } => {
                        events.push(format!("job {job}: complete"));
                        completed.insert(job, t0.elapsed());
                        finished.push(job);
                        sched.remove(job);
                        if sched.tenant_count() > 0 {
                            let target = sched.allocation();
                            let more = rebalance(
                                &mut ctrl,
                                &sched,
                                &target,
                                &mut current_alloc,
                                job,
                                now_ns(),
                                &mut events,
                            );
                            actions.extend(more);
                            current_alloc = target;
                        } else {
                            current_alloc.clear();
                        }
                    }
                }
            }

            // Track the wire id each live job currently aggregates
            // under, for per-job switch accounting.
            for &id in live.keys() {
                if let Some(wire) = ctrl.wire_job(id) {
                    wire_to_job.insert(wire, id);
                }
            }

            for id in finished {
                if let Some(l) = live.remove(&id) {
                    l.stop.store(true, Ordering::Release);
                    let o = &mut outcomes[row[&id]];
                    o.resizes = l.resizes;
                    o.completed_at = Some(Duration::from_nanos(
                        completed[&id].as_nanos() as u64 - l.submit_ns,
                    ));
                    o.final_epoch = ctrl.epoch(id).unwrap_or(0);
                    // Joining here is cheap: the stop flag is set, so
                    // the workers exit their loops within one poll.
                    harvest_workers(
                        worker_handles.remove(&id).unwrap_or_default(),
                        o,
                        l.submit_ns,
                    );
                }
            }
        }

        // Teardown (drained population, or wall budget exhausted with
        // stragglers — their rows keep completed_at = None).
        stop_all.store(true, Ordering::Release);
        for (id, l) in &live {
            l.stop.store(true, Ordering::Release);
            events.push(format!("job {id}: torn down incomplete"));
        }
        let mut transport_stats = PortStats::default();
        for (id, handles) in std::mem::take(&mut worker_handles) {
            let submit_ns = live.get(&id).map(|l| l.submit_ns).unwrap_or(0);
            let o = &mut outcomes[row[&id]];
            harvest_workers(handles, o, submit_ns);
            o.results_identical = false;
        }
        // Fold the whole fabric's transport counters from the rows,
        // then add the infrastructure endpoints.
        let switch_out = switch_handle.join().expect("switch thread panicked")?;
        for (wire, stats) in switch_out.per_pool {
            if let Some(&id) = wire_to_job.get(&wire) {
                outcomes[row[&id]].switch_stats.merge(stats);
            }
        }
        transport_stats.merge(port.stats());
        transport_stats.merge(switch_out.port_stats);
        Ok(SchedRunReport {
            outcomes,
            events,
            transport_stats,
            wall: t0.elapsed(),
        })
    })
}

/// Issue `resize_job` for every live job whose share changed, except
/// `skip` (the job being created or torn down this instant).
fn rebalance(
    ctrl: &mut Controller,
    sched: &Scheduler,
    target: &BTreeMap<u8, u32>,
    current: &mut BTreeMap<u8, u32>,
    skip: u8,
    now: u64,
    events: &mut Vec<String>,
) -> Vec<Action> {
    let mut out = Vec::new();
    for (&job, &slots) in target {
        if job == skip || !sched.is_live(job) {
            continue;
        }
        if current.get(&job) == Some(&slots) {
            continue;
        }
        match ctrl.resize_job(job, slots as usize, now) {
            Ok(acts) => {
                events.push(format!("job {job}: repartitioned to {slots} slots"));
                out.extend(acts);
            }
            Err(e) => events.push(format!("job {job}: repartition failed: {e}")),
        }
    }
    out
}

/// Join a finished job's worker threads and fold their counters into
/// the outcome row.
fn harvest_workers(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Result<crate::runner::WorkerOut>>>,
    o: &mut JobOutcome,
    submit_ns: u64,
) {
    let mut tensors: Vec<Option<Vec<Vec<f32>>>> = Vec::new();
    for h in handles {
        match h.join().expect("worker thread panicked") {
            Ok(out) => {
                o.worker_stats.merge(out.stats);
                o.injected_faults += out.port_stats.injected_faults();
                if let Some(t) = out.first_result {
                    let rel = Duration::from_nanos((t.as_nanos() as u64).saturating_sub(submit_ns));
                    o.first_aggregate = Some(match o.first_aggregate {
                        Some(cur) => cur.min(rel),
                        None => rel,
                    });
                }
                tensors.push(out.tensors);
            }
            Err(_) => tensors.push(None),
        }
    }
    o.results_identical = !tensors.is_empty()
        && tensors.iter().all(|t| t.is_some())
        && tensors.windows(2).all(|w| w[0] == w[1]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchml_transport::channel::channel_fabric;
    use switchml_transport::faulty::{FaultyConfig, FaultyPort, FaultyStats};

    fn tenant(job: u8, class: Class, weight: u32, quota: u32, min_slots: u32) -> TenantSpec {
        TenantSpec {
            job,
            class,
            weight,
            quota,
            min_slots,
        }
    }

    #[test]
    fn weighted_max_min_within_a_class() {
        let mut s = Scheduler::new(30);
        s.admit(tenant(0, Class::BestEffort, 1, 0, 1)).unwrap();
        s.admit(tenant(1, Class::BestEffort, 2, 0, 1)).unwrap();
        let a = s.allocation();
        assert_eq!(a[&0], 10);
        assert_eq!(a[&1], 20);
        assert_eq!(a.values().sum::<u32>(), 30);
    }

    #[test]
    fn high_class_is_served_before_best_effort() {
        let mut s = Scheduler::new(16);
        s.admit(tenant(0, Class::BestEffort, 1, 0, 1)).unwrap();
        assert_eq!(s.allocation()[&0], 16, "alone, the tenant owns the pool");
        s.admit(tenant(1, Class::High, 1, 12, 1)).unwrap();
        let a = s.allocation();
        assert_eq!(a[&1], 12, "high class fills to its quota first");
        assert_eq!(a[&0], 4, "best effort keeps only the remainder");
    }

    #[test]
    fn quota_caps_and_excess_flows_to_others() {
        let mut s = Scheduler::new(12);
        s.admit(tenant(0, Class::BestEffort, 1, 3, 1)).unwrap();
        s.admit(tenant(1, Class::BestEffort, 1, 0, 1)).unwrap();
        let a = s.allocation();
        assert_eq!(a[&0], 3);
        assert_eq!(a[&1], 9);
    }

    #[test]
    fn floors_gate_admission_and_departure_frees_them() {
        let mut s = Scheduler::new(8);
        s.admit(tenant(0, Class::BestEffort, 1, 0, 5)).unwrap();
        assert!(s.admit(tenant(1, Class::BestEffort, 1, 0, 4)).is_err());
        s.admit(tenant(2, Class::High, 1, 0, 3)).unwrap();
        assert_eq!(s.allocation()[&0], 5, "floors always honored");
        assert!(s.remove(0));
        s.admit(tenant(1, Class::BestEffort, 1, 0, 4)).unwrap();
        let a = s.allocation();
        assert_eq!(a.values().sum::<u32>(), 8);
        assert!(a[&2] >= 3 && a[&1] >= 4);
    }

    #[test]
    fn allocation_never_exceeds_capacity_under_churn() {
        let mut s = Scheduler::new(17);
        for j in 0..6u8 {
            let class = if j % 2 == 0 {
                Class::High
            } else {
                Class::BestEffort
            };
            let _ = s.admit(tenant(
                j,
                class,
                1 + j as u32,
                (j as u32 % 3) * 4,
                1 + j as u32 % 2,
            ));
        }
        let a = s.allocation();
        assert!(a.values().sum::<u32>() <= 17);
        s.remove(2);
        s.remove(3);
        let a = s.allocation();
        assert!(a.values().sum::<u32>() <= 17);
        for (&j, &slots) in &a {
            assert!(slots >= 1, "tenant {j} starved below its floor");
        }
    }

    // ---- threaded integration --------------------------------------

    fn base_proto() -> Protocol {
        Protocol {
            n_workers: 2,
            k: 8,
            pool_size: 16,
            rto_ns: 2_000_000,
            scaling_factor: 10_000.0,
            ..Protocol::default()
        }
    }

    fn updates(n: usize, elems: usize, salt: u32) -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 * 0.5 + ((i as u32 + salt) % 7) as f32 * 0.25)
                    .collect()]
            })
            .collect()
    }

    #[test]
    fn two_tenants_share_the_switch_and_both_complete() {
        let jobs = vec![
            SchedJob {
                tenant: tenant(0, Class::BestEffort, 1, 0, 1),
                updates: updates(2, 4096, 0),
                submit_at: Duration::ZERO,
            },
            SchedJob {
                tenant: tenant(1, Class::BestEffort, 1, 0, 1),
                updates: updates(2, 4096, 7),
                submit_at: Duration::from_millis(3),
            },
        ];
        let ports = channel_fabric(sched_fabric_size(&jobs));
        let cfg = SchedRunConfig {
            capacity: 32,
            ..SchedRunConfig::default()
        };
        let report = run_scheduled(ports, jobs, &base_proto(), &cfg).unwrap();
        assert!(report.all_complete(), "events: {:?}", report.events);
        for o in &report.outcomes {
            assert!(o.admitted);
            assert!(
                o.first_aggregate.is_some(),
                "job {} never aggregated",
                o.job
            );
            assert!(
                o.switch_stats.completions > 0,
                "job {} has no switch-side completions attributed",
                o.job
            );
        }
    }

    /// A high-priority arrival preempts slots from a running
    /// best-effort tenant: the victim is live-repartitioned (shrunk at
    /// its chunk frontier) and still finishes with agreeing results —
    /// preemption never loses a committed chunk.
    #[test]
    fn high_priority_arrival_preempts_running_best_effort() {
        let jobs = vec![
            SchedJob {
                tenant: tenant(0, Class::BestEffort, 1, 0, 2),
                updates: updates(2, 32768, 0),
                submit_at: Duration::ZERO,
            },
            SchedJob {
                tenant: tenant(1, Class::High, 1, 24, 2),
                updates: updates(2, 8192, 3),
                submit_at: Duration::from_millis(10),
            },
        ];
        let ports = channel_fabric(sched_fabric_size(&jobs));
        let cfg = SchedRunConfig {
            capacity: 32,
            ..SchedRunConfig::default()
        };
        let report = run_scheduled(ports, jobs, &base_proto(), &cfg).unwrap();
        assert!(report.all_complete(), "events: {:?}", report.events);
        let victim = &report.outcomes[0];
        assert!(
            victim.resizes >= 1,
            "best-effort tenant was never preempted: {:?}",
            report.events
        );
        assert!(victim.final_epoch >= 1);
        assert!(
            report
                .events
                .iter()
                .any(|e| e.contains("job 0: repartitioned")),
            "events: {:?}",
            report.events
        );
    }

    /// Isolation: a noisy tenant's loss storm must stay in the noisy
    /// tenant's row. Two runs with identical topology and scheduling —
    /// the only difference is heavy injected loss on the noisy
    /// tenant's worker ports — and the quiet tenants' p99 completion
    /// latency must stay within 2x of the storm-free baseline, with
    /// zero injected faults attributed to them.
    #[test]
    fn noisy_tenant_loss_storm_does_not_inflate_quiet_tail() {
        let mk_jobs = || {
            let mut jobs = vec![SchedJob {
                tenant: tenant(9, Class::BestEffort, 1, 16, 2),
                updates: updates(2, 32768, 11),
                submit_at: Duration::ZERO,
            }];
            for q in 0..4u8 {
                jobs.push(SchedJob {
                    tenant: tenant(q, Class::High, 1, 0, 2),
                    updates: updates(2, 8192, q as u32),
                    submit_at: Duration::from_millis(4 + 8 * q as u64),
                });
            }
            jobs
        };
        // Noisy tenant's workers are endpoints 1 and 2 (first
        // submitted job).
        let run = |loss: f64| {
            let jobs = mk_jobs();
            let stats = Arc::new(FaultyStats::default());
            let ports: Vec<FaultyPort<_>> = channel_fabric(sched_fabric_size(&jobs))
                .into_iter()
                .enumerate()
                .map(|(i, p)| {
                    let cfg = if i == 1 || i == 2 {
                        FaultyConfig::loss_only(loss)
                    } else {
                        FaultyConfig::default()
                    };
                    FaultyPort::new(p, cfg, 40 + i as u64, Arc::clone(&stats))
                })
                .collect();
            let cfg = SchedRunConfig {
                capacity: 32,
                ..SchedRunConfig::default()
            };
            run_scheduled(ports, jobs, &base_proto(), &cfg).unwrap()
        };
        let baseline = run(0.0);
        let stormy = run(0.10);
        assert!(baseline.all_complete(), "events: {:?}", baseline.events);
        assert!(stormy.all_complete(), "events: {:?}", stormy.events);

        let quiet_p99 = |r: &SchedRunReport| {
            r.outcomes
                .iter()
                .filter(|o| o.job != 9)
                .map(|o| o.completed_at.unwrap())
                .max()
                .unwrap()
        };
        let (base_p99, storm_p99) = (quiet_p99(&baseline), quiet_p99(&stormy));
        // The loss is visible — and attributed to the noisy row only.
        let noisy = stormy.outcomes.iter().find(|o| o.job == 9).unwrap();
        assert!(noisy.injected_faults > 0, "storm never hit");
        assert!(noisy.worker_stats.retx > 0, "storm caused no retransmits");
        for o in stormy.outcomes.iter().filter(|o| o.job != 9) {
            assert_eq!(
                o.injected_faults, 0,
                "job {}: a quiet tenant absorbed injected faults",
                o.job
            );
        }
        // Tail isolation, measured: quiet p99 within 2x of the
        // storm-free baseline (1 ms grace for scheduler quantum noise
        // on near-zero baselines).
        assert!(
            storm_p99 <= base_p99 * 2 + Duration::from_millis(1),
            "quiet tail inflated by the storm: {base_p99:?} -> {storm_p99:?}"
        );
    }
}
