//! Control plane on the discrete-event simulator.
//!
//! Three node types wrap the sans-IO state machines: a
//! [`CtrlControllerNode`] (the [`Controller`] plus a tick timer and an
//! optional scheduled switch failover), a [`CtrlSwitchNode`] (a
//! physical [`MultiJobSwitch`] whose pools are installed and torn down
//! by `AdmitJob`/`EvictJob` control messages), and a
//! [`CtrlWorkerNode`] (registers, streams, heartbeats, quiesces,
//! resumes — and can be killed mid-run at a scheduled instant).
//!
//! [`run_ctrl`] builds the star topology (center forwarder; leaves =
//! controller, switches, workers), runs a [`CtrlScenario`] to
//! completion, and extracts every surviving worker's aggregated
//! tensors. Runs are deterministic: same scenario → same packets →
//! same aggregates, which is what lets tests assert *exact* equality
//! between a kill-and-reconfigure run and a fresh smaller run.

use std::any::Any;
use std::collections::HashMap;

use switchml_core::config::{NumericMode, Protocol, RtoPolicy};
use switchml_core::packet::{Packet, SIM_FRAME_OVERHEAD};
use switchml_core::switch::multijob::MultiJobSwitch;
use switchml_core::switch::pipeline::PipelineModel;
use switchml_core::switch::SwitchAction;
use switchml_core::worker::stream::TensorStream;
use switchml_core::worker::Worker;
use switchml_netsim::prelude::*;

use crate::controller::{Action, Controller, CtrlConfig};
use crate::msg::{bitmap_contains, chunk_bitmap, CtrlMsg};

/// Timer-token namespaces. Retransmission tokens carry the raw
/// deadline (always far below 2^62); the top two bits select the
/// heartbeat tick and the scheduled-failure timer.
const HB_BIT: u64 = 1 << 63;
const FAIL_BIT: u64 = 1 << 62;

const TICK_TOKEN: TimerToken = TimerToken(1);
const FAILOVER_TOKEN: TimerToken = TimerToken(2);

fn ctrl_frame(src: NodeId, dst: NodeId, msg: &CtrlMsg) -> SimPacket {
    SimPacket::new(src, dst, msg.encode(), SIM_FRAME_OVERHEAD)
}

// ---------------------------------------------------------------- controller

/// The controller attached to the simulated network.
pub struct CtrlControllerNode {
    ctrl: Controller,
    tick: Nanos,
    /// Scheduled switch failover: at `at`, drain `from` onto `to`.
    failover: Option<(Nanos, usize, usize)>,
    /// NodeId per physical switch index.
    switch_ids: Vec<NodeId>,
    /// Operator-visible event log (deaths, reconfigurations, …).
    pub events: Vec<String>,
}

impl CtrlControllerNode {
    pub fn new(
        ctrl: Controller,
        tick: Nanos,
        switch_ids: Vec<NodeId>,
        failover: Option<(Nanos, usize, usize)>,
    ) -> Self {
        CtrlControllerNode {
            ctrl,
            tick,
            failover,
            switch_ids,
            events: Vec::new(),
        }
    }

    /// The inner state machine (for post-run inspection).
    pub fn controller(&self) -> &Controller {
        &self.ctrl
    }

    fn execute(&mut self, actions: Vec<Action>, ctx: &mut dyn NodeCtx) {
        for act in actions {
            match act {
                Action::Send { to, msg } => {
                    let pkt = ctrl_frame(ctx.self_id(), NodeId(to as usize), &msg);
                    ctx.send(pkt);
                }
                Action::SwitchCtl { switch, msg } => {
                    let pkt = ctrl_frame(ctx.self_id(), self.switch_ids[switch], &msg);
                    ctx.send(pkt);
                }
                Action::WorkerDead { job, wid } => {
                    self.events.push(format!("job {job}: worker {wid} dead"));
                }
                Action::Reconfigured { job, epoch, n, f } => {
                    self.events
                        .push(format!("job {job}: epoch {epoch} n={n} f={f}"));
                }
                Action::JobComplete { job } => {
                    self.events.push(format!("job {job}: complete"));
                }
            }
        }
    }
}

impl Node for CtrlControllerNode {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        ctx.set_timer(self.tick, TICK_TOKEN);
        if let Some((at, _, _)) = self.failover {
            ctx.set_timer(at, FAILOVER_TOKEN);
        }
    }

    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
        if pkt.corrupted {
            return;
        }
        let Ok(msg) = CtrlMsg::decode(&pkt.payload) else {
            return;
        };
        let actions = self.ctrl.on_message(pkt.src.0 as u64, msg, ctx.now().0);
        self.execute(actions, ctx);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn NodeCtx) {
        match token {
            TICK_TOKEN => {
                let actions = self.ctrl.on_tick(ctx.now().0);
                self.execute(actions, ctx);
                ctx.set_timer(self.tick, TICK_TOKEN);
            }
            FAILOVER_TOKEN => {
                if let Some((_, from, to)) = self.failover.take() {
                    self.events.push(format!("failover: switch {from} -> {to}"));
                    let actions = self.ctrl.fail_over_all(from, to, ctx.now().0);
                    self.execute(actions, ctx);
                }
            }
            _ => {}
        }
    }

    fn participates_in_completion(&self) -> bool {
        false
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------- switch

/// A physical aggregation switch: pools come and go at the
/// controller's command, dataplane packets route by wire job id.
pub struct CtrlSwitchNode {
    switch: MultiJobSwitch,
    /// wire job id → worker NodeId per wid.
    members: HashMap<u8, Vec<NodeId>>,
    /// Dataplane packets for unadmitted jobs (stale epochs, drained
    /// pools) — dropped by design, counted for observability.
    pub stale: u64,
}

impl CtrlSwitchNode {
    pub fn new(pipeline: PipelineModel) -> Self {
        CtrlSwitchNode {
            switch: MultiJobSwitch::new(pipeline),
            members: HashMap::new(),
            stale: 0,
        }
    }

    /// The inner multi-job switch (ledger state, per-job stats).
    pub fn switch(&self) -> &MultiJobSwitch {
        &self.switch
    }
}

impl Node for CtrlSwitchNode {
    fn on_start(&mut self, _ctx: &mut dyn NodeCtx) {}

    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
        if pkt.corrupted {
            return;
        }
        if CtrlMsg::is_ctrl(&pkt.payload) {
            match CtrlMsg::decode(&pkt.payload) {
                Ok(CtrlMsg::AdmitJob {
                    job,
                    epoch,
                    proto,
                    members,
                }) if self.switch.admit(job, &proto).is_ok() => {
                    self.switch
                        .set_job_epoch(job, (epoch & 0xff) as u8)
                        .expect("just admitted");
                    self.members
                        .insert(job, members.iter().map(|&p| NodeId(p as usize)).collect());
                }
                Ok(CtrlMsg::EvictJob { job }) => {
                    let _ = self.switch.evict(job);
                    self.members.remove(&job);
                }
                _ => {}
            }
            return;
        }
        let Ok(decoded) = Packet::decode(&pkt.payload) else {
            return;
        };
        let job = decoded.job;
        match self.switch.on_packet(decoded) {
            Ok(SwitchAction::Multicast(result)) => {
                let bytes = result.encode();
                if let Some(ws) = self.members.get(&job) {
                    for &w in ws {
                        ctx.send(SimPacket::new(
                            ctx.self_id(),
                            w,
                            bytes.clone(),
                            SIM_FRAME_OVERHEAD,
                        ));
                    }
                }
            }
            Ok(SwitchAction::Unicast(wid, result)) => {
                if let Some(&w) = self.members.get(&job).and_then(|ws| ws.get(wid as usize)) {
                    ctx.send(SimPacket::new(
                        ctx.self_id(),
                        w,
                        result.encode(),
                        SIM_FRAME_OVERHEAD,
                    ));
                }
            }
            Ok(SwitchAction::Drop) => {}
            Err(_) => self.stale += 1,
        }
    }

    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn NodeCtx) {}

    fn participates_in_completion(&self) -> bool {
        false
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------- worker

enum WState {
    /// Re-sending `Register` until `Welcome` lands.
    Registering,
    /// Welcomed, waiting for `Start`.
    Ready,
    /// Streaming the tensor through the switch pool.
    Running(Box<Worker>),
    /// Dataplane stopped; holding the partially aggregated stream for
    /// the reconfiguration in flight.
    Quiesced(Box<TensorStream>),
    /// Every chunk aggregated.
    Finished(Box<TensorStream>),
    /// Killed by the scenario's fault injector.
    Dead,
}

/// A controllable worker: registers with the controller, streams under
/// the negotiated config, heartbeats, and survives reconfigurations.
pub struct CtrlWorkerNode {
    job: u8,
    tensors: Vec<Vec<f32>>,
    /// Template protocol (k, pool, RTO); n and f come from the
    /// controller at Welcome/Reconfigure time.
    base: Protocol,
    n_cores: usize,
    controller: NodeId,
    /// NodeId per physical switch index (Reconfigure names an index).
    switch_ids: Vec<NodeId>,
    heartbeat: Nanos,
    /// Die at this instant, if scheduled.
    fail_at: Option<Nanos>,

    state: WState,
    wid: u16,
    epoch: u32,
    wire_job: u8,
    cur_switch: NodeId,
    armed_rto: Option<u64>,
    /// Stale dataplane packets dropped (wrong wire job id).
    pub stale: u64,
    completed: bool,
}

impl CtrlWorkerNode {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        job: u8,
        tensors: Vec<Vec<f32>>,
        base: Protocol,
        n_cores: usize,
        controller: NodeId,
        switch_ids: Vec<NodeId>,
        heartbeat: Nanos,
        fail_at: Option<Nanos>,
    ) -> Self {
        let cur_switch = switch_ids[0];
        CtrlWorkerNode {
            job,
            tensors,
            base,
            n_cores,
            controller,
            switch_ids,
            heartbeat,
            fail_at,
            state: WState::Registering,
            wid: 0,
            epoch: 0,
            wire_job: 0,
            cur_switch,
            armed_rto: None,
            stale: 0,
            completed: false,
        }
    }

    /// Aggregated tensors (raw sums), once finished.
    pub fn results(&self) -> Option<Vec<Vec<f32>>> {
        match &self.state {
            WState::Finished(stream) => stream.result_tensors_f32(1).ok(),
            _ => None,
        }
    }

    /// Was this worker killed by the scenario?
    pub fn is_dead(&self) -> bool {
        matches!(self.state, WState::Dead)
    }

    fn send_ctrl(&self, msg: &CtrlMsg, ctx: &mut dyn NodeCtx) {
        ctx.send(ctrl_frame(ctx.self_id(), self.controller, msg));
    }

    fn transmit(&mut self, mut pkt: Packet, ctx: &mut dyn NodeCtx) {
        pkt.job = self.wire_job;
        ctx.send(SimPacket::new(
            ctx.self_id(),
            self.cur_switch,
            pkt.encode(),
            SIM_FRAME_OVERHEAD,
        ));
    }

    fn rearm(&mut self, ctx: &mut dyn NodeCtx) {
        if let WState::Running(w) = &self.state {
            if let Some(nd) = w.next_deadline() {
                if self.armed_rto != Some(nd) {
                    self.armed_rto = Some(nd);
                    let delay = Nanos(nd.saturating_sub(ctx.now().0));
                    ctx.set_timer(delay, TimerToken(nd));
                }
            }
        }
    }

    /// Move Running → Finished once the stream is fully aggregated,
    /// reporting `Done` upstream and completing the sim node.
    fn check_done(&mut self, ctx: &mut dyn NodeCtx) {
        let done = matches!(&self.state, WState::Running(w) if w.is_done());
        if !done {
            return;
        }
        let WState::Running(w) = std::mem::replace(&mut self.state, WState::Dead) else {
            unreachable!()
        };
        self.state = WState::Finished(Box::new(w.into_stream()));
        self.send_ctrl(
            &CtrlMsg::Done {
                job: self.job,
                wid: self.wid,
                epoch: self.epoch,
            },
            ctx,
        );
        if !self.completed {
            self.completed = true;
            ctx.complete();
        }
    }

    fn quiesce_bitmap(stream: &TensorStream) -> Vec<u8> {
        chunk_bitmap(stream.total_chunks(), |c| stream.chunk_is_done(c))
    }

    fn handle_ctrl(&mut self, msg: CtrlMsg, ctx: &mut dyn NodeCtx) {
        match msg {
            CtrlMsg::Welcome {
                job,
                wid,
                epoch,
                n,
                f,
                wire_job,
                switch,
            } if job == self.job => {
                if matches!(self.state, WState::Registering) {
                    self.wid = wid;
                    self.epoch = epoch;
                    self.wire_job = wire_job;
                    self.cur_switch = self.switch_ids[switch as usize];
                    self.base.n_workers = n as usize;
                    self.base.scaling_factor = f;
                    self.state = WState::Ready;
                }
            }
            CtrlMsg::Start { job, epoch } if job == self.job && epoch == self.epoch => {
                if matches!(self.state, WState::Ready) {
                    let stream = TensorStream::from_f32(
                        &self.tensors,
                        self.base.mode,
                        self.base.scaling_factor,
                        self.base.k,
                    )
                    .expect("scenario stream must build");
                    let worker = Worker::new(self.wid, &self.base, stream)
                        .expect("welcomed config must be valid");
                    self.begin_streaming(worker, ctx);
                }
            }
            CtrlMsg::Quiesce { job, epoch } if job == self.job && epoch == self.epoch => {
                let bitmap = match std::mem::replace(&mut self.state, WState::Dead) {
                    WState::Running(w) => {
                        let stream = w.into_stream();
                        let bm = Self::quiesce_bitmap(&stream);
                        self.state = WState::Quiesced(Box::new(stream));
                        Some(bm)
                    }
                    // Duplicate Quiesce (our ack was lost): re-ack.
                    s @ (WState::Quiesced(_) | WState::Finished(_)) => {
                        let bm = match &s {
                            WState::Quiesced(st) | WState::Finished(st) => Self::quiesce_bitmap(st),
                            _ => unreachable!(),
                        };
                        self.state = s;
                        Some(bm)
                    }
                    // Welcomed but never started: nothing aggregated.
                    s @ WState::Ready => {
                        self.state = s;
                        Some(Vec::new())
                    }
                    s => {
                        self.state = s;
                        None
                    }
                };
                if let Some(done) = bitmap {
                    self.send_ctrl(
                        &CtrlMsg::QuiesceAck {
                            job: self.job,
                            wid: self.wid,
                            epoch: self.epoch,
                            done,
                        },
                        ctx,
                    );
                }
            }
            CtrlMsg::Reconfigure {
                job,
                epoch,
                n,
                new_wid,
                f,
                switch,
                wire_job,
                pool_size,
                frontier,
            } if job == self.job && epoch == self.epoch + 1 => {
                let stream = match std::mem::replace(&mut self.state, WState::Dead) {
                    WState::Quiesced(s) | WState::Finished(s) => Some(*s),
                    // Never started (lost Start): begin from scratch.
                    WState::Ready => None,
                    other => {
                        self.state = other;
                        return;
                    }
                };
                self.epoch = epoch;
                self.wid = new_wid;
                self.wire_job = wire_job;
                self.cur_switch = self.switch_ids[switch as usize];
                self.base.n_workers = n as usize;
                self.base.scaling_factor = f;
                self.base.pool_size = pool_size as usize;
                let mut stream = stream.unwrap_or_else(|| {
                    TensorStream::from_f32(&self.tensors, self.base.mode, f, self.base.k)
                        .expect("scenario stream must build")
                });
                // Keep only chunks aggregated at *every* survivor;
                // everything else re-streams under the new n and f.
                for c in 0..stream.total_chunks() {
                    if stream.chunk_is_done(c) && !bitmap_contains(&frontier, c) {
                        stream.mark_undone(c);
                    }
                }
                stream
                    .set_scaling(f)
                    .expect("controller-negotiated f must be valid");
                let worker = Worker::resume(self.wid, &self.base, stream, self.n_cores)
                    .expect("resume under negotiated config must succeed");
                self.begin_streaming(worker, ctx);
                // Sync immediately so the controller stops re-sending.
                self.send_ctrl(
                    &CtrlMsg::Heartbeat {
                        job: self.job,
                        wid: self.wid,
                        epoch: self.epoch,
                    },
                    ctx,
                );
            }
            CtrlMsg::Probe { job, .. }
                if job == self.job && !matches!(self.state, WState::Registering | WState::Dead) =>
            {
                self.send_ctrl(
                    &CtrlMsg::Heartbeat {
                        job: self.job,
                        wid: self.wid,
                        epoch: self.epoch,
                    },
                    ctx,
                );
            }
            _ => {}
        }
    }

    fn begin_streaming(&mut self, mut worker: Worker, ctx: &mut dyn NodeCtx) {
        // Stamp the job generation so the switch's epoch fence passes
        // this worker's updates and rejects any pre-reconfiguration
        // stragglers.
        worker.set_epoch((self.epoch & 0xff) as u8);
        let initial = worker.start(ctx.now().0).expect("worker start");
        self.armed_rto = None;
        self.state = WState::Running(Box::new(worker));
        for p in initial {
            self.transmit(p, ctx);
        }
        self.check_done(ctx);
        self.rearm(ctx);
    }
}

impl Node for CtrlWorkerNode {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        self.send_ctrl(&CtrlMsg::Register { job: self.job }, ctx);
        ctx.set_timer(self.heartbeat, TimerToken(HB_BIT));
        if let Some(at) = self.fail_at {
            ctx.set_timer(at, TimerToken(FAIL_BIT));
        }
    }

    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
        if pkt.corrupted || matches!(self.state, WState::Dead) {
            return;
        }
        if CtrlMsg::is_ctrl(&pkt.payload) {
            if let Ok(msg) = CtrlMsg::decode(&pkt.payload) {
                self.handle_ctrl(msg, ctx);
            }
            return;
        }
        let Ok(decoded) = Packet::decode(&pkt.payload) else {
            return;
        };
        if decoded.job != self.wire_job {
            self.stale += 1; // result from a drained epoch
            return;
        }
        if let WState::Running(w) = &mut self.state {
            let followups = w
                .on_result(&decoded, ctx.now().0)
                .expect("worker rejected a well-formed result");
            for p in followups {
                self.transmit(p, ctx);
            }
            self.check_done(ctx);
            self.rearm(ctx);
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn NodeCtx) {
        if matches!(self.state, WState::Dead) {
            return;
        }
        if token.0 == FAIL_BIT {
            self.state = WState::Dead;
            if !self.completed {
                self.completed = true;
                ctx.complete();
            }
            return;
        }
        if token.0 == HB_BIT {
            match &self.state {
                WState::Registering => self.send_ctrl(&CtrlMsg::Register { job: self.job }, ctx),
                WState::Finished(_) => {
                    // Re-offer Done in case the first one was lost.
                    self.send_ctrl(
                        &CtrlMsg::Done {
                            job: self.job,
                            wid: self.wid,
                            epoch: self.epoch,
                        },
                        ctx,
                    );
                }
                _ => self.send_ctrl(
                    &CtrlMsg::Heartbeat {
                        job: self.job,
                        wid: self.wid,
                        epoch: self.epoch,
                    },
                    ctx,
                ),
            }
            ctx.set_timer(self.heartbeat, TimerToken(HB_BIT));
            return;
        }
        // Retransmission deadline.
        if self.armed_rto == Some(token.0) {
            self.armed_rto = None;
        }
        if let WState::Running(w) = &mut self.state {
            let now = ctx.now();
            if w.next_deadline().is_some_and(|d| d <= now.0) {
                let retx = w.expired(now.0).expect("retransmission materialization");
                for p in retx {
                    self.transmit(p, ctx);
                }
            }
        }
        self.rearm(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------- scenarios

/// A deterministic control-plane scenario.
#[derive(Debug, Clone)]
pub struct CtrlScenario {
    /// Workers per job.
    pub n_workers: usize,
    /// Jobs (each with its own disjoint worker set).
    pub n_jobs: usize,
    /// Physical switches (index 0 hosts all jobs initially).
    pub n_switches: usize,
    /// Elements in each worker's (single) tensor.
    pub elems: usize,
    /// Elements per packet.
    pub k: usize,
    /// Pool slots per job.
    pub pool_size: usize,
    /// Worker cores (engines) per worker.
    pub n_cores: usize,
    /// Requested scaling factor (clamped by Theorem 2 per epoch).
    pub requested_f: f64,
    /// Per-worker gradient magnitude bound `B`.
    pub bound: f64,
    /// Link bandwidth in Gbit/s.
    pub bandwidth_gbps: f64,
    /// One-way propagation per link, microseconds.
    pub latency_us: u64,
    /// Loss probability on *worker* links (controller and switch links
    /// stay clean — the interesting loss is on the data path).
    pub loss: f64,
    /// Simulator seed (loss draw sequence).
    pub seed: u64,
    /// Dataplane retransmission timeout, microseconds.
    pub rto_us: u64,
    /// Worker heartbeat interval, microseconds.
    pub heartbeat_us: u64,
    /// Controller failure timeout, microseconds.
    pub timeout_us: u64,
    /// Kill worker `(global index, at microseconds)`.
    pub fail_worker: Option<(usize, u64)>,
    /// At `(microseconds, from, to)`: drain switch `from` onto `to`.
    pub fail_over: Option<(u64, usize, usize)>,
    /// When building tensors, skip this global worker slot — so a
    /// fresh (n−1)-worker run can be given *exactly* the tensors of
    /// another run's survivors.
    pub tensor_skip: Option<usize>,
    /// Simulated-time budget, milliseconds.
    pub deadline_ms: u64,
}

impl Default for CtrlScenario {
    fn default() -> Self {
        CtrlScenario {
            n_workers: 4,
            n_jobs: 1,
            n_switches: 1,
            elems: 256,
            k: 8,
            pool_size: 8,
            n_cores: 1,
            requested_f: 1e9,
            bound: 16.0,
            bandwidth_gbps: 10.0,
            latency_us: 10,
            loss: 0.0,
            seed: 1,
            rto_us: 300,
            heartbeat_us: 50,
            timeout_us: 250,
            fail_worker: None,
            fail_over: None,
            tensor_skip: None,
            deadline_ms: 500,
        }
    }
}

/// The deterministic tensor of global worker slot `slot`: values in
/// `(-bound, bound)`, distinct per slot and element.
pub fn scenario_tensor(slot: usize, elems: usize, bound: f64) -> Vec<f32> {
    (0..elems)
        .map(|i| {
            let h = (slot * 1_000_003 + i * 7_919 + 13) % 20_011;
            ((h as f64 / 20_011.0) * 2.0 - 1.0) as f32 * (bound as f32 * 0.99)
        })
        .collect()
}

/// What a control-plane run produced.
pub struct CtrlOutcome {
    /// All surviving workers completed within the deadline.
    pub finished: bool,
    /// `results[job][worker]`: aggregated tensors (raw sums) of each
    /// surviving worker, `None` for killed workers.
    pub results: Vec<Vec<Option<Vec<Vec<f32>>>>>,
    /// Controller event log, in order.
    pub events: Vec<String>,
    /// Final epoch per job.
    pub final_epoch: Vec<u32>,
    /// Final worker count per job.
    pub final_n: Vec<usize>,
    /// Final negotiated scaling factor per job.
    pub final_f: Vec<f64>,
    /// The raw simulation report.
    pub report: SimReport,
}

/// Run a [`CtrlScenario`] to completion.
pub fn run_ctrl(sc: &CtrlScenario) -> CtrlOutcome {
    assert!(sc.n_switches >= 1 && sc.n_jobs >= 1 && sc.n_workers >= 1);
    let us = 1_000u64;
    let bw = (sc.bandwidth_gbps * 1e9) as u64;
    let prop = Nanos(sc.latency_us * us);
    let clean = LinkSpec::clean(bw, prop);
    let lossy = clean.with_loss(sc.loss);

    // Star: center forwarder; leaves = controller, switches, workers.
    let mut topo = Topology::new();
    let center = topo.add_node();
    let controller_id = topo.add_node();
    topo.add_duplex_link(controller_id, center, clean);
    let switch_ids: Vec<NodeId> = (0..sc.n_switches)
        .map(|_| {
            let id = topo.add_node();
            topo.add_duplex_link(id, center, clean);
            id
        })
        .collect();
    let mut worker_ids = Vec::new();
    for _ in 0..sc.n_jobs * sc.n_workers {
        let id = topo.add_node();
        topo.add_duplex_link(id, center, lossy);
        worker_ids.push(id);
    }

    let base = Protocol {
        n_workers: sc.n_workers,
        k: sc.k,
        pool_size: sc.pool_size,
        rto_ns: sc.rto_us * us,
        rto_policy: RtoPolicy::ExponentialBackoff {
            max_ns: sc.rto_us * us * 8,
        },
        mode: NumericMode::Fixed32,
        scaling_factor: sc.requested_f,
        ..Protocol::default()
    };

    // Tensor slots: global worker index, with the scenario's skip
    // applied (slot s maps to tensor s, or s+1 past the skip).
    let tensor_of = |global: usize| {
        let slot = match sc.tensor_skip {
            Some(skip) if global >= skip => global + 1,
            _ => global,
        };
        scenario_tensor(slot, sc.elems, sc.bound)
    };
    let probe_stream =
        TensorStream::from_f32(&[tensor_of(0)], base.mode, 1.0, sc.k).expect("probe stream");
    let n_chunks = probe_stream.total_chunks();

    let ctrl_cfg = CtrlConfig {
        heartbeat_interval_ns: sc.heartbeat_us * us,
        failure_timeout_ns: sc.timeout_us * us,
        probe_rto_ns: sc.heartbeat_us * us,
        probe_policy: RtoPolicy::ExponentialBackoff {
            max_ns: sc.timeout_us * us,
        },
        probe_limit: 3,
    };
    let mut controller = Controller::new(
        ctrl_cfg,
        (0..sc.n_switches)
            .map(|_| PipelineModel::default())
            .collect(),
    );
    for job in 0..sc.n_jobs {
        controller
            .create_job(job as u8, base.clone(), sc.bound, n_chunks, 0)
            .expect("job admission");
    }

    let mut sim = Simulator::new(
        topo,
        SimConfig {
            seed: sc.seed,
            deadline: Some(Nanos(sc.deadline_ms * 1_000 * us)),
            ..SimConfig::default()
        },
    );
    sim.bind(center, Box::new(switchml_netsim::node::Forwarder));
    sim.bind(
        controller_id,
        Box::new(CtrlControllerNode::new(
            controller,
            Nanos(sc.heartbeat_us * us / 2),
            switch_ids.clone(),
            sc.fail_over.map(|(at, f, t)| (Nanos(at * us), f, t)),
        )),
    );
    for &id in &switch_ids {
        sim.bind(id, Box::new(CtrlSwitchNode::new(PipelineModel::default())));
    }
    for (g, &id) in worker_ids.iter().enumerate() {
        let job = (g / sc.n_workers) as u8;
        let fail_at = match sc.fail_worker {
            Some((victim, at)) if victim == g => Some(Nanos(at * us)),
            _ => None,
        };
        sim.bind(
            id,
            Box::new(CtrlWorkerNode::new(
                job,
                vec![tensor_of(g)],
                base.clone(),
                sc.n_cores,
                controller_id,
                switch_ids.clone(),
                Nanos(sc.heartbeat_us * us),
                fail_at,
            )),
        );
    }

    let report = sim.run();

    let mut results = Vec::new();
    for job in 0..sc.n_jobs {
        let mut per_job = Vec::new();
        for w in 0..sc.n_workers {
            let id = worker_ids[job * sc.n_workers + w];
            let node = sim
                .node(id)
                .as_any()
                .downcast_ref::<CtrlWorkerNode>()
                .expect("worker node");
            per_job.push(node.results());
        }
        results.push(per_job);
    }
    let ctrl_node = sim
        .node(controller_id)
        .as_any()
        .downcast_ref::<CtrlControllerNode>()
        .expect("controller node");
    let ctrl = ctrl_node.controller();
    let mut final_epoch = Vec::new();
    let mut final_n = Vec::new();
    let mut final_f = Vec::new();
    for job in 0..sc.n_jobs as u8 {
        final_epoch.push(ctrl.epoch(job).unwrap_or(0));
        final_n.push(ctrl.alive_count(job).unwrap_or(0));
        final_f.push(ctrl.negotiated_f(job).unwrap_or(0.0));
    }

    CtrlOutcome {
        finished: report.finished,
        results,
        events: ctrl_node.events.clone(),
        final_epoch,
        final_n,
        final_f,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_job_completes_with_exact_sums() {
        let sc = CtrlScenario::default();
        let out = run_ctrl(&sc);
        assert!(out.finished, "events: {:?}", out.events);
        assert_eq!(out.final_epoch[0], 0);
        assert_eq!(out.final_n[0], sc.n_workers);
        // Every worker holds identical aggregates.
        let first = out.results[0][0].as_ref().unwrap();
        for w in 1..sc.n_workers {
            assert_eq!(out.results[0][w].as_ref().unwrap(), first);
        }
        // And they match the quantized elementwise sum exactly.
        let f = out.final_f[0];
        for (i, &got) in first[0].iter().enumerate() {
            let q: i64 = (0..sc.n_workers)
                .map(|w| {
                    switchml_core::quant::fixed::quantize_one(
                        scenario_tensor(w, sc.elems, sc.bound)[i],
                        f,
                    ) as i64
                })
                .sum();
            let expect = (q as f64 / f) as f32;
            assert_eq!(got, expect, "elem {i}");
        }
    }

    #[test]
    fn two_jobs_share_one_switch() {
        let sc = CtrlScenario {
            n_jobs: 2,
            n_workers: 3,
            ..CtrlScenario::default()
        };
        let out = run_ctrl(&sc);
        assert!(out.finished, "events: {:?}", out.events);
        for job in 0..2 {
            let first = out.results[job][0].as_ref().unwrap();
            for w in 1..3 {
                assert_eq!(out.results[job][w].as_ref().unwrap(), first);
            }
        }
        // Jobs see disjoint tensors, so their sums differ.
        assert_ne!(out.results[0][0], out.results[1][0]);
    }

    #[test]
    fn lossy_links_still_converge() {
        let sc = CtrlScenario {
            loss: 0.02,
            seed: 7,
            ..CtrlScenario::default()
        };
        let out = run_ctrl(&sc);
        assert!(out.finished, "events: {:?}", out.events);
        let first = out.results[0][0].as_ref().unwrap();
        for w in 1..sc.n_workers {
            assert_eq!(out.results[0][w].as_ref().unwrap(), first);
        }
    }
}
