//! SwitchML protocol endpoints as netsim nodes.
//!
//! Thin adapters that move bytes between the simulator and the sans-IO
//! state machines in `switchml-core`: decode, checksum-reject corrupted
//! packets, charge host CPU time via [`crate::host::HostModel`], arm
//! retransmission timers, and route updates to the right aggregator
//! (the single ToR switch, a parameter-server shard, or a rack switch
//! in the §6 hierarchy).

use crate::host::HostModel;
use std::any::Any;
use std::collections::HashMap;
use switchml_core::packet::{Packet, PacketKind, SlotIndex, SIM_FRAME_OVERHEAD};
use switchml_core::switch::hierarchy::{HierAction, HierarchicalSwitch};
use switchml_core::switch::reliable::ReliableSwitch;
use switchml_core::switch::{SwitchAction, SwitchStats};
use switchml_core::worker::engine::EngineStats;
use switchml_core::worker::Worker;
use switchml_netsim::prelude::*;

/// Timer-token namespace: high bit selects host-queue release timers,
/// low bits carry the time value.
const HOST_TOKEN_BIT: u64 = 1 << 63;

fn rto_token(deadline_ns: u64) -> TimerToken {
    debug_assert_eq!(deadline_ns & HOST_TOKEN_BIT, 0);
    TimerToken(deadline_ns)
}

fn host_token(release: Nanos) -> TimerToken {
    TimerToken(release.0 | HOST_TOKEN_BIT)
}

fn is_host_token(t: TimerToken) -> bool {
    t.0 & HOST_TOKEN_BIT != 0
}

/// Where a worker sends each update packet.
#[derive(Debug, Clone)]
pub enum SlotRouter {
    /// Everything goes to one aggregator (the ToR switch, or this
    /// worker's rack switch in a hierarchy).
    Single(NodeId),
    /// Parameter-server sharding: `shard_of[slot]` indexes `shards`.
    Sharded {
        shards: Vec<NodeId>,
        shard_of: Vec<usize>,
    },
}

impl SlotRouter {
    fn dest(&self, slot: SlotIndex) -> NodeId {
        match self {
            SlotRouter::Single(id) => *id,
            SlotRouter::Sharded { shards, shard_of } => shards[shard_of[slot as usize]],
        }
    }
}

/// Per-packet RTT sampling (Figure 2's right axis). Retransmitted
/// chunks are excluded, Karn-style, so queueing — not timeout noise —
/// is what the estimate reflects. Keeps a bounded reservoir for
/// percentile queries (tail latency under deep pools).
#[derive(Debug, Default)]
pub struct RttSampler {
    pending: HashMap<SlotIndex, (u64, Nanos)>,
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    /// Every `stride`-th sample, up to [`RTT_RESERVOIR`] entries.
    reservoir: Vec<u64>,
    stride: u64,
}

/// Size of the RTT percentile reservoir.
pub const RTT_RESERVOIR: usize = 4096;

impl RttSampler {
    fn on_send(&mut self, slot: SlotIndex, off: u64, now: Nanos, retx: bool) {
        if retx {
            self.pending.remove(&slot);
        } else {
            self.pending.insert(slot, (off, now));
        }
    }

    fn on_result(&mut self, slot: SlotIndex, off: u64, now: Nanos) {
        if let Some(&(sent_off, sent_at)) = self.pending.get(&slot) {
            if sent_off == off {
                let rtt = (now - sent_at).0;
                self.count += 1;
                self.sum_ns += rtt;
                self.max_ns = self.max_ns.max(rtt);
                if self.stride == 0 {
                    self.stride = 1;
                }
                if self.count.is_multiple_of(self.stride) {
                    if self.reservoir.len() >= RTT_RESERVOIR {
                        // Halve the reservoir, double the stride: keeps
                        // a uniform systematic sample of all RTTs.
                        let kept: Vec<u64> = self.reservoir.iter().step_by(2).copied().collect();
                        self.reservoir = kept;
                        self.stride *= 2;
                    }
                    if self.count.is_multiple_of(self.stride) {
                        self.reservoir.push(rtt);
                    }
                }
                self.pending.remove(&slot);
            }
        }
    }

    /// Mean sampled RTT in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate RTT percentile (0.0–1.0) from the reservoir.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.reservoir.is_empty() {
            return 0;
        }
        let mut v = self.reservoir.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }
}

/// Network-level drop counters kept by protocol nodes.
#[derive(Debug, Default, Clone, Copy)]
pub struct NodeNetStats {
    /// Packets discarded because the checksum (corruption flag) failed.
    pub corrupted: u64,
    /// Packets discarded because they failed to decode.
    pub malformed: u64,
}

/// A SwitchML worker attached to the simulated network.
pub struct SwitchMLWorkerNode {
    worker: Worker,
    router: SlotRouter,
    host: HostModel<Packet>,
    armed_rto: Option<u64>,
    pub rtt: RttSampler,
    pub net_stats: NodeNetStats,
    completed: bool,
}

impl SwitchMLWorkerNode {
    /// `host_cost` is the CPU service time per received result packet
    /// (which covers processing it and emitting the next update); the
    /// worker's engines are spread over `worker.n_cores()` cores.
    pub fn new(worker: Worker, router: SlotRouter, host_cost: Nanos) -> Self {
        let cores = worker.n_cores();
        SwitchMLWorkerNode {
            worker,
            router,
            host: HostModel::new(cores, host_cost),
            armed_rto: None,
            rtt: RttSampler::default(),
            net_stats: NodeNetStats::default(),
            completed: false,
        }
    }

    /// Protocol stats of the inner worker.
    pub fn stats(&self) -> EngineStats {
        self.worker.stats()
    }

    /// The inner worker (results, progress, …).
    pub fn worker(&self) -> &Worker {
        &self.worker
    }

    fn transmit(&mut self, pkt: Packet, ctx: &mut dyn NodeCtx) {
        self.rtt
            .on_send(pkt.idx, pkt.off, ctx.now(), pkt.retransmission);
        let dest = self.router.dest(pkt.idx);
        let bytes = pkt.encode();
        ctx.send(SimPacket::new(
            ctx.self_id(),
            dest,
            bytes,
            SIM_FRAME_OVERHEAD,
        ));
    }

    fn rearm(&mut self, ctx: &mut dyn NodeCtx) {
        if let Some(nd) = self.worker.next_deadline() {
            if self.armed_rto != Some(nd) {
                self.armed_rto = Some(nd);
                let delay = Nanos(nd.saturating_sub(ctx.now().0));
                ctx.set_timer(delay, rto_token(nd));
            }
        }
    }

    fn process_result(&mut self, pkt: Packet, ctx: &mut dyn NodeCtx) {
        let now = ctx.now();
        self.rtt.on_result(pkt.idx, pkt.off, now);
        let followups = self
            .worker
            .on_result(&pkt, now.0)
            .expect("worker rejected a well-formed result: protocol bug");
        for p in followups {
            self.transmit(p, ctx);
        }
        if self.worker.is_done() && !self.completed {
            self.completed = true;
            ctx.complete();
        } else {
            self.rearm(ctx);
        }
    }
}

impl Node for SwitchMLWorkerNode {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        let initial = self.worker.start(ctx.now().0).expect("worker start failed");
        if initial.is_empty() && self.worker.is_done() {
            self.completed = true;
            ctx.complete();
            return;
        }
        for p in initial {
            self.transmit(p, ctx);
        }
        self.rearm(ctx);
    }

    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
        if pkt.corrupted {
            self.net_stats.corrupted += 1;
            return;
        }
        let decoded = match Packet::decode(&pkt.payload) {
            Ok(p) => p,
            Err(_) => {
                self.net_stats.malformed += 1;
                return;
            }
        };
        if self.host.is_instant() {
            self.process_result(decoded, ctx);
        } else {
            let core = self.worker.core_for_slot(decoded.idx).unwrap_or(0);
            let release = self.host.enqueue(ctx.now(), core, decoded);
            ctx.set_timer(release - ctx.now(), host_token(release));
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn NodeCtx) {
        if is_host_token(token) {
            while let Some(pkt) = self.host.pop_due(ctx.now()) {
                self.process_result(pkt, ctx);
            }
            return;
        }
        // Retransmission timer.
        if self.armed_rto == Some(token.0) {
            self.armed_rto = None;
        }
        let now = ctx.now();
        if self.worker.next_deadline().is_some_and(|d| d <= now.0) {
            let retx = self
                .worker
                .expired(now.0)
                .expect("retransmission materialization failed");
            for p in retx {
                self.transmit(p, ctx);
            }
        }
        if !self.completed {
            self.rearm(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The aggregation point: a Tofino switch (`host_cost = 0`) or a
/// software parameter-server shard (`host_cost > 0`, the paper's
/// DPDK program "implement\[ing\] the logic of Algorithm 1").
pub struct SwitchMLSwitchNode {
    switch: ReliableSwitch,
    /// wid → node id of each worker.
    worker_ids: Vec<NodeId>,
    host: HostModel<Packet>,
    pub net_stats: NodeNetStats,
    /// Debug builds audit the switch against the Algorithm 3
    /// reference model on every update.
    #[cfg(debug_assertions)]
    oracle: switchml_core::oracle::ReliableOracle,
}

impl SwitchMLSwitchNode {
    pub fn new(
        switch: ReliableSwitch,
        worker_ids: Vec<NodeId>,
        n_cores: usize,
        host_cost: Nanos,
    ) -> Self {
        SwitchMLSwitchNode {
            #[cfg(debug_assertions)]
            oracle: switchml_core::oracle::ReliableOracle::for_switch(&switch),
            switch,
            worker_ids,
            host: HostModel::new(n_cores, host_cost),
            net_stats: NodeNetStats::default(),
        }
    }

    pub fn stats(&self) -> SwitchStats {
        self.switch.stats()
    }

    fn process(&mut self, pkt: Packet, ctx: &mut dyn NodeCtx) {
        #[cfg(debug_assertions)]
        let audit = (
            pkt.kind == switchml_core::packet::PacketKind::Update,
            pkt.wid,
            pkt.ver,
            pkt.idx,
            pkt.off,
            pkt.payload.clone(),
        );
        let action = self
            .switch
            .on_packet(pkt)
            .expect("switch rejected a packet: protocol bug");
        #[cfg(debug_assertions)]
        if audit.0 {
            let (_, wid, ver, idx, off, payload) = audit;
            if let Err(v) =
                self.oracle
                    .observe_packet(wid, ver, idx, off, &payload, &action, &self.switch)
            {
                panic!("simulated switch violated a protocol invariant: {v}");
            }
        }
        match action {
            SwitchAction::Multicast(result) => {
                let bytes = result.encode();
                for &w in &self.worker_ids {
                    ctx.send(SimPacket::new(
                        ctx.self_id(),
                        w,
                        bytes.clone(),
                        SIM_FRAME_OVERHEAD,
                    ));
                }
            }
            SwitchAction::Unicast(wid, result) => {
                let dest = self.worker_ids[wid as usize];
                ctx.send(SimPacket::new(
                    ctx.self_id(),
                    dest,
                    result.encode(),
                    SIM_FRAME_OVERHEAD,
                ));
            }
            SwitchAction::Drop => {}
        }
    }
}

impl Node for SwitchMLSwitchNode {
    fn on_start(&mut self, _ctx: &mut dyn NodeCtx) {}

    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
        if pkt.corrupted {
            self.net_stats.corrupted += 1;
            return;
        }
        let decoded = match Packet::decode(&pkt.payload) {
            Ok(p) => p,
            Err(_) => {
                self.net_stats.malformed += 1;
                return;
            }
        };
        if self.host.is_instant() {
            self.process(decoded, ctx);
        } else {
            let core = (decoded.idx as usize) % self.host.n_cores();
            let release = self.host.enqueue(ctx.now(), core, decoded);
            ctx.set_timer(release - ctx.now(), host_token(release));
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn NodeCtx) {
        if is_host_token(token) {
            while let Some(pkt) = self.host.pop_due(ctx.now()) {
                self.process(pkt, ctx);
            }
        }
    }

    fn participates_in_completion(&self) -> bool {
        false
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A switch in the §6 multi-rack hierarchy.
pub struct HierSwitchNode {
    switch: HierarchicalSwitch,
    /// Upstream switch (None at the root).
    parent: Option<NodeId>,
    /// Downstream node id per child wid (workers, or child switches).
    children: Vec<NodeId>,
    pub net_stats: NodeNetStats,
}

impl HierSwitchNode {
    pub fn new(switch: HierarchicalSwitch, parent: Option<NodeId>, children: Vec<NodeId>) -> Self {
        HierSwitchNode {
            switch,
            parent,
            children,
            net_stats: NodeNetStats::default(),
        }
    }

    pub fn stats(&self) -> SwitchStats {
        self.switch.stats()
    }

    fn apply(&mut self, actions: Vec<HierAction>, ctx: &mut dyn NodeCtx) {
        for act in actions {
            match act {
                HierAction::SendUp(p) => {
                    let parent = self.parent.expect("SendUp from the root");
                    ctx.send(SimPacket::new(
                        ctx.self_id(),
                        parent,
                        p.encode(),
                        SIM_FRAME_OVERHEAD,
                    ));
                }
                HierAction::MulticastDown(p) => {
                    let bytes = p.encode();
                    for &c in &self.children {
                        ctx.send(SimPacket::new(
                            ctx.self_id(),
                            c,
                            bytes.clone(),
                            SIM_FRAME_OVERHEAD,
                        ));
                    }
                }
                HierAction::UnicastDown(wid, p) => {
                    let dest = self.children[wid as usize];
                    ctx.send(SimPacket::new(
                        ctx.self_id(),
                        dest,
                        p.encode(),
                        SIM_FRAME_OVERHEAD,
                    ));
                }
            }
        }
    }
}

impl Node for HierSwitchNode {
    fn on_start(&mut self, _ctx: &mut dyn NodeCtx) {}

    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
        if pkt.corrupted {
            self.net_stats.corrupted += 1;
            return;
        }
        let decoded = match Packet::decode(&pkt.payload) {
            Ok(p) => p,
            Err(_) => {
                self.net_stats.malformed += 1;
                return;
            }
        };
        let actions = match decoded.kind {
            PacketKind::Update => self
                .switch
                .on_update_from_below(decoded)
                .expect("hierarchical switch rejected an update"),
            PacketKind::Result => self
                .switch
                .on_result_from_above(decoded)
                .expect("hierarchical switch rejected a result"),
        };
        self.apply(actions, ctx);
    }

    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn NodeCtx) {}

    fn participates_in_completion(&self) -> bool {
        false
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchml_core::config::Protocol;
    use switchml_core::packet::PoolVersion;
    use switchml_core::worker::stream::TensorStream;

    #[test]
    fn rtt_sampler_excludes_retransmissions() {
        let mut r = RttSampler::default();
        // Normal sample: send at 100, result at 150 → RTT 50.
        r.on_send(0, 0, Nanos(100), false);
        r.on_result(0, 0, Nanos(150));
        assert_eq!(r.count, 1);
        assert_eq!(r.mean_ns(), 50.0);
        // Retransmitted chunk: Karn's rule voids the sample.
        r.on_send(1, 32, Nanos(200), false);
        r.on_send(1, 32, Nanos(300), true); // retx invalidates
        r.on_result(1, 32, Nanos(320));
        assert_eq!(r.count, 1, "retransmitted chunk must not be sampled");
        // Off mismatch (stale result) is not sampled either.
        r.on_send(2, 64, Nanos(400), false);
        r.on_result(2, 0, Nanos(450));
        assert_eq!(r.count, 1);
        assert_eq!(r.max_ns, 50);
    }

    #[test]
    fn slot_router_dispatch() {
        let single = SlotRouter::Single(NodeId(7));
        assert_eq!(single.dest(0), NodeId(7));
        assert_eq!(single.dest(999), NodeId(7));
        let sharded = SlotRouter::Sharded {
            shards: vec![NodeId(1), NodeId(2)],
            shard_of: vec![0, 0, 1, 1],
        };
        assert_eq!(sharded.dest(0), NodeId(1));
        assert_eq!(sharded.dest(3), NodeId(2));
    }

    #[test]
    fn corrupted_packets_counted_and_dropped() {
        // Corruption (failed checksum) and undecodable bytes are
        // counted and discarded without touching protocol state.
        let proto = Protocol {
            n_workers: 1,
            k: 2,
            pool_size: 1,
            scaling_factor: 10.0,
            ..Protocol::default()
        };
        let stream = TensorStream::from_f32(&[vec![1.0, 2.0]], proto.mode, 10.0, proto.k).unwrap();
        let worker = switchml_core::worker::Worker::new(0, &proto, stream).unwrap();
        let mut node = SwitchMLWorkerNode::new(worker, SlotRouter::Single(NodeId(0)), Nanos::ZERO);

        struct NullCtx;
        impl NodeCtx for NullCtx {
            fn now(&self) -> Nanos {
                Nanos::ZERO
            }
            fn self_id(&self) -> NodeId {
                NodeId(1)
            }
            fn send(&mut self, _: SimPacket) {}
            fn set_timer(&mut self, _: Nanos, _: TimerToken) {}
            fn complete(&mut self) {}
        }

        let result = Packet {
            kind: PacketKind::Result,
            wid: 0,
            ver: PoolVersion::V0,
            idx: 0,
            off: 0,
            job: 0,
            epoch: 0,
            retransmission: false,
            payload: switchml_core::packet::Payload::I32(vec![0, 0]),
        };
        let mut corrupt = SimPacket::new(NodeId(0), NodeId(1), result.encode(), SIM_FRAME_OVERHEAD);
        corrupt.corrupted = true;
        node.on_packet(corrupt, &mut NullCtx);
        assert_eq!(node.net_stats.corrupted, 1);

        let garbage = SimPacket::new(
            NodeId(0),
            NodeId(1),
            bytes::Bytes::from_static(b"not a packet"),
            0,
        );
        node.on_packet(garbage, &mut NullCtx);
        assert_eq!(node.net_stats.malformed, 1);
        assert_eq!(node.stats().results, 0);
    }
}
