//! Analytic communication-cost model (§2.3) and line-rate bounds.
//!
//! The paper's Figures 4, 7, and 8 plot "highest theoretically
//! achievable rate based on the maximum goodput, given the line rate,
//! for a given packet payload size and communication strategy"; these
//! are those formulas.

use crate::msg::{BASELINE_FRAME_OVERHEAD, MTU_ELEMS};
use switchml_core::packet::wire_bytes;

/// Bytes each worker sends (= receives) for an in-network aggregation
/// of a `u_bytes` update: `2|U|` (§2.3 counts up + down).
pub fn switchml_volume_bytes(u_bytes: u64) -> u64 {
    2 * u_bytes
}

/// Bytes each worker sends + receives for bandwidth-optimal ring
/// all-reduce: `4(n−1)|U|/n` (§2.3).
pub fn ring_volume_bytes(u_bytes: u64, n: usize) -> u64 {
    4 * (n as u64 - 1) * u_bytes / n as u64
}

/// Goodput fraction of a SwitchML packet carrying `k` 32-bit elements
/// (at k = 32: 128/180 ≈ 71.1%, i.e. the paper's 28.9% header
/// overhead; at MTU k = 366: 96.6%).
pub fn switchml_goodput_frac(k: usize) -> f64 {
    (4 * k) as f64 / wire_bytes(k) as f64
}

/// Goodput fraction of an MTU-sized baseline (TCP) packet.
pub fn baseline_goodput_frac() -> f64 {
    let payload = 4 * MTU_ELEMS;
    let header = BASELINE_FRAME_OVERHEAD + 17; // chunk header bytes
    payload as f64 / (payload + header) as f64
}

/// Aggregated tensor elements per second at line rate for SwitchML:
/// every element crosses each worker's downlink exactly once, 4 bytes
/// inside packets of `switchml_goodput_frac(k)` goodput.
pub fn switchml_line_rate_ate(bandwidth_bps: u64, k: usize) -> f64 {
    bandwidth_bps as f64 * switchml_goodput_frac(k) / (8.0 * 4.0)
}

/// Tensor aggregation time lower bound for SwitchML at line rate.
pub fn switchml_line_rate_tat_ns(bandwidth_bps: u64, k: usize, elems: usize) -> f64 {
    elems as f64 / switchml_line_rate_ate(bandwidth_bps, k) * 1e9
}

/// ATE/s at line rate for ring all-reduce: each worker moves
/// `2(n−1)/n · E` elements per direction, so finishing `E` elements
/// takes `2(n−1)/n` times as long as streaming them once.
pub fn ring_line_rate_ate(bandwidth_bps: u64, n: usize) -> f64 {
    let per_elem_factor = 2.0 * (n as f64 - 1.0) / n as f64;
    bandwidth_bps as f64 * baseline_goodput_frac() / (8.0 * 4.0 * per_elem_factor)
}

/// TAT lower bound for ring all-reduce at line rate.
pub fn ring_line_rate_tat_ns(bandwidth_bps: u64, n: usize, elems: usize) -> f64 {
    elems as f64 / ring_line_rate_ate(bandwidth_bps, n) * 1e9
}

/// ATE/s at line rate for a dedicated parameter server exchanging
/// SwitchML-format packets of `k` elements: the worker link carries
/// each element once per direction — same bound as SwitchML.
pub fn dedicated_ps_line_rate_ate(bandwidth_bps: u64, k: usize) -> f64 {
    switchml_line_rate_ate(bandwidth_bps, k)
}

/// ATE/s bound for the colocated PS: the machine's link carries both
/// the worker's own update/result stream and the shard's aggregation
/// traffic, halving the achievable rate.
pub fn colocated_ps_line_rate_ate(bandwidth_bps: u64, k: usize) -> f64 {
    switchml_line_rate_ate(bandwidth_bps, k) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_header_overhead() {
        // §5.5: 28.9% overhead at k = 32, 3.4% at MTU size.
        assert!((1.0 - switchml_goodput_frac(32) - 0.289).abs() < 0.001);
        assert!((1.0 - switchml_goodput_frac(366) - 0.034).abs() < 0.001);
    }

    #[test]
    fn volumes_match_section_2_3() {
        let u = 100_000_000; // 100 MB
        assert_eq!(switchml_volume_bytes(u), 200_000_000);
        assert_eq!(ring_volume_bytes(u, 8), 350_000_000);
        // In-network aggregation always moves less than ring for n > 2.
        for n in 3..=64 {
            assert!(switchml_volume_bytes(u) < ring_volume_bytes(u, n));
        }
        // And exactly the same at n = 2.
        assert_eq!(switchml_volume_bytes(u), ring_volume_bytes(u, 2));
    }

    #[test]
    fn line_rates_at_10g() {
        // SwitchML at 10 Gbps, k=32: 10e9 × 0.711 / 32 ≈ 222 M elem/s
        // (the "ATE/s at line rate" line in Figure 4 top).
        let ate = switchml_line_rate_ate(10_000_000_000, 32);
        assert!((ate - 222.2e6).abs() < 1e6, "{ate}");
        // Ring at 8 workers lands near 174 M elem/s.
        let ring = ring_line_rate_ate(10_000_000_000, 8);
        assert!(ring < ate && ring > 150e6, "{ring}");
        // Colocated PS is half of SwitchML's bound.
        assert!((colocated_ps_line_rate_ate(10_000_000_000, 32) * 2.0 - ate).abs() < 1.0);
    }

    #[test]
    fn tat_scales_linearly_with_tensor() {
        let t1 = switchml_line_rate_tat_ns(10_000_000_000, 32, 1_000_000);
        let t2 = switchml_line_rate_tat_ns(10_000_000_000, 32, 2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mtu_packets_improve_tat_by_a_third() {
        // §5.5: MTU-sized packets would "improve TAT by 31.6%": the
        // goodput ratio 0.966/0.711 ≈ 1.36 → TAT shrinks by ~27%...
        // measured against the paper's statement the gain is in the
        // 25–35% band.
        let small = switchml_line_rate_tat_ns(100_000_000_000, 32, 10_000_000);
        let mtu = switchml_line_rate_tat_ns(100_000_000_000, 366, 10_000_000);
        let gain = 1.0 - mtu / small;
        assert!((0.2..0.4).contains(&gain), "gain {gain}");
    }
}
