//! Halving-and-doubling all-reduce (§2.1's other classic algorithm,
//! Thakur et al. \[57\]).
//!
//! Recursive vector halving with distance doubling for the
//! reduce-scatter phase, then the mirror-image recursive doubling
//! all-gather: `log₂ n` steps per phase, each exchanging half the
//! remaining range with partner `rank ⊕ 2^t`. Requires a power-of-two
//! worker count. Latency-optimal in step count (2·log₂ n vs. ring's
//! 2(n−1)) at the cost of non-uniform (tree) traffic through the
//! switch.
//!
//! This baseline has no loss recovery — it is used on lossless
//! configurations only (the loss experiments compare SwitchML against
//! the ring baselines, as the paper does).

use crate::host::HostModel;
use crate::msg::{BaselineMsg, BASELINE_FRAME_OVERHEAD, MTU_ELEMS};
use std::any::Any;
use std::collections::HashMap;
use switchml_netsim::prelude::*;

const HOST_TOKEN_BIT: u64 = 1 << 63;

/// Configuration for one halving-doubling participant.
#[derive(Debug, Clone)]
pub struct HdParams {
    pub rank: usize,
    pub n: usize,
    pub elems: usize,
    pub mtu_elems: usize,
    pub host_cost: Nanos,
}

impl HdParams {
    pub fn new(rank: usize, n: usize, elems: usize) -> Self {
        assert!(n.is_power_of_two(), "halving-doubling needs 2^k workers");
        HdParams {
            rank,
            n,
            elems,
            mtu_elems: MTU_ELEMS,
            host_cost: Nanos(4_000),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct StepPlan {
    partner: usize,
    /// Element range transmitted at this step.
    send: (usize, usize),
    /// Element range received at this step.
    recv: (usize, usize),
    /// Whether received values are added (reduce-scatter) or copied
    /// (all-gather).
    reduce: bool,
}

/// One halving-doubling all-reduce participant.
pub struct HdNode {
    p: HdParams,
    /// Node id per rank.
    peers: Vec<NodeId>,
    data: Vec<f32>,
    plan: Vec<StepPlan>,
    send_step: usize,
    done_recv: usize,
    recv_seen: Vec<bool>,
    recv_count: usize,
    future: HashMap<u32, Vec<(u32, Vec<f32>)>>,
    host: HostModel<SimPacket>,
    completed: bool,
    pub pkts_sent: u64,
}

impl HdNode {
    pub fn new(p: HdParams, data: Vec<f32>, peers: Vec<NodeId>) -> Self {
        assert_eq!(data.len(), p.elems);
        assert_eq!(peers.len(), p.n);
        let plan = Self::plan(&p);
        let host = HostModel::new(1, p.host_cost);
        let mut node = HdNode {
            p,
            peers,
            data,
            plan,
            send_step: 0,
            done_recv: 0,
            recv_seen: Vec::new(),
            recv_count: 0,
            future: HashMap::new(),
            host,
            completed: false,
            pkts_sent: 0,
        };
        node.begin_recv_step();
        node
    }

    fn plan(p: &HdParams) -> Vec<StepPlan> {
        let levels = p.n.trailing_zeros() as usize;
        // Range after each reduce-scatter step.
        let mut ranges = vec![(0usize, p.elems)];
        let mut plan = Vec::with_capacity(2 * levels);
        for t in 0..levels {
            let (lo, hi) = *ranges.last().expect("non-empty");
            let mid = lo + (hi - lo) / 2;
            let partner = p.rank ^ (1 << t);
            let keep_low = p.rank & (1 << t) == 0;
            let (keep, give) = if keep_low {
                ((lo, mid), (mid, hi))
            } else {
                ((mid, hi), (lo, mid))
            };
            plan.push(StepPlan {
                partner,
                send: give,
                recv: keep,
                reduce: true,
            });
            ranges.push(keep);
        }
        // All-gather mirrors the halving in reverse.
        for t in (0..levels).rev() {
            let partner = p.rank ^ (1 << t);
            let mine = ranges[t + 1];
            let outer = ranges[t];
            let other = if mine.0 == outer.0 {
                (mine.1, outer.1)
            } else {
                (outer.0, mine.0)
            };
            plan.push(StepPlan {
                partner,
                send: mine,
                recv: other,
                reduce: false,
            });
            ranges[t + 1] = outer; // conceptual; ranges not reused after
        }
        plan
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn is_complete(&self) -> bool {
        self.completed
    }

    fn nseq(&self, range: (usize, usize)) -> usize {
        (range.1 - range.0).div_ceil(self.p.mtu_elems).max(1)
    }

    fn begin_recv_step(&mut self) {
        if self.done_recv < self.plan.len() {
            let nseq = self.nseq(self.plan[self.done_recv].recv);
            self.recv_seen = vec![false; nseq];
            self.recv_count = 0;
        }
    }

    fn send_range(&mut self, step: usize, ctx: &mut dyn NodeCtx) {
        let plan = self.plan[step];
        let (lo, hi) = plan.send;
        let nseq = self.nseq(plan.send);
        let dest = self.peers[plan.partner];
        for seq in 0..nseq {
            let a = lo + seq * self.p.mtu_elems;
            let b = (a + self.p.mtu_elems).min(hi);
            let msg = BaselineMsg::Chunk {
                step: step as u32,
                src: self.p.rank as u16,
                seq: seq as u32,
                nseq: nseq as u32,
                elems: self.data[a..b].to_vec(),
            };
            self.pkts_sent += 1;
            let pkt = SimPacket::new(ctx.self_id(), dest, msg.encode(), BASELINE_FRAME_OVERHEAD);
            if self.host.is_instant() {
                ctx.send(pkt);
            } else {
                let release = self.host.enqueue(ctx.now(), 0, pkt);
                ctx.set_timer(release - ctx.now(), TimerToken(release.0 | HOST_TOKEN_BIT));
            }
        }
    }

    fn apply_chunk(&mut self, seq: usize, elems: &[f32]) {
        let plan = self.plan[self.done_recv];
        let (lo, hi) = plan.recv;
        if self.recv_seen.get(seq).copied().unwrap_or(true) {
            return;
        }
        let a = lo + seq * self.p.mtu_elems;
        for (i, &x) in elems.iter().enumerate() {
            let at = a + i;
            if at < hi {
                if plan.reduce {
                    self.data[at] += x;
                } else {
                    self.data[at] = x;
                }
            }
        }
        self.recv_seen[seq] = true;
        self.recv_count += 1;
    }

    fn advance(&mut self, ctx: &mut dyn NodeCtx) {
        loop {
            if self.done_recv >= self.plan.len() || self.recv_count < self.recv_seen.len() {
                break;
            }
            self.done_recv += 1;
            if self.send_step == self.done_recv && self.send_step < self.plan.len() {
                let s = self.send_step;
                self.send_range(s, ctx);
                self.send_step += 1;
            }
            self.begin_recv_step();
            if let Some(buf) = self.future.remove(&(self.done_recv as u32)) {
                for (seq, elems) in buf {
                    self.apply_chunk(seq as usize, &elems);
                }
            }
        }
        if self.done_recv >= self.plan.len() && !self.completed {
            self.completed = true;
            ctx.complete();
        }
    }
}

impl Node for HdNode {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        if self.plan.is_empty() {
            self.completed = true;
            ctx.complete();
            return;
        }
        self.send_range(0, ctx);
        self.send_step = 1;
    }

    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
        if pkt.corrupted {
            return;
        }
        let msg = match BaselineMsg::decode(&pkt.payload) {
            Ok(m) => m,
            Err(_) => return,
        };
        if let BaselineMsg::Chunk {
            step, seq, elems, ..
        } = msg
        {
            let step = step as usize;
            if step < self.done_recv {
                return;
            }
            if step > self.done_recv {
                self.future
                    .entry(step as u32)
                    .or_default()
                    .push((seq, elems));
                return;
            }
            self.apply_chunk(seq as usize, &elems);
            self.advance(ctx);
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn NodeCtx) {
        if token.0 & HOST_TOKEN_BIT != 0 {
            while let Some(pkt) = self.host.pop_due(ctx.now()) {
                ctx.send(pkt);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partner_symmetry() {
        // If rank a exchanges with b at step t, then b exchanges with
        // a, and a's send range is b's recv range.
        let n = 8;
        let e = 800;
        let plans: Vec<Vec<StepPlan>> = (0..n)
            .map(|r| HdNode::plan(&HdParams::new(r, n, e)))
            .collect();
        #[allow(clippy::needless_range_loop)] // double-indexing via computed partners
        for t in 0..plans[0].len() {
            for a in 0..n {
                let b = plans[a][t].partner;
                assert_eq!(plans[b][t].partner, a);
                assert_eq!(plans[a][t].send, plans[b][t].recv, "a={a} t={t}");
            }
        }
    }

    #[test]
    fn plan_halves_then_doubles() {
        let p = HdParams::new(3, 8, 640);
        let plan = HdNode::plan(&p);
        assert_eq!(plan.len(), 6);
        let sizes: Vec<usize> = plan.iter().map(|s| s.send.1 - s.send.0).collect();
        assert_eq!(sizes, vec![320, 160, 80, 80, 160, 320]);
        assert!(plan[..3].iter().all(|s| s.reduce));
        assert!(plan[3..].iter().all(|s| !s.reduce));
    }

    #[test]
    fn total_volume_matches_theory() {
        // Each node sends E(n-1)/n elements per phase; 2E(n-1)/n total.
        let n = 4;
        let e = 400;
        let plan = HdNode::plan(&HdParams::new(0, n, e));
        let sent: usize = plan.iter().map(|s| s.send.1 - s.send.0).sum();
        assert_eq!(sent, 2 * e * (n - 1) / n);
    }

    #[test]
    #[should_panic(expected = "2^k workers")]
    fn non_power_of_two_rejected() {
        HdParams::new(0, 6, 100);
    }
}
