//! End-host processing model.
//!
//! The paper's performance story hinges on *per-packet host cost*: a
//! DPDK worker core sustains ~10 Gbps of 180-byte SwitchML packets,
//! Gloo/NCCL over kernel TCP pay microseconds per MTU packet, and the
//! 100 Gbps runs are host-bound ("our results at 100 Gbps are a lower
//! bound" with 4 cores). [`HostModel`] captures exactly that: each
//! received packet occupies one core for a fixed service time before
//! the protocol logic runs; work is spread over `n_cores` (the paper's
//! Flow Director sharding), and anything not yet due waits in a queue.
//!
//! Generic over the queued item so the SwitchML nodes queue decoded
//! [`switchml_core::packet::Packet`]s and the baseline collectives
//! queue their own messages.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use switchml_netsim::time::Nanos;

struct Pending<T> {
    release: Nanos,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.release, self.seq) == (other.release, other.seq)
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.release, self.seq).cmp(&(other.release, other.seq))
    }
}

/// Per-packet CPU service with `n_cores` parallel servers.
pub struct HostModel<T> {
    cost: Nanos,
    cores: Vec<Nanos>,
    queue: BinaryHeap<Reverse<Pending<T>>>,
    seq: u64,
}

impl<T> HostModel<T> {
    /// `cost` is the CPU time one packet occupies on its core; zero
    /// models hardware (ASIC) processing with no host involvement.
    pub fn new(n_cores: usize, cost: Nanos) -> Self {
        assert!(n_cores > 0, "need at least one core");
        HostModel {
            cost,
            cores: vec![Nanos::ZERO; n_cores],
            queue: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// True when processing is free (items should bypass the queue).
    pub fn is_instant(&self) -> bool {
        self.cost == Nanos::ZERO
    }

    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Queue an item on `core` (dispatch is the caller's policy —
    /// slot-based for workers, any-core for round-robin). Returns the
    /// time the item will be ready to process.
    pub fn enqueue(&mut self, now: Nanos, core: usize, item: T) -> Nanos {
        let core = core % self.cores.len();
        let start = self.cores[core].max(now);
        let release = start + self.cost;
        self.cores[core] = release;
        self.seq += 1;
        self.queue.push(Reverse(Pending {
            release,
            seq: self.seq,
            item,
        }));
        release
    }

    /// Pop the next item whose service completed by `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<T> {
        if self.queue.peek().is_some_and(|Reverse(p)| p.release <= now) {
            self.queue.pop().map(|Reverse(p)| p.item)
        } else {
            None
        }
    }

    /// When the earliest queued item becomes due.
    pub fn next_release(&self) -> Option<Nanos> {
        self.queue.peek().map(|Reverse(p)| p.release)
    }

    pub fn backlog(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_serializes() {
        let mut h: HostModel<u32> = HostModel::new(1, Nanos(100));
        assert_eq!(h.enqueue(Nanos(0), 0, 1), Nanos(100));
        assert_eq!(h.enqueue(Nanos(0), 0, 2), Nanos(200));
        assert_eq!(h.enqueue(Nanos(500), 0, 3), Nanos(600)); // idle gap
        assert_eq!(h.pop_due(Nanos(99)), None);
        assert_eq!(h.pop_due(Nanos(100)), Some(1));
        assert_eq!(h.next_release(), Some(Nanos(200)));
    }

    #[test]
    fn cores_work_in_parallel() {
        let mut h: HostModel<u32> = HostModel::new(4, Nanos(100));
        for i in 0..4 {
            assert_eq!(h.enqueue(Nanos(0), i as usize, i), Nanos(100));
        }
        // A fifth packet on core 0 waits behind the first.
        assert_eq!(h.enqueue(Nanos(0), 0, 9), Nanos(200));
        assert_eq!(h.backlog(), 5);
    }

    #[test]
    fn core_index_wraps() {
        let mut h: HostModel<u32> = HostModel::new(2, Nanos(10));
        assert_eq!(h.enqueue(Nanos(0), 5, 7), Nanos(10)); // 5 % 2 = core 1
        assert_eq!(h.enqueue(Nanos(0), 1, 8), Nanos(20));
    }

    #[test]
    fn instant_model() {
        let h: HostModel<u32> = HostModel::new(1, Nanos::ZERO);
        assert!(h.is_instant());
    }

    #[test]
    fn fifo_within_same_release() {
        let mut h: HostModel<u32> = HostModel::new(2, Nanos(50));
        h.enqueue(Nanos(0), 0, 1);
        h.enqueue(Nanos(0), 1, 2);
        assert_eq!(h.pop_due(Nanos(50)), Some(1));
        assert_eq!(h.pop_due(Nanos(50)), Some(2));
        assert_eq!(h.pop_due(Nanos(50)), None);
    }
}
