//! Ring all-reduce (the Gloo/NCCL-style baseline, §2.1).
//!
//! Bandwidth-optimal ring: `n-1` reduce-scatter steps followed by
//! `n-1` all-gather steps; each step moves one `E/n`-element segment
//! to the ring successor, so each worker sends and receives
//! `4(n-1)·E/n` elements total — the `4(n−1)|U|/n` communication cost
//! the paper contrasts with SwitchML's `2|U|` (§2.3).
//!
//! Reliability is receiver-driven and calibrated to TCP's behaviour
//! (the paper runs Gloo/NCCL over TCP): a sequence gap triggers a NACK
//! after `fast_retx_gap` later packets (fast retransmit, ~RTT
//! recovery), and a stalled step recovers only at `stall_rto` — the
//! TCP retransmission timeout, 200 ms by default on Linux — which is
//! what makes the baselines' tensor aggregation time balloon under
//! loss (Figure 5).

use crate::host::HostModel;
use crate::msg::{BaselineMsg, BASELINE_FRAME_OVERHEAD, MAX_NACK_ENTRIES, MTU_ELEMS};
use std::any::Any;
use std::collections::HashMap;
use switchml_netsim::prelude::*;

/// Timer tokens: stall RTO at bit 61, host-release at bit 63.
const HOST_TOKEN_BIT: u64 = 1 << 63;
const STALL_TOKEN_BIT: u64 = 1 << 61;

/// Configuration for one ring participant.
#[derive(Debug, Clone)]
pub struct RingParams {
    pub rank: usize,
    pub n: usize,
    /// Total tensor elements `E`.
    pub elems: usize,
    /// Elements per packet (MTU-sized by default).
    pub mtu_elems: usize,
    /// Per-packet host CPU cost (TCP stack + copies). This is what
    /// separates "Gloo" from "NCCL" profiles in the evaluation.
    pub host_cost: Nanos,
    /// Stall-recovery timeout (TCP RTO).
    pub stall_rto: Nanos,
    /// Packets of reordering tolerated before a NACK (fast
    /// retransmit's 3-dup-ack analog).
    pub fast_retx_gap: u32,
    /// Minimum spacing between gap-triggered NACKs for one step.
    pub nack_cooldown: Nanos,
}

impl RingParams {
    pub fn new(rank: usize, n: usize, elems: usize) -> Self {
        RingParams {
            rank,
            n,
            elems,
            mtu_elems: MTU_ELEMS,
            host_cost: Nanos(4_000),
            stall_rto: Nanos::from_millis(200),
            fast_retx_gap: 3,
            nack_cooldown: Nanos::from_micros(100),
        }
    }
}

/// Counters for the evaluation harness.
#[derive(Debug, Default, Clone, Copy)]
pub struct RingStats {
    pub pkts_sent: u64,
    pub retx_sent: u64,
    pub nacks_sent: u64,
    pub nacks_received: u64,
}

/// One ring all-reduce participant.
pub struct RingNode {
    p: RingParams,
    succ: NodeId,
    pred: NodeId,
    data: Vec<f32>,
    /// Element range of each of the n segments.
    bounds: Vec<(usize, usize)>,
    total_steps: usize,
    /// Next step whose segment we have yet to send.
    send_step: usize,
    /// Fully received steps so far (also: index of the step currently
    /// being received).
    done_recv: usize,
    recv_seen: Vec<bool>,
    recv_count: usize,
    next_expected: usize,
    /// Packets for future steps, buffered until we get there.
    future: HashMap<u32, Vec<(u32, Vec<f32>)>>,
    /// Reduce-scatter segment values stashed when the all-gather
    /// overwrite lands, so late NACKs can still be served faithfully.
    history: HashMap<u32, Vec<f32>>,
    host: HostModel<SimPacket>,
    last_nack: Nanos,
    completed: bool,
    pub stats: RingStats,
}

impl RingNode {
    /// `data` is this rank's input tensor (length `p.elems`).
    pub fn new(p: RingParams, data: Vec<f32>, pred: NodeId, succ: NodeId) -> Self {
        assert_eq!(data.len(), p.elems);
        assert!(p.n >= 1 && p.rank < p.n);
        let n = p.n;
        let bounds: Vec<(usize, usize)> = (0..n)
            .map(|j| (j * p.elems / n, (j + 1) * p.elems / n))
            .collect();
        let total_steps = 2 * (n.saturating_sub(1));
        let host = HostModel::new(1, p.host_cost);
        RingNode {
            p,
            succ,
            pred,
            data,
            bounds,
            total_steps,
            send_step: 0,
            done_recv: 0,
            recv_seen: Vec::new(),
            recv_count: 0,
            next_expected: 0,
            future: HashMap::new(),
            history: HashMap::new(),
            host,
            last_nack: Nanos::ZERO,
            completed: false,
            stats: RingStats::default(),
        }
    }

    /// The (eventually aggregated) tensor.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn is_complete(&self) -> bool {
        self.completed
    }

    /// Segment this rank transmits at `step`.
    fn send_seg(&self, step: usize) -> usize {
        (self.p.rank as i64 - step as i64).rem_euclid(self.p.n as i64) as usize
    }

    /// Segment this rank receives at `step`.
    fn recv_seg(&self, step: usize) -> usize {
        (self.p.rank as i64 - 1 - step as i64).rem_euclid(self.p.n as i64) as usize
    }

    fn seg_nseq(&self, seg: usize) -> usize {
        let (lo, hi) = self.bounds[seg];
        (hi - lo).div_ceil(self.p.mtu_elems).max(1)
    }

    fn dispatch(&mut self, msg: BaselineMsg, dest: NodeId, ctx: &mut dyn NodeCtx) {
        let pkt = SimPacket::new(ctx.self_id(), dest, msg.encode(), BASELINE_FRAME_OVERHEAD);
        if self.host.is_instant() {
            ctx.send(pkt);
        } else {
            let release = self.host.enqueue(ctx.now(), 0, pkt);
            ctx.set_timer(release - ctx.now(), TimerToken(release.0 | HOST_TOKEN_BIT));
        }
    }

    fn send_packet_of(&mut self, step: usize, seq: usize, ctx: &mut dyn NodeCtx, retx: bool) {
        let seg = self.send_seg(step);
        let (lo, hi) = self.bounds[seg];
        let nseq = self.seg_nseq(seg);
        let a = lo + seq * self.p.mtu_elems;
        let b = (a + self.p.mtu_elems).min(hi);
        let elems = if let Some(hist) = self.history.get(&(step as u32)) {
            let ha = seq * self.p.mtu_elems;
            let hb = (ha + self.p.mtu_elems).min(hist.len());
            hist[ha..hb].to_vec()
        } else {
            self.data[a..b].to_vec()
        };
        let msg = BaselineMsg::Chunk {
            step: step as u32,
            src: self.p.rank as u16,
            seq: seq as u32,
            nseq: nseq as u32,
            elems,
        };
        if retx {
            self.stats.retx_sent += 1;
        } else {
            self.stats.pkts_sent += 1;
        }
        let succ = self.succ;
        self.dispatch(msg, succ, ctx);
    }

    fn send_segment(&mut self, step: usize, ctx: &mut dyn NodeCtx) {
        let nseq = self.seg_nseq(self.send_seg(step));
        for seq in 0..nseq {
            self.send_packet_of(step, seq, ctx, false);
        }
    }

    fn begin_recv_step(&mut self) {
        if self.done_recv < self.total_steps {
            let seg = self.recv_seg(self.done_recv);
            let nseq = self.seg_nseq(seg);
            self.recv_seen = vec![false; nseq];
            self.recv_count = 0;
            self.next_expected = 0;
            // An all-gather receive will overwrite the segment we sent
            // at step t−(n−1); preserve those values for late NACKs.
            if self.done_recv >= self.p.n - 1 {
                let stash_step = (self.done_recv + 1 - self.p.n) as u32;
                let (lo, hi) = self.bounds[seg];
                self.history.insert(stash_step, self.data[lo..hi].to_vec());
            }
        }
    }

    fn apply_chunk(&mut self, seq: usize, elems: &[f32]) {
        let step = self.done_recv;
        let seg = self.recv_seg(step);
        let (lo, hi) = self.bounds[seg];
        let a = lo + seq * self.p.mtu_elems;
        if self.recv_seen.get(seq).copied().unwrap_or(true) {
            return; // duplicate or out-of-range
        }
        let reduce = step < self.p.n - 1;
        for (i, &x) in elems.iter().enumerate() {
            let at = a + i;
            if at < hi {
                if reduce {
                    self.data[at] += x;
                } else {
                    self.data[at] = x;
                }
            }
        }
        self.recv_seen[seq] = true;
        self.recv_count += 1;
        while self.next_expected < self.recv_seen.len() && self.recv_seen[self.next_expected] {
            self.next_expected += 1;
        }
    }

    fn maybe_fast_nack(&mut self, seq: usize, ctx: &mut dyn NodeCtx) {
        if self.next_expected >= self.recv_seen.len() {
            return;
        }
        if seq < self.next_expected + self.p.fast_retx_gap as usize {
            return;
        }
        let now = ctx.now();
        if now.saturating_sub(self.last_nack) < self.p.nack_cooldown
            && self.last_nack != Nanos::ZERO
        {
            return;
        }
        self.last_nack = now;
        self.send_nack(ctx);
    }

    fn send_nack(&mut self, ctx: &mut dyn NodeCtx) {
        let missing: Vec<u32> = self
            .recv_seen
            .iter()
            .enumerate()
            .filter(|(_, &seen)| !seen)
            .map(|(i, _)| i as u32)
            .take(MAX_NACK_ENTRIES)
            .collect();
        if missing.is_empty() {
            return;
        }
        self.stats.nacks_sent += 1;
        let msg = BaselineMsg::Nack {
            step: self.done_recv as u32,
            src: self.p.rank as u16,
            missing,
        };
        let pred = self.pred;
        self.dispatch(msg, pred, ctx);
    }

    fn arm_stall(&mut self, ctx: &mut dyn NodeCtx) {
        if !self.completed && self.done_recv < self.total_steps {
            ctx.set_timer(
                self.p.stall_rto,
                TimerToken((ctx.now() + self.p.stall_rto).0 | STALL_TOKEN_BIT),
            );
        }
    }

    fn advance(&mut self, ctx: &mut dyn NodeCtx) {
        // Finish as many steps as buffered data allows.
        loop {
            if self.done_recv >= self.total_steps {
                break;
            }
            if self.recv_count < self.recv_seen.len() {
                break;
            }
            self.done_recv += 1;
            // Receiving step t unblocks sending step t+1.
            if self.send_step == self.done_recv && self.send_step < self.total_steps {
                let s = self.send_step;
                self.send_segment(s, ctx);
                self.send_step += 1;
            }
            self.begin_recv_step();
            // Drain any buffered packets for the new step.
            if let Some(buf) = self.future.remove(&(self.done_recv as u32)) {
                for (seq, elems) in buf {
                    self.apply_chunk(seq as usize, &elems);
                }
            }
        }
        if self.done_recv >= self.total_steps && !self.completed {
            self.completed = true;
            ctx.complete();
        }
    }
}

impl Node for RingNode {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        if self.total_steps == 0 {
            self.completed = true;
            ctx.complete();
            return;
        }
        self.begin_recv_step();
        self.send_segment(0, ctx);
        self.send_step = 1;
        self.arm_stall(ctx);
    }

    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
        if pkt.corrupted {
            return;
        }
        let msg = match BaselineMsg::decode(&pkt.payload) {
            Ok(m) => m,
            Err(_) => return,
        };
        match msg {
            BaselineMsg::Chunk {
                step, seq, elems, ..
            } => {
                let step = step as usize;
                if step < self.done_recv {
                    return; // stale duplicate
                }
                if step > self.done_recv {
                    self.future
                        .entry(step as u32)
                        .or_default()
                        .push((seq, elems));
                    return;
                }
                self.apply_chunk(seq as usize, &elems);
                self.maybe_fast_nack(seq as usize, ctx);
                self.advance(ctx);
            }
            BaselineMsg::Nack { step, missing, .. } => {
                self.stats.nacks_received += 1;
                let step = step as usize;
                // Only steps we have already sent can be retransmitted.
                if step >= self.send_step {
                    return;
                }
                let nseq = self.seg_nseq(self.send_seg(step));
                for seq in missing {
                    if (seq as usize) < nseq {
                        self.send_packet_of(step, seq as usize, ctx, true);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn NodeCtx) {
        if token.0 & HOST_TOKEN_BIT != 0 {
            while let Some(pkt) = self.host.pop_due(ctx.now()) {
                ctx.send(pkt);
            }
            return;
        }
        if token.0 & STALL_TOKEN_BIT != 0 && !self.completed {
            // Still stuck on an incomplete step: request everything
            // missing (TCP RTO-style recovery), then rearm.
            if self.recv_count < self.recv_seen.len() {
                self.send_nack(ctx);
            }
            self.arm_stall(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_schedule_is_consistent() {
        // What rank i sends at step t is what rank i+1 receives at t.
        let n = 5;
        for t in 0..2 * (n - 1) {
            for i in 0..n {
                let a = RingNode::new(
                    RingParams::new(i, n, 100),
                    vec![0.0; 100],
                    NodeId(0),
                    NodeId(1),
                );
                let b = RingNode::new(
                    RingParams::new((i + 1) % n, n, 100),
                    vec![0.0; 100],
                    NodeId(0),
                    NodeId(1),
                );
                assert_eq!(a.send_seg(t), b.recv_seg(t), "i={i} t={t}");
            }
        }
    }

    #[test]
    fn reduce_scatter_owns_correct_segment() {
        // After n-1 reduce-scatter steps, rank i has fully reduced
        // segment (i+1) mod n — i.e. the segment it receives at the
        // last RS step.
        let n = 4;
        let node = RingNode::new(
            RingParams::new(2, n, 80),
            vec![0.0; 80],
            NodeId(0),
            NodeId(1),
        );
        assert_eq!(node.recv_seg(n - 2), (2 + 1) % n);
    }

    #[test]
    fn nseq_covers_segment() {
        let node = RingNode::new(
            RingParams {
                mtu_elems: 10,
                ..RingParams::new(0, 3, 95)
            },
            vec![0.0; 95],
            NodeId(0),
            NodeId(1),
        );
        // Segments are ~31-32 elems → 4 packets each.
        for seg in 0..3 {
            let (lo, hi) = node.bounds[seg];
            assert_eq!(node.seg_nseq(seg), (hi - lo).div_ceil(10));
        }
    }
}
