//! # switchml-baselines
//!
//! Collective-communication strategies over the `switchml-netsim`
//! substrate — both the SwitchML protocol itself (adapter nodes
//! driving the sans-IO state machines from `switchml-core`) and the
//! baselines the paper evaluates against:
//!
//! * [`ring`] — bandwidth-optimal ring all-reduce with TCP-calibrated
//!   loss recovery (the Gloo / NCCL stand-in);
//! * [`hd`] — halving-and-doubling all-reduce;
//! * [`run::run_ps`] — dedicated and colocated parameter servers
//!   (the paper's DPDK "Algorithm 1 in software" comparison);
//! * [`switchml`] / [`run::run_switchml_hierarchy`] — single-rack and
//!   §6 multi-rack SwitchML;
//! * [`cost`] — the §2.3 analytic volumes and line-rate bounds drawn
//!   as horizontal rules in Figures 4, 7 and 8;
//! * [`host`] — the per-packet end-host CPU model that separates
//!   DPDK-class workers from kernel-TCP baselines.

pub mod colocated;
pub mod cost;
pub mod hd;
pub mod host;
pub mod msg;
pub mod ring;
pub mod run;
pub mod switchml;

pub use run::{
    expected_sum, expected_sum_i32, run_hd, run_ps, run_ring, run_switchml, run_switchml_hierarchy,
    run_switchml_traced, synthetic_gradient, synthetic_gradient_i32, CollectiveOutcome, HdScenario,
    HierScenario, PsPlacement, PsScenario, RingScenario, SwitchMLScenario,
};
