//! The colocated parameter-server node (§5.3's second PS scenario):
//! one machine runs both a worker process and a PS shard, sharing the
//! machine's single link — which is why "the Colocated PS approach
//! reaches only half of SwitchML's performance": every link carries
//! the worker's own traffic *and* the shard's aggregation traffic.

use crate::switchml::{SwitchMLSwitchNode, SwitchMLWorkerNode};
use std::any::Any;
use switchml_core::packet::{Packet, PacketKind};
use switchml_netsim::prelude::*;

/// Discriminates the two halves' timers.
const PART_BIT: u64 = 1 << 62;

/// A ctx wrapper that tags timer tokens with which half armed them.
struct TaggedCtx<'a> {
    inner: &'a mut dyn NodeCtx,
    tag: u64,
}

impl NodeCtx for TaggedCtx<'_> {
    fn now(&self) -> Nanos {
        self.inner.now()
    }
    fn self_id(&self) -> NodeId {
        self.inner.self_id()
    }
    fn send(&mut self, pkt: SimPacket) {
        self.inner.send(pkt);
    }
    fn set_timer(&mut self, delay: Nanos, token: TimerToken) {
        debug_assert_eq!(token.0 & PART_BIT, 0, "token collides with part tag");
        self.inner.set_timer(delay, TimerToken(token.0 | self.tag));
    }
    fn complete(&mut self) {
        self.inner.complete();
    }
}

/// A machine hosting a SwitchML-protocol worker and a PS shard.
pub struct ColocatedNode {
    pub worker: SwitchMLWorkerNode,
    pub ps: SwitchMLSwitchNode,
}

impl ColocatedNode {
    pub fn new(worker: SwitchMLWorkerNode, ps: SwitchMLSwitchNode) -> Self {
        ColocatedNode { worker, ps }
    }
}

impl Node for ColocatedNode {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        self.worker.on_start(&mut TaggedCtx { inner: ctx, tag: 0 });
        self.ps.on_start(&mut TaggedCtx {
            inner: ctx,
            tag: PART_BIT,
        });
    }

    fn on_packet(&mut self, pkt: SimPacket, ctx: &mut dyn NodeCtx) {
        // Updates are for the PS shard; results are for the worker.
        match Packet::peek_kind(&pkt.payload) {
            Some(PacketKind::Update) => self.ps.on_packet(
                pkt,
                &mut TaggedCtx {
                    inner: ctx,
                    tag: PART_BIT,
                },
            ),
            Some(PacketKind::Result) => self
                .worker
                .on_packet(pkt, &mut TaggedCtx { inner: ctx, tag: 0 }),
            None => {} // unparseable; both halves would drop it anyway
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn NodeCtx) {
        if token.0 & PART_BIT != 0 {
            self.ps.on_timer(
                TimerToken(token.0 & !PART_BIT),
                &mut TaggedCtx {
                    inner: ctx,
                    tag: PART_BIT,
                },
            );
        } else {
            self.worker
                .on_timer(token, &mut TaggedCtx { inner: ctx, tag: 0 });
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
