//! Wire format for the host-based baseline collectives (Gloo/NCCL-like
//! ring and halving-doubling all-reduce).
//!
//! These strategies run over TCP in the paper's evaluation; we model
//! the framing (Ethernet + IP + TCP ≈ 66 bytes of overhead on an
//! MTU-sized segment) and a NACK-based reliability scheme whose
//! recovery costs are calibrated to TCP's: gap-triggered fast
//! retransmit at ~RTT, stall recovery at the retransmission timeout.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use switchml_core::error::{Error, Result};

/// Ethernet(18) + IPv4(20) + TCP(20+options 8) framing bytes charged
/// per baseline packet.
pub const BASELINE_FRAME_OVERHEAD: usize = 66;

/// f32 elements per MTU-sized segment: fits a 1514-byte Ethernet
/// frame after the 19-byte chunk header and 66 bytes of framing.
pub const MTU_ELEMS: usize = 357;

const MAGIC: u16 = 0x424C; // "BL"
const KIND_CHUNK: u8 = 1;
const KIND_NACK: u8 = 2;

/// A baseline-collective message.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineMsg {
    /// A piece of a segment exchanged at `step`.
    Chunk {
        /// Algorithm step (ring: 0..2(n-1); HD: 0..2·log₂n).
        step: u32,
        /// Sender's rank.
        src: u16,
        /// Packet index within the step's segment.
        seq: u32,
        /// Packets the segment comprises.
        nseq: u32,
        /// Element payload.
        elems: Vec<f32>,
    },
    /// Receiver-driven retransmission request for missing packets.
    Nack {
        step: u32,
        /// Requester's rank.
        src: u16,
        /// Missing packet indices (bounded per message).
        missing: Vec<u32>,
    },
}

/// Cap on missing-seq entries per NACK (more are requested by
/// subsequent NACKs, as with TCP SACK blocks).
pub const MAX_NACK_ENTRIES: usize = 64;

impl BaselineMsg {
    pub fn encode(&self) -> Bytes {
        match self {
            BaselineMsg::Chunk {
                step,
                src,
                seq,
                nseq,
                elems,
            } => {
                let mut b = BytesMut::with_capacity(17 + 4 * elems.len());
                b.put_u16(MAGIC);
                b.put_u8(KIND_CHUNK);
                b.put_u32(*step);
                b.put_u16(*src);
                b.put_u32(*seq);
                b.put_u32(*nseq);
                b.put_u16(elems.len() as u16);
                for &x in elems {
                    b.put_f32(x);
                }
                b.freeze()
            }
            BaselineMsg::Nack { step, src, missing } => {
                let mut b = BytesMut::with_capacity(11 + 4 * missing.len());
                b.put_u16(MAGIC);
                b.put_u8(KIND_NACK);
                b.put_u32(*step);
                b.put_u16(*src);
                b.put_u16(missing.len() as u16);
                for &m in missing {
                    b.put_u32(m);
                }
                b.freeze()
            }
        }
    }

    pub fn decode(mut data: &[u8]) -> Result<BaselineMsg> {
        if data.len() < 3 {
            return Err(Error::Malformed("short baseline message"));
        }
        let magic = data.get_u16();
        if magic != MAGIC {
            return Err(Error::Malformed("bad baseline magic"));
        }
        match data.get_u8() {
            KIND_CHUNK => {
                if data.len() < 14 {
                    return Err(Error::Malformed("short chunk header"));
                }
                let step = data.get_u32();
                let src = data.get_u16();
                let seq = data.get_u32();
                let nseq = data.get_u32();
                let count = data.get_u16() as usize;
                if data.len() != 4 * count {
                    return Err(Error::Malformed("chunk payload length mismatch"));
                }
                let mut elems = Vec::with_capacity(count);
                for _ in 0..count {
                    elems.push(data.get_f32());
                }
                Ok(BaselineMsg::Chunk {
                    step,
                    src,
                    seq,
                    nseq,
                    elems,
                })
            }
            KIND_NACK => {
                if data.len() < 8 {
                    return Err(Error::Malformed("short nack header"));
                }
                let step = data.get_u32();
                let src = data.get_u16();
                let count = data.get_u16() as usize;
                if data.len() != 4 * count {
                    return Err(Error::Malformed("nack length mismatch"));
                }
                let mut missing = Vec::with_capacity(count);
                for _ in 0..count {
                    missing.push(data.get_u32());
                }
                Ok(BaselineMsg::Nack { step, src, missing })
            }
            _ => Err(Error::Malformed("unknown baseline message kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_roundtrip() {
        let m = BaselineMsg::Chunk {
            step: 7,
            src: 3,
            seq: 41,
            nseq: 100,
            elems: vec![1.5, -2.25, 0.0],
        };
        assert_eq!(BaselineMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn nack_roundtrip() {
        let m = BaselineMsg::Nack {
            step: 2,
            src: 1,
            missing: vec![5, 9, 10],
        };
        assert_eq!(BaselineMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn garbage_rejected() {
        assert!(BaselineMsg::decode(&[]).is_err());
        assert!(BaselineMsg::decode(&[0, 1, 2, 3]).is_err());
        let mut good = BaselineMsg::Chunk {
            step: 0,
            src: 0,
            seq: 0,
            nseq: 1,
            elems: vec![1.0],
        }
        .encode()
        .to_vec();
        good.truncate(good.len() - 1);
        assert!(BaselineMsg::decode(&good).is_err());
    }

    #[test]
    fn mtu_frame_is_ethernet_sized() {
        let m = BaselineMsg::Chunk {
            step: 0,
            src: 0,
            seq: 0,
            nseq: 1,
            elems: vec![0.0; MTU_ELEMS],
        };
        // Payload + framing stays within a 1514-byte Ethernet frame.
        assert!(m.encode().len() + BASELINE_FRAME_OVERHEAD <= 1514);
        assert!(m.encode().len() + BASELINE_FRAME_OVERHEAD > 1450);
    }
}
