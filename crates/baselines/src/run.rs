//! Scenario builders: assemble a topology, bind protocol nodes, run
//! the simulation, and extract the metrics the paper reports (tensor
//! aggregation time, per-packet RTT, retransmissions, correctness).
//!
//! Every runner verifies the aggregation result against the exact
//! element-wise sum — the paper's microbenchmarks do the same ("We
//! verify that the tensors … are aggregated correctly", §5.3).

use crate::colocated::ColocatedNode;
use crate::hd::{HdNode, HdParams};
use crate::ring::{RingNode, RingParams};
use crate::switchml::{HierSwitchNode, SlotRouter, SwitchMLSwitchNode, SwitchMLWorkerNode};
use switchml_core::config::{NumericMode, Protocol};
use switchml_core::error::{Error, Result};
use switchml_core::switch::hierarchy::{HierarchicalSwitch, Role};
use switchml_core::switch::reliable::ReliableSwitch;
use switchml_core::worker::stream::TensorStream;
use switchml_core::worker::Worker;
use switchml_netsim::node::Forwarder;
use switchml_netsim::prelude::*;
use switchml_netsim::trace::{NullTrace, TraceSink};

/// Deterministic per-rank synthetic gradient: rank-dependent base with
/// a small per-element ripple so element steering bugs can't hide.
pub fn synthetic_gradient(rank: usize, elems: usize) -> Vec<f32> {
    let base = 0.5 + rank as f32 * 0.25;
    (0..elems)
        .map(|i| base + ((i % 8) as f32) * 0.125)
        .collect()
}

/// The exact element-wise sum of [`synthetic_gradient`] over `n` ranks.
pub fn expected_sum(n: usize, elems: usize) -> Vec<f32> {
    let base_sum: f32 = (0..n).map(|r| 0.5 + r as f32 * 0.25).sum();
    (0..elems)
        .map(|i| base_sum + n as f32 * ((i % 8) as f32) * 0.125)
        .collect()
}

/// Integer analog of [`synthetic_gradient`], for the NativeInt32 mode
/// of Figure 8 (which bypasses scaling/conversion entirely).
pub fn synthetic_gradient_i32(rank: usize, elems: usize) -> Vec<i32> {
    (0..elems)
        .map(|i| (rank as i32 + 1) * 1000 + (i % 8) as i32)
        .collect()
}

/// Element-wise sum of [`synthetic_gradient_i32`] over `n` ranks.
pub fn expected_sum_i32(n: usize, elems: usize) -> Vec<i32> {
    let base: i32 = (0..n as i32).map(|r| (r + 1) * 1000).sum();
    (0..elems)
        .map(|i| base + n as i32 * (i % 8) as i32)
        .collect()
}

fn close_enough(got: &[f32], want: &[f32], tol: f32) -> bool {
    got.len() == want.len() && got.iter().zip(want).all(|(a, b)| (a - b).abs() <= tol)
}

/// Metrics shared by all collective runners.
#[derive(Debug, Clone)]
pub struct CollectiveOutcome {
    /// Per-worker tensor aggregation time.
    pub tat: Vec<Nanos>,
    /// TAT of the slowest worker (the job-level TAT).
    pub max_tat: Nanos,
    pub mean_tat_ns: f64,
    /// Mean per-packet RTT (SwitchML runs only; 0 otherwise).
    pub mean_rtt_ns: f64,
    /// 99th-percentile per-packet RTT (SwitchML runs only).
    pub p99_rtt_ns: u64,
    /// Result matched the exact element-wise sum.
    pub verified: bool,
    /// Protocol-level retransmissions across all workers.
    pub total_retx: u64,
    /// Aggregated tensor elements per second (elems / mean TAT).
    pub ate_per_sec: f64,
    /// Rank 0's aggregated tensors, dequantized (SwitchML traced runs
    /// only; empty elsewhere). Bit-exact across workers and transports
    /// for Fixed32, which the differential tests rely on.
    pub worker0_results: Vec<Vec<f32>>,
    /// The raw simulation report (packet counters, drops, …).
    pub report: SimReport,
}

fn outcome_from(
    report: SimReport,
    worker_ids: &[NodeId],
    elems: usize,
    mean_rtt_ns: f64,
    p99_rtt_ns: u64,
    verified: bool,
    total_retx: u64,
) -> Result<CollectiveOutcome> {
    if !report.finished {
        return Err(Error::ProtocolViolation(format!(
            "simulation did not converge ({} events, t = {})",
            report.events, report.end_time
        )));
    }
    let tat: Vec<Nanos> = worker_ids
        .iter()
        .map(|w| report.completion_times[w.0].expect("finished run has completion times"))
        .collect();
    let max_tat = *tat.iter().max().expect("at least one worker");
    let mean_tat_ns = tat.iter().map(|t| t.0 as f64).sum::<f64>() / tat.len() as f64;
    let ate = if mean_tat_ns > 0.0 {
        elems as f64 / (mean_tat_ns / 1e9)
    } else {
        0.0
    };
    Ok(CollectiveOutcome {
        tat,
        max_tat,
        mean_tat_ns,
        mean_rtt_ns,
        p99_rtt_ns,
        verified,
        total_retx,
        ate_per_sec: ate,
        worker0_results: Vec::new(),
        report,
    })
}

/// A single-rack SwitchML run (the paper's §5.3 microbenchmark).
#[derive(Debug, Clone)]
pub struct SwitchMLScenario {
    pub n_workers: usize,
    /// Tensor elements per worker.
    pub elems: usize,
    pub proto: Protocol,
    pub link: LinkSpec,
    /// Worker CPU cores (the paper uses 1 at 10 Gbps, 4 at 100 Gbps).
    pub n_cores: usize,
    /// CPU time to process one result packet and emit the next update
    /// (DPDK run-to-completion loop).
    pub worker_cost: Nanos,
    /// Per-rank straggle: `(rank, extra)` gives that worker's links a
    /// fixed extra delay in both directions (a chronically slow host).
    pub stragglers: Vec<(usize, Nanos)>,
    pub seed: u64,
    /// Simulated-time cap (None = run to completion).
    pub deadline: Option<Nanos>,
}

impl SwitchMLScenario {
    pub fn new(n_workers: usize, elems: usize) -> Self {
        SwitchMLScenario {
            n_workers,
            elems,
            proto: Protocol {
                n_workers,
                k: 32,
                pool_size: 128,
                rto_ns: 1_000_000, // the paper's 1 ms RTO (§5.5)
                rto_policy: switchml_core::config::RtoPolicy::Fixed,
                mode: NumericMode::Fixed32,
                wrapping_add: false,
                scaling_factor: 1_000_000.0,
            },
            link: LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)),
            n_cores: 1,
            worker_cost: Nanos(90),
            stragglers: Vec::new(),
            seed: 1,
            deadline: None,
        }
    }

    /// Switch the scenario to 100 Gbps defaults (pool 512, 4 cores, as
    /// deployed in the paper).
    pub fn at_100g(mut self) -> Self {
        self.link.bandwidth_bps = 100_000_000_000;
        self.proto.pool_size = 512;
        self.n_cores = 4;
        self
    }
}

fn sim_config(seed: u64, deadline: Option<Nanos>) -> SimConfig {
    SimConfig {
        seed,
        forward_latency: Nanos(400),
        max_events: 2_000_000_000,
        deadline,
    }
}

/// Run single-switch SwitchML, mirroring trace events into `sink`.
pub fn run_switchml_traced(
    sc: &SwitchMLScenario,
    sink: &mut dyn TraceSink,
) -> Result<CollectiveOutcome> {
    sc.proto.validate()?;
    let mut topo = Topology::new();
    // The worker→switch direction is fed by the DPDK TX ring, which is
    // sized to hold the initial window of s packets (§3.6's "initial
    // window size"); queueing there shows up as RTT, not loss. The
    // switch→worker direction keeps the configured (shallow) queue.
    let uplink_queue = sc
        .link
        .queue_bytes
        .max(2 * sc.proto.pool_size * sc.proto.packet_wire_bytes());
    // §3.5 allows bounded reordering on results (switch→worker) only:
    // an update stream reordering across phases can land a stale
    // retransmission after the same worker's next-generation update
    // and re-seed a released slot (the 1-bit version ambiguity), which
    // the paper rules out via in-order switch fabrics. Duplication
    // stays on both directions — FIFO dup copies are exactly the §3.4
    // idempotency case.
    let uplink = sc
        .link
        .with_queue_bytes(uplink_queue)
        .with_reordering(0.0, Nanos::ZERO);
    let sw = topo.add_node();
    let ws: Vec<NodeId> = (0..sc.n_workers)
        .map(|rank| {
            let extra = sc
                .stragglers
                .iter()
                .find(|&&(r, _)| r == rank)
                .map_or(Nanos::ZERO, |&(_, d)| d);
            let w = topo.add_node();
            topo.add_simplex_link(w, sw, uplink.with_straggle(extra));
            topo.add_simplex_link(sw, w, sc.link.with_straggle(extra));
            w
        })
        .collect();
    let mut sim = Simulator::new(topo, sim_config(sc.seed, sc.deadline));

    for (rank, &id) in ws.iter().enumerate() {
        let stream = match sc.proto.mode {
            NumericMode::NativeInt32 => {
                TensorStream::from_i32(&[synthetic_gradient_i32(rank, sc.elems)], sc.proto.k)?
            }
            _ => TensorStream::from_f32(
                &[synthetic_gradient(rank, sc.elems)],
                sc.proto.mode,
                sc.proto.scaling_factor,
                sc.proto.k,
            )?,
        };
        let worker = Worker::sharded(rank as u16, &sc.proto, stream, sc.n_cores)?;
        sim.bind(
            id,
            Box::new(SwitchMLWorkerNode::new(
                worker,
                SlotRouter::Single(sw),
                sc.worker_cost,
            )),
        );
    }
    sim.bind(
        sw,
        Box::new(SwitchMLSwitchNode::new(
            ReliableSwitch::new(&sc.proto)?,
            ws.clone(),
            1,
            Nanos::ZERO, // ASIC: line-rate processing
        )),
    );

    let report = sim.run_traced(sink);

    // Extract per-worker metrics and verify worker 0's result.
    let mut total_retx = 0;
    let mut rtt_sum = 0.0;
    let mut rtt_n = 0u64;
    let mut p99 = 0u64;
    let mut verified = false;
    let mut worker0_results: Vec<Vec<f32>> = Vec::new();
    for (rank, &id) in ws.iter().enumerate() {
        let node = sim
            .node(id)
            .as_any()
            .downcast_ref::<SwitchMLWorkerNode>()
            .expect("worker node type");
        total_retx += node.stats().retx;
        rtt_sum += node.rtt.sum_ns as f64;
        rtt_n += node.rtt.count;
        p99 = p99.max(node.rtt.percentile_ns(0.99));
        if rank == 0 && report.finished {
            verified = match sc.proto.mode {
                NumericMode::NativeInt32 => {
                    let got = node.worker().stream().result_tensors_i32()?;
                    got[0] == expected_sum_i32(sc.n_workers, sc.elems)
                }
                mode => {
                    let got = node.worker().stream().result_tensors_f32(1)?;
                    worker0_results = got.clone();
                    let want = expected_sum(sc.n_workers, sc.elems);
                    let tol = match mode {
                        // f16 carries an 11-bit significand: quantization
                        // error is relative to the scaled magnitude.
                        NumericMode::Float16 => {
                            let max_in = 0.5 + (sc.n_workers as f32 - 1.0) * 0.25 + 0.875;
                            sc.n_workers as f32 * max_in * 2f32.powi(-9) + 1e-3
                        }
                        _ => (sc.n_workers as f64 / sc.proto.scaling_factor) as f32 + 1e-3,
                    };
                    close_enough(&got[0], &want, tol)
                }
            };
        }
    }
    let mean_rtt = if rtt_n > 0 {
        rtt_sum / rtt_n as f64
    } else {
        0.0
    };
    let mut out = outcome_from(report, &ws, sc.elems, mean_rtt, p99, verified, total_retx)?;
    out.worker0_results = worker0_results;
    Ok(out)
}

/// Run single-switch SwitchML.
pub fn run_switchml(sc: &SwitchMLScenario) -> Result<CollectiveOutcome> {
    run_switchml_traced(sc, &mut NullTrace)
}

/// Parameter-server placement (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsPlacement {
    /// One PS machine per worker, on dedicated nodes ("effectively
    /// doubling the cluster size").
    Dedicated,
    /// A PS shard colocated with every worker, sharing its link.
    Colocated,
}

/// Parameter-server scenario: the same worker protocol, but the
/// aggregator is software, sharded across hosts.
#[derive(Debug, Clone)]
pub struct PsScenario {
    pub base: SwitchMLScenario,
    pub placement: PsPlacement,
    /// Cores per PS shard (the paper uses 4).
    pub ps_cores: usize,
    /// Per-packet CPU cost at a PS shard (DPDK-class).
    pub ps_cost: Nanos,
}

impl PsScenario {
    pub fn new(base: SwitchMLScenario, placement: PsPlacement) -> Self {
        PsScenario {
            base,
            placement,
            ps_cores: 4,
            ps_cost: Nanos(90),
        }
    }
}

/// Run a PS-based aggregation.
pub fn run_ps(sc: &PsScenario) -> Result<CollectiveOutcome> {
    let base = &sc.base;
    base.proto.validate()?;
    let n = base.n_workers;
    let s = base.proto.pool_size;
    // Shard slots across n PS processes, evenly and contiguously.
    let shard_of: Vec<usize> = (0..s).map(|slot| slot * n / s.max(1)).collect();

    let mut topo = Topology::new();
    let center = topo.add_node();
    let ws: Vec<NodeId> = (0..n)
        .map(|_| {
            let w = topo.add_node();
            topo.add_duplex_link(w, center, base.link);
            w
        })
        .collect();
    let ps_ids: Vec<NodeId> = match sc.placement {
        PsPlacement::Dedicated => (0..n)
            .map(|_| {
                let p = topo.add_node();
                topo.add_duplex_link(p, center, base.link);
                p
            })
            .collect(),
        PsPlacement::Colocated => ws.clone(),
    };

    let mut sim = Simulator::new(topo, sim_config(base.seed, base.deadline));
    sim.bind(center, Box::new(Forwarder));

    let make_worker = |rank: usize| -> Result<SwitchMLWorkerNode> {
        let data = synthetic_gradient(rank, base.elems);
        let stream = TensorStream::from_f32(
            &[data],
            base.proto.mode,
            base.proto.scaling_factor,
            base.proto.k,
        )?;
        let worker = Worker::sharded(rank as u16, &base.proto, stream, base.n_cores)?;
        Ok(SwitchMLWorkerNode::new(
            worker,
            SlotRouter::Sharded {
                shards: ps_ids.clone(),
                shard_of: shard_of.clone(),
            },
            base.worker_cost,
        ))
    };
    let make_ps = |_shard: usize| -> Result<SwitchMLSwitchNode> {
        Ok(SwitchMLSwitchNode::new(
            ReliableSwitch::new(&base.proto)?,
            ws.clone(),
            sc.ps_cores,
            sc.ps_cost,
        ))
    };

    match sc.placement {
        PsPlacement::Dedicated => {
            for (rank, &id) in ws.iter().enumerate() {
                sim.bind(id, Box::new(make_worker(rank)?));
            }
            for (shard, &id) in ps_ids.iter().enumerate() {
                sim.bind(id, Box::new(make_ps(shard)?));
            }
        }
        PsPlacement::Colocated => {
            for (rank, &id) in ws.iter().enumerate() {
                sim.bind(
                    id,
                    Box::new(ColocatedNode::new(make_worker(rank)?, make_ps(rank)?)),
                );
            }
        }
    }

    let report = sim.run();

    let mut total_retx = 0;
    let mut rtt_sum = 0.0;
    let mut rtt_n = 0u64;
    let mut verified = false;
    for (rank, &id) in ws.iter().enumerate() {
        let any = sim.node(id).as_any();
        let worker_node: &SwitchMLWorkerNode = match sc.placement {
            PsPlacement::Dedicated => any.downcast_ref().expect("worker node"),
            PsPlacement::Colocated => {
                &any.downcast_ref::<ColocatedNode>()
                    .expect("colocated")
                    .worker
            }
        };
        total_retx += worker_node.stats().retx;
        rtt_sum += worker_node.rtt.sum_ns as f64;
        rtt_n += worker_node.rtt.count;
        if rank == 0 && report.finished {
            let got = worker_node.worker().stream().result_tensors_f32(1)?;
            let want = expected_sum(n, base.elems);
            let tol = (n as f64 / base.proto.scaling_factor) as f32 + 1e-3;
            verified = close_enough(&got[0], &want, tol);
        }
    }
    let mean_rtt = if rtt_n > 0 {
        rtt_sum / rtt_n as f64
    } else {
        0.0
    };
    outcome_from(report, &ws, base.elems, mean_rtt, 0, verified, total_retx)
}

/// Ring all-reduce scenario (Gloo / NCCL profiles).
#[derive(Debug, Clone)]
pub struct RingScenario {
    pub n: usize,
    pub elems: usize,
    pub link: LinkSpec,
    /// Per-packet host cost (the Gloo-vs-NCCL knob).
    pub host_cost: Nanos,
    /// TCP-like stall recovery timeout.
    pub stall_rto: Nanos,
    pub mtu_elems: usize,
    pub seed: u64,
    pub deadline: Option<Nanos>,
}

impl RingScenario {
    /// Gloo-over-TCP profile. The per-packet cost is calibrated so an
    /// 8-worker 10 Gbps ring sustains ≈25 M elem/s — the effective
    /// rate the paper's Gloo baseline exhibits (Figures 4 and 8).
    pub fn gloo(n: usize, elems: usize) -> Self {
        RingScenario {
            n,
            elems,
            link: LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)),
            host_cost: Nanos(8_200),
            stall_rto: Nanos::from_millis(200),
            mtu_elems: crate::msg::MTU_ELEMS,
            seed: 1,
            deadline: None,
        }
    }

    /// NCCL profile: GPU-direct buffers cut per-packet host cost to
    /// less than half of Gloo's — calibrated to ≈55 M elem/s at 8
    /// workers / 10 Gbps, the rate Table 1's NCCL rows imply.
    pub fn nccl(n: usize, elems: usize) -> Self {
        RingScenario {
            host_cost: Nanos(3_700),
            ..RingScenario::gloo(n, elems)
        }
    }

    /// Gloo-over-RDMA profile (§5.4): kernel bypass + zero-copy.
    /// Calibrated to the paper's measurement — "a sensible 4x speedup
    /// exchanging 50MB tensors with Gloo at 100Gbps using RDMA versus
    /// TCP" — i.e. ~4× the TCP profile's sustained rate, still far
    /// from line rate (NIC/verbs processing remains per-message).
    pub fn gloo_rdma(n: usize, elems: usize) -> Self {
        RingScenario {
            host_cost: Nanos(2_000),
            ..RingScenario::gloo(n, elems)
        }
    }
}

/// Run ring all-reduce through a non-programmable ToR.
pub fn run_ring(sc: &RingScenario) -> Result<CollectiveOutcome> {
    if sc.n == 0 {
        return Err(Error::InvalidConfig("need at least one rank".into()));
    }
    // Each step bursts a whole segment; give links queue room for it.
    let seg_bytes = (sc.elems / sc.n.max(1) + 1) * 4;
    let link = sc
        .link
        .with_queue_bytes(sc.link.queue_bytes.max(2 * seg_bytes + 256 * 1024));

    let mut topo = Topology::new();
    let (center, ws) = topo.star(sc.n, link);
    let mut sim = Simulator::new(topo, sim_config(sc.seed, sc.deadline));
    sim.bind(center, Box::new(Forwarder));
    for (rank, &id) in ws.iter().enumerate() {
        let params = RingParams {
            mtu_elems: sc.mtu_elems,
            host_cost: sc.host_cost,
            stall_rto: sc.stall_rto,
            ..RingParams::new(rank, sc.n, sc.elems)
        };
        let data = synthetic_gradient(rank, sc.elems);
        let pred = ws[(rank + sc.n - 1) % sc.n];
        let succ = ws[(rank + 1) % sc.n];
        sim.bind(id, Box::new(RingNode::new(params, data, pred, succ)));
    }

    let report = sim.run();

    let mut verified = false;
    let mut total_retx = 0;
    for (rank, &id) in ws.iter().enumerate() {
        let node = sim
            .node(id)
            .as_any()
            .downcast_ref::<RingNode>()
            .expect("ring node");
        total_retx += node.stats.retx_sent;
        if rank == 0 && report.finished {
            let want = expected_sum(sc.n, sc.elems);
            verified = close_enough(node.data(), &want, 1e-2 * sc.n as f32);
        }
    }
    outcome_from(report, &ws, sc.elems, 0.0, 0, verified, total_retx)
}

/// Halving-doubling all-reduce scenario (lossless only).
#[derive(Debug, Clone)]
pub struct HdScenario {
    pub n: usize,
    pub elems: usize,
    pub link: LinkSpec,
    pub host_cost: Nanos,
    pub seed: u64,
    pub deadline: Option<Nanos>,
}

impl HdScenario {
    pub fn new(n: usize, elems: usize) -> Self {
        HdScenario {
            n,
            elems,
            link: LinkSpec::clean(10_000_000_000, Nanos::from_micros(1)),
            host_cost: Nanos(4_200),
            seed: 1,
            deadline: None,
        }
    }
}

/// Run halving-doubling all-reduce through a non-programmable ToR.
pub fn run_hd(sc: &HdScenario) -> Result<CollectiveOutcome> {
    if !sc.n.is_power_of_two() {
        return Err(Error::InvalidConfig(
            "halving-doubling needs a power-of-two rank count".into(),
        ));
    }
    let seg_bytes = (sc.elems / 2 + 1) * 4;
    let link = sc
        .link
        .with_queue_bytes(sc.link.queue_bytes.max(2 * seg_bytes + 256 * 1024));
    let mut topo = Topology::new();
    let (center, ws) = topo.star(sc.n, link);
    let mut sim = Simulator::new(topo, sim_config(sc.seed, sc.deadline));
    sim.bind(center, Box::new(Forwarder));
    for (rank, &id) in ws.iter().enumerate() {
        let params = HdParams {
            host_cost: sc.host_cost,
            ..HdParams::new(rank, sc.n, sc.elems)
        };
        let data = synthetic_gradient(rank, sc.elems);
        sim.bind(id, Box::new(HdNode::new(params, data, ws.clone())));
    }

    let report = sim.run();

    let mut verified = false;
    for (rank, &id) in ws.iter().enumerate() {
        if rank == 0 && report.finished {
            let node = sim
                .node(id)
                .as_any()
                .downcast_ref::<HdNode>()
                .expect("hd node");
            let want = expected_sum(sc.n, sc.elems);
            verified = close_enough(node.data(), &want, 1e-2 * sc.n as f32);
        }
    }
    outcome_from(report, &ws, sc.elems, 0.0, 0, verified, 0)
}

/// Multi-rack hierarchical SwitchML (§6).
#[derive(Debug, Clone)]
pub struct HierScenario {
    pub racks: usize,
    pub per_rack: usize,
    pub elems: usize,
    /// k / pool / RTO / scaling template; `n_workers` is overridden
    /// per layer (per_rack at rack switches, racks at the root).
    pub proto: Protocol,
    pub worker_link: LinkSpec,
    pub uplink: LinkSpec,
    pub worker_cost: Nanos,
    pub seed: u64,
    pub deadline: Option<Nanos>,
}

impl HierScenario {
    pub fn new(racks: usize, per_rack: usize, elems: usize) -> Self {
        let link = LinkSpec::clean(10_000_000_000, Nanos::from_micros(1));
        HierScenario {
            racks,
            per_rack,
            elems,
            proto: Protocol {
                n_workers: per_rack,
                k: 32,
                pool_size: 128,
                rto_ns: 1_000_000,
                rto_policy: switchml_core::config::RtoPolicy::Fixed,
                mode: NumericMode::Fixed32,
                wrapping_add: false,
                scaling_factor: 1_000_000.0,
            },
            worker_link: link,
            uplink: link,
            worker_cost: Nanos(90),
            seed: 1,
            deadline: None,
        }
    }
}

/// Run hierarchical aggregation across `racks × per_rack` workers.
pub fn run_switchml_hierarchy(sc: &HierScenario) -> Result<CollectiveOutcome> {
    let mut topo = Topology::new();
    let (root, rack_ids, worker_ids) =
        topo.hierarchy(sc.racks, sc.per_rack, sc.worker_link, sc.uplink);
    let mut sim = Simulator::new(topo, sim_config(sc.seed, sc.deadline));

    let rack_proto = Protocol {
        n_workers: sc.per_rack,
        ..sc.proto.clone()
    };
    let root_proto = Protocol {
        n_workers: sc.racks,
        ..sc.proto.clone()
    };

    sim.bind(
        root,
        Box::new(HierSwitchNode::new(
            HierarchicalSwitch::new(&root_proto, Role::Root)?,
            None,
            rack_ids.clone(),
        )),
    );
    let mut all_workers = Vec::new();
    for (r, &rack) in rack_ids.iter().enumerate() {
        sim.bind(
            rack,
            Box::new(HierSwitchNode::new(
                HierarchicalSwitch::new(
                    &rack_proto,
                    Role::Intermediate {
                        upstream_wid: r as u16,
                    },
                )?,
                Some(root),
                worker_ids[r].clone(),
            )),
        );
        for (local, &w) in worker_ids[r].iter().enumerate() {
            let global_rank = r * sc.per_rack + local;
            let data = synthetic_gradient(global_rank, sc.elems);
            let stream = TensorStream::from_f32(
                &[data],
                rack_proto.mode,
                rack_proto.scaling_factor,
                rack_proto.k,
            )?;
            let worker = Worker::new(local as u16, &rack_proto, stream)?;
            sim.bind(
                w,
                Box::new(SwitchMLWorkerNode::new(
                    worker,
                    SlotRouter::Single(rack),
                    sc.worker_cost,
                )),
            );
            all_workers.push(w);
        }
    }

    let report = sim.run();

    let n_total = sc.racks * sc.per_rack;
    let mut verified = false;
    let mut total_retx = 0;
    for (i, &id) in all_workers.iter().enumerate() {
        let node = sim
            .node(id)
            .as_any()
            .downcast_ref::<SwitchMLWorkerNode>()
            .expect("worker node");
        total_retx += node.stats().retx;
        if i == 0 && report.finished {
            let got = node.worker().stream().result_tensors_f32(1)?;
            let want = expected_sum(n_total, sc.elems);
            let tol = (n_total as f64 / sc.proto.scaling_factor) as f32 + 1e-3;
            verified = close_enough(&got[0], &want, tol);
        }
    }
    outcome_from(report, &all_workers, sc.elems, 0.0, 0, verified, total_retx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switchml_small_run_verifies() {
        let sc = SwitchMLScenario {
            proto: Protocol {
                pool_size: 8,
                ..SwitchMLScenario::new(4, 2048).proto
            },
            ..SwitchMLScenario::new(4, 2048)
        };
        let out = run_switchml(&sc).unwrap();
        assert!(out.verified);
        assert_eq!(out.total_retx, 0);
        assert!(out.max_tat > Nanos::ZERO);
        assert!(out.ate_per_sec > 0.0);
        assert_eq!(out.tat.len(), 4);
    }

    #[test]
    fn switchml_with_loss_still_verifies() {
        // Large enough that zero drops is astronomically unlikely for
        // any healthy RNG stream (~0.97^512), rather than depending on
        // one specific generator's sequence at a fixed seed.
        let mut sc = SwitchMLScenario::new(2, 4096);
        sc.proto.pool_size = 8;
        sc.link = sc.link.with_loss(0.03);
        let out = run_switchml(&sc).unwrap();
        assert!(out.verified);
        assert!(out.total_retx > 0, "3% loss must trigger retransmissions");
    }

    #[test]
    fn switchml_with_corruption_still_verifies() {
        let mut sc = SwitchMLScenario::new(2, 512);
        sc.proto.pool_size = 4;
        sc.link = sc.link.with_corruption(0.02);
        let out = run_switchml(&sc).unwrap();
        assert!(out.verified);
    }

    #[test]
    fn switchml_with_dup_and_reorder_still_verifies() {
        let mut sc = SwitchMLScenario::new(2, 2048);
        sc.proto.pool_size = 8;
        sc.link = sc
            .link
            .with_duplication(0.05)
            .with_reordering(0.05, Nanos::from_micros(5));
        let out = run_switchml(&sc).unwrap();
        assert!(out.verified);
        assert!(
            out.report.counters.duplicated + out.report.counters.reordered > 0,
            "5% dup + 5% reorder over hundreds of packets must fire"
        );
    }

    #[test]
    fn straggler_slows_the_job_but_converges() {
        let mut fast = SwitchMLScenario::new(2, 4096);
        fast.proto.pool_size = 8;
        let mut slow = fast.clone();
        slow.stragglers = vec![(1, Nanos::from_micros(200))];
        let a = run_switchml(&fast).unwrap();
        let b = run_switchml(&slow).unwrap();
        assert!(a.verified && b.verified);
        assert!(
            b.max_tat > a.max_tat,
            "straggling worker 1 must stretch job TAT ({} vs {})",
            b.max_tat,
            a.max_tat
        );
        assert!(b.report.counters.straggled > 0);
    }

    #[test]
    fn ring_small_run_verifies() {
        let mut sc = RingScenario::gloo(4, 1000);
        sc.host_cost = Nanos(100);
        let out = run_ring(&sc).unwrap();
        assert!(out.verified);
    }

    #[test]
    fn ring_with_loss_recovers() {
        let mut sc = RingScenario::gloo(3, 20_000);
        sc.host_cost = Nanos(100);
        sc.stall_rto = Nanos::from_millis(5); // keep the test fast
        sc.link = sc.link.with_loss(0.05);
        let out = run_ring(&sc).unwrap();
        assert!(out.verified);
        assert!(out.total_retx > 0);
    }

    #[test]
    fn hd_small_run_verifies() {
        let mut sc = HdScenario::new(4, 1000);
        sc.host_cost = Nanos(100);
        let out = run_hd(&sc).unwrap();
        assert!(out.verified);
        assert!(run_hd(&HdScenario::new(3, 100)).is_err()); // non-pow2
    }

    #[test]
    fn dedicated_ps_verifies() {
        let mut base = SwitchMLScenario::new(3, 1024);
        base.proto.pool_size = 12;
        let out = run_ps(&PsScenario::new(base, PsPlacement::Dedicated)).unwrap();
        assert!(out.verified);
    }

    #[test]
    fn colocated_ps_verifies_and_is_slower() {
        // Slow link so bandwidth (not host CPU) is the bottleneck —
        // that is where colocation's link sharing bites.
        let mut base = SwitchMLScenario::new(4, 8192);
        base.proto.pool_size = 16;
        base.link = LinkSpec::clean(1_000_000_000, Nanos::from_micros(1));
        let ded = run_ps(&PsScenario::new(base.clone(), PsPlacement::Dedicated)).unwrap();
        let col = run_ps(&PsScenario::new(base, PsPlacement::Colocated)).unwrap();
        assert!(ded.verified && col.verified);
        assert!(
            col.max_tat > ded.max_tat,
            "colocated {} should exceed dedicated {}",
            col.max_tat,
            ded.max_tat
        );
    }

    #[test]
    fn hierarchy_verifies() {
        let mut sc = HierScenario::new(2, 2, 1024);
        sc.proto.pool_size = 8;
        let out = run_switchml_hierarchy(&sc).unwrap();
        assert!(out.verified);
        assert_eq!(out.tat.len(), 4);
    }

    #[test]
    fn hierarchy_with_loss_recovers() {
        let mut sc = HierScenario::new(2, 2, 512);
        sc.proto.pool_size = 4;
        sc.worker_link = sc.worker_link.with_loss(0.01);
        sc.uplink = sc.uplink.with_loss(0.01);
        let out = run_switchml_hierarchy(&sc).unwrap();
        assert!(out.verified);
    }

    #[test]
    fn deterministic_same_seed() {
        let mut sc = SwitchMLScenario::new(2, 512);
        sc.proto.pool_size = 4;
        sc.link = sc.link.with_loss(0.05);
        let a = run_switchml(&sc).unwrap();
        let b = run_switchml(&sc).unwrap();
        assert_eq!(a.max_tat, b.max_tat);
        assert_eq!(a.total_retx, b.total_retx);
    }
}
