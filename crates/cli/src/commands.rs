//! Subcommand implementations.

use crate::args::Args;
use switchml_baselines::{
    run_hd, run_ps, run_ring, run_switchml, run_switchml_hierarchy, run_switchml_traced,
    CollectiveOutcome, HdScenario, HierScenario, PsPlacement, PsScenario, RingScenario,
    SwitchMLScenario,
};
use switchml_core::config::{NumericMode, Protocol};
use switchml_core::switch::pipeline::PipelineModel;
use switchml_core::tune_pool_size;
use switchml_dnn::data::gaussian_blobs;
use switchml_dnn::real_train::{train as train_model, Aggregation, TrainConfig};
use switchml_netsim::trace::EventLog;

fn gbps(args: &Args) -> Result<u64, String> {
    Ok(args.get::<u64>("bandwidth-gbps", 10)? * 1_000_000_000)
}

/// The probabilistic fault flags shared by every chaos-capable command
/// (`--seed` plus loss/dup/reorder probabilities), parsed into one
/// [`switchml_scenario::FaultPlan`] so the commands cannot drift
/// apart on spellings or defaults again. `loss_flag` preserves
/// `sched`'s historical `--noisy-loss` spelling.
fn fault_flags(
    args: &Args,
    loss_flag: &str,
    default_loss: f64,
    default_dup: f64,
    default_reorder: f64,
) -> Result<switchml_scenario::FaultPlan, String> {
    Ok(switchml_scenario::FaultPlan {
        seed: args.get("seed", 1)?,
        loss: args.get(loss_flag, default_loss)?,
        dup: args.get("dup", default_dup)?,
        reorder: args.get("reorder", default_reorder)?,
        ..switchml_scenario::FaultPlan::default()
    })
}

fn render_outcome(label: &str, elems: usize, out: &CollectiveOutcome, json: bool) -> String {
    if json {
        serde_json::json!({
            "scenario": label,
            "elems": elems,
            "tat_ns": out.max_tat.0,
            "mean_rtt_ns": out.mean_rtt_ns,
            "ate_per_sec": out.ate_per_sec,
            "retransmissions": out.total_retx,
            "verified": out.verified,
            "packets_sent": out.report.counters.sent,
            "packets_dropped": out.report.counters.dropped_loss,
        })
        .to_string()
    } else {
        format!(
            "{label}: aggregated {elems} elems in {} ({:.1} M elem/s)\n  \
             verified: {}   retransmissions: {}   packets: {} sent / {} lost\n  \
             mean per-packet RTT: {:.1} us",
            out.max_tat,
            out.ate_per_sec / 1e6,
            out.verified,
            out.total_retx,
            out.report.counters.sent,
            out.report.counters.dropped_loss,
            out.mean_rtt_ns / 1e3,
        )
    }
}

/// `simulate`: SwitchML on the simulated rack (or multi-rack tree).
pub fn simulate(args: &Args) -> Result<String, String> {
    args.assert_known(&[
        "workers",
        "elems",
        "bandwidth-gbps",
        "pool",
        "k",
        "cores",
        "rto-us",
        "loss",
        "mode",
        "racks",
        "trace",
        "pcap",
        "json",
    ])?;
    let workers: usize = args.get("workers", 8)?;
    let elems: usize = args.get("elems", 1_000_000)?;
    let racks: usize = args.get("racks", 1)?;
    let loss: f64 = args.get("loss", 0.0)?;
    let mode = match args.get_str("mode", "f32").as_str() {
        "f32" => NumericMode::Fixed32,
        "f16" => NumericMode::Float16,
        "i32" => NumericMode::NativeInt32,
        other => return Err(format!("--mode: unknown '{other}' (f32|f16|i32)")),
    };

    let mut sc = SwitchMLScenario::new(workers, elems);
    sc.link.bandwidth_bps = gbps(args)?;
    sc.link = sc.link.with_loss(loss);
    sc.proto.pool_size = args.get("pool", 128)?;
    sc.proto.k = args.get("k", 32)?;
    sc.proto.rto_ns = args.get::<u64>("rto-us", 1_000)? * 1_000;
    sc.proto.mode = mode;
    if mode == NumericMode::Float16 {
        sc.proto.scaling_factor = 1000.0;
    }
    sc.n_cores = args.get("cores", 1)?;
    let json = args.switch("json");

    if racks > 1 {
        if !workers.is_multiple_of(racks) {
            return Err("--workers must divide evenly across --racks".into());
        }
        let mut hs = HierScenario::new(racks, workers / racks, elems);
        hs.proto = sc.proto.clone();
        hs.worker_link = sc.link;
        hs.uplink = sc.link;
        let out = run_switchml_hierarchy(&hs).map_err(|e| e.to_string())?;
        return Ok(render_outcome(
            &format!("switchml ({racks} racks x {} workers)", workers / racks),
            elems,
            &out,
            json,
        ));
    }

    let pcap_path = args.get_str("pcap", "");
    if !pcap_path.is_empty() {
        let mut cap = switchml_netsim::pcap::PcapCapture::new();
        let out = run_switchml_traced(&sc, &mut cap).map_err(|e| e.to_string())?;
        let frames = cap.frames;
        std::fs::write(&pcap_path, cap.into_bytes()).map_err(|e| e.to_string())?;
        let mut text = render_outcome(&format!("switchml ({workers} workers)"), elems, &out, json);
        text.push_str(&format!("\n  wrote {frames} frames to {pcap_path}"));
        return Ok(text);
    }

    let trace_n: usize = args.get("trace", 0)?;
    let (out, trace_text) = if trace_n > 0 {
        let mut log = EventLog::new(trace_n);
        let out = run_switchml_traced(&sc, &mut log).map_err(|e| e.to_string())?;
        (out, Some(log.render()))
    } else {
        (run_switchml(&sc).map_err(|e| e.to_string())?, None)
    };
    let mut text = render_outcome(&format!("switchml ({workers} workers)"), elems, &out, json);
    if let Some(t) = trace_text {
        text.push_str("\n--- first packet events ---\n");
        text.push_str(&t);
    }
    Ok(text)
}

/// `baseline`: one of the comparison strategies.
pub fn baseline(args: &Args) -> Result<String, String> {
    args.assert_known(&[
        "strategy",
        "workers",
        "elems",
        "bandwidth-gbps",
        "loss",
        "json",
    ])?;
    let workers: usize = args.get("workers", 8)?;
    let elems: usize = args.get("elems", 1_000_000)?;
    let loss: f64 = args.get("loss", 0.0)?;
    let bw = gbps(args)?;
    let json = args.switch("json");
    let strategy = args.get_str("strategy", "gloo");

    let out = match strategy.as_str() {
        "gloo" | "nccl" => {
            let mut sc = if strategy == "gloo" {
                RingScenario::gloo(workers, elems)
            } else {
                RingScenario::nccl(workers, elems)
            };
            sc.link.bandwidth_bps = bw;
            sc.link = sc.link.with_loss(loss);
            run_ring(&sc).map_err(|e| e.to_string())?
        }
        "hd" => {
            let mut sc = HdScenario::new(workers, elems);
            sc.link.bandwidth_bps = bw;
            sc.link = sc.link.with_loss(loss);
            run_hd(&sc).map_err(|e| e.to_string())?
        }
        "ps-dedicated" | "ps-colocated" => {
            let mut base = SwitchMLScenario::new(workers, elems);
            base.link.bandwidth_bps = bw;
            base.link = base.link.with_loss(loss);
            let placement = if strategy == "ps-dedicated" {
                PsPlacement::Dedicated
            } else {
                PsPlacement::Colocated
            };
            run_ps(&PsScenario::new(base, placement)).map_err(|e| e.to_string())?
        }
        other => {
            return Err(format!(
                "--strategy: unknown '{other}' (gloo|nccl|hd|ps-dedicated|ps-colocated)"
            ))
        }
    };
    Ok(render_outcome(&strategy, elems, &out, json))
}

/// `tune`: §3.6 pool sizing plus the pipeline resource report.
pub fn tune(args: &Args) -> Result<String, String> {
    args.assert_known(&["bandwidth-gbps", "delay-us", "k", "workers", "json"])?;
    let bw = gbps(args)?;
    let delay_ns = args.get::<u64>("delay-us", 15)? * 1_000;
    let k: usize = args.get("k", 32)?;
    let workers: usize = args.get("workers", 8)?;
    let s = tune_pool_size(bw, delay_ns, k);
    let proto = Protocol {
        n_workers: workers,
        k,
        pool_size: s,
        ..Protocol::default()
    };
    let model = PipelineModel::default();
    let report = model.validate(&proto).map_err(|e| e.to_string())?;
    if args.switch("json") {
        Ok(serde_json::json!({
            "pool_size": s,
            "stages_used": report.stages_used,
            "pool_bytes": report.pool_bytes,
            "bookkeeping_bytes": report.bookkeeping_bytes,
            "sram_fraction": report.sram_fraction,
            "parse_bytes": report.parse_bytes,
        })
        .to_string())
    } else {
        Ok(format!(
            "pool size s = {s}  (BDP {} B / packet {} B)\n\
             switch resources: {} stages, {} B pool registers + {} B bookkeeping \
             ({:.2}% of SRAM), {} parsed bytes/packet",
            bw as u128 * delay_ns as u128 / 8 / 1_000_000_000,
            switchml_core::packet::wire_bytes(k),
            report.stages_used,
            report.pool_bytes,
            report.bookkeeping_bytes,
            report.sram_fraction * 100.0,
            report.parse_bytes,
        ))
    }
}

/// `train`: real training with quantized aggregation.
pub fn train(args: &Args) -> Result<String, String> {
    args.assert_known(&[
        "workers",
        "epochs",
        "scale",
        "mode",
        "hidden",
        "byzantine",
        "json",
    ])?;
    let scale: f64 = args.get("scale", 1e6)?;
    let agg = match args.get_str("mode", "f32").as_str() {
        "exact" => Aggregation::Exact,
        "f32" => Aggregation::Fixed32 { f: scale },
        "f16" => Aggregation::Float16 {
            f: scale.min(1000.0),
        },
        "sign" => Aggregation::SignSgd,
        other => return Err(format!("--mode: unknown '{other}' (exact|f32|f16|sign)")),
    };
    let cfg = TrainConfig {
        n_workers: args.get("workers", 4)?,
        epochs: args.get("epochs", 10)?,
        batch_per_worker: 16,
        lr: if agg == Aggregation::SignSgd {
            0.02
        } else {
            0.1
        },
        seed: 3,
        agg,
        hidden: args.get("hidden", 0)?,
        byzantine: args.get("byzantine", 0)?,
    };
    let (tr, te) = gaussian_blobs(1200, 8, 4, 4.0, 2024).train_test_split(0.25);
    let r = train_model(&tr, &te, &cfg);
    if args.switch("json") {
        Ok(serde_json::json!({
            "accuracy_per_epoch": r.accuracy_per_epoch,
            "final_accuracy": r.final_accuracy,
            "diverged": r.diverged,
            "max_grad_abs": r.max_grad_abs,
        })
        .to_string())
    } else {
        Ok(format!(
            "final accuracy {:.1}%  (diverged: {}, max |grad| {:.3})\nper-epoch: {}",
            r.final_accuracy * 100.0,
            r.diverged,
            r.max_grad_abs,
            r.accuracy_per_epoch
                .iter()
                .map(|a| format!("{:.1}", a * 100.0))
                .collect::<Vec<_>>()
                .join(" "),
        ))
    }
}

/// `udp`: the protocol over real loopback sockets (or the in-memory
/// channel fabric for an apples-to-apples comparison), with burst I/O
/// and optional multi-core sharding.
pub fn udp(args: &Args) -> Result<String, String> {
    args.assert_known(&[
        "workers",
        "elems",
        "loss",
        "transport",
        "burst",
        "cores",
        "runner",
        "threads",
    ])?;
    use switchml_transport::channel::channel_fabric;
    use switchml_transport::lossy::lossy_fabric;
    use switchml_transport::reactor::run_allreduce_reactor;
    use switchml_transport::runner::{run_allreduce, RunConfig, RunReport};
    use switchml_transport::shard::{run_allreduce_sharded, sharded_fabric_size};
    use switchml_transport::udp::udp_fabric;
    use switchml_transport::Port;

    let workers: usize = args.get("workers", 2)?;
    let elems: usize = args.get("elems", 4096)?;
    let loss: f64 = args.get("loss", 0.0)?;
    let transport = args.get_str("transport", "udp");
    let burst: usize = args.get("burst", 8)?;
    let cores: usize = args.get("cores", 1)?;
    let runner = args.get_str("runner", "threaded");
    let threads: usize = args.get("threads", 2)?;
    if transport != "udp" && transport != "channel" {
        return Err(format!(
            "--transport: expected udp|channel, got '{transport}'"
        ));
    }
    if runner != "threaded" && runner != "reactor" {
        return Err(format!(
            "--runner: expected threaded|reactor, got '{runner}'"
        ));
    }
    if burst == 0 || cores == 0 || threads == 0 {
        return Err("--burst, --cores and --threads must be at least 1".into());
    }
    let proto = Protocol {
        n_workers: workers,
        pool_size: 32,
        rto_ns: 2_000_000,
        ..Protocol::default()
    };
    let cfg = RunConfig {
        n_cores: cores,
        burst,
        ..RunConfig::default()
    };
    let updates: Vec<Vec<Vec<f32>>> = (0..workers)
        .map(|w| vec![vec![(w + 1) as f32; elems]])
        .collect();
    let expect: f32 = (1..=workers).map(|x| x as f32).sum();

    /// Reactor when asked for, single-switch runner for one core,
    /// sharded (thread-per-engine) runner otherwise.
    fn drive<P: Port + 'static>(
        ports: Vec<P>,
        updates: Vec<Vec<Vec<f32>>>,
        proto: &Protocol,
        cfg: &RunConfig,
        reactor_threads: Option<usize>,
    ) -> switchml_core::Result<RunReport> {
        match reactor_threads {
            Some(t) => run_allreduce_reactor(ports, updates, proto, cfg, t),
            None if cfg.n_cores > 1 => run_allreduce_sharded(ports, updates, proto, cfg),
            None => run_allreduce(ports, updates, proto, cfg),
        }
    }

    let reactor_threads = (runner == "reactor").then_some(threads);
    let size = if cores > 1 || reactor_threads.is_some() {
        sharded_fabric_size(workers, cores)
    } else {
        workers + 1
    };
    // Loss is injected by the deterministic fault wrapper over either
    // fabric; real sockets exercise the retransmission path on top of
    // whatever the kernel itself drops.
    let report = match (transport.as_str(), loss > 0.0) {
        ("channel", false) => drive(channel_fabric(size), updates, &proto, &cfg, reactor_threads),
        ("channel", true) => {
            let (ports, _) = lossy_fabric(channel_fabric(size), loss, 42);
            drive(ports, updates, &proto, &cfg, reactor_threads)
        }
        ("udp", false) => {
            let ports = udp_fabric(size).map_err(|e| e.to_string())?;
            drive(ports, updates, &proto, &cfg, reactor_threads)
        }
        _ => {
            let ports = udp_fabric(size).map_err(|e| e.to_string())?;
            let (ports, _) = lossy_fabric(ports, loss, 42);
            drive(ports, updates, &proto, &cfg, reactor_threads)
        }
    }
    .map_err(|e| e.to_string())?;

    let got = report.results[0][0][0];
    let mut out = format!(
        "all-reduce of {elems} elems across {workers} workers in {:?}\n\
         transport {transport}, {cores} core(s), burst {burst}, runner {runner}\n\
         result[0] = {got} (expected {expect}), retransmissions: {}, send errors: {}",
        report.wall,
        report.worker_stats.iter().map(|s| s.retx).sum::<u64>(),
        report.transport_stats.send_errors,
    );
    if let Some(r) = &report.reactor {
        out.push_str(&format!(
            "\nreactor: {} thread(s), {:.1} engines/thread, {:.0} polls/s, \
             {} timer fires, {} cascades",
            r.threads,
            r.engines_per_thread(),
            r.polls_per_sec(report.wall),
            r.timer_fires,
            r.cascades,
        ));
    }
    Ok(out)
}

/// `ctrl`: controller-managed jobs on the simulated rack — lifecycle,
/// heartbeat-driven failure detection, live shrink, switch failover.
pub fn ctrl(args: &Args) -> Result<String, String> {
    args.assert_known(&[
        "workers",
        "jobs",
        "switches",
        "elems",
        "k",
        "pool",
        "loss",
        "seed",
        "fail-worker",
        "fail-at-us",
        "failover-at-us",
        "json",
    ])?;
    use switchml_ctrl::netsim::{run_ctrl, CtrlScenario};

    let mut sc = CtrlScenario {
        n_workers: args.get("workers", 4)?,
        n_jobs: args.get("jobs", 1)?,
        n_switches: args.get("switches", 1)?,
        elems: args.get("elems", 4096)?,
        k: args.get("k", 8)?,
        pool_size: args.get("pool", 8)?,
        loss: args.get("loss", 0.0)?,
        seed: args.get("seed", 1)?,
        deadline_ms: 5_000,
        ..CtrlScenario::default()
    };
    let fail_worker: i64 = args.get("fail-worker", -1)?;
    if fail_worker >= 0 {
        sc.fail_worker = Some((fail_worker as usize, args.get("fail-at-us", 25)?));
    }
    let failover_at: i64 = args.get("failover-at-us", -1)?;
    if failover_at >= 0 {
        if sc.n_switches < 2 {
            return Err("--failover-at-us needs --switches 2 (or more)".into());
        }
        sc.fail_over = Some((failover_at as u64, 0, 1));
    }

    let out = run_ctrl(&sc);
    if args.switch("json") {
        let jobs: Vec<serde_json::Value> = (0..sc.n_jobs)
            .map(|j| {
                serde_json::json!({
                    "job": j,
                    "epoch": out.final_epoch[j],
                    "workers": out.final_n[j],
                    "scaling_factor": out.final_f[j],
                })
            })
            .collect();
        Ok(serde_json::json!({
            "finished": out.finished,
            "jobs": jobs,
            "events": out.events,
            "sim_end_ns": out.report.end_time.0,
        })
        .to_string())
    } else {
        let mut text = format!(
            "control plane: {} job(s) x {} worker(s), {} switch(es) — {}\n",
            sc.n_jobs,
            sc.n_workers,
            sc.n_switches,
            if out.finished {
                "all surviving workers completed"
            } else {
                "DID NOT COMPLETE within the deadline"
            },
        );
        for j in 0..sc.n_jobs {
            text.push_str(&format!(
                "  job {j}: epoch {} with {} worker(s), f = {:.3e}\n",
                out.final_epoch[j], out.final_n[j], out.final_f[j],
            ));
        }
        if out.events.is_empty() {
            text.push_str("  (no controller events)");
        } else {
            text.push_str("  controller events:\n");
            for e in &out.events {
                text.push_str(&format!("    {e}\n"));
            }
        }
        Ok(text.trim_end().to_string())
    }
}

/// `scenario`: the declarative chaos lab's front door — list the
/// curated library, print one scenario as `.scenario` JSON, run one by
/// name (or from a file) on any transport, or replay the standing
/// regression suite CI gates on. Any violated oracle exits nonzero.
pub fn scenario(args: &Args) -> Result<String, String> {
    args.assert_known(&["transport", "file", "json"])?;
    use switchml_scenario::{library, run_scenario, Scenario, ScenarioReport, Transport};

    let json = args.switch("json");
    let sel = args.get_str("transport", "all");
    let selected: Vec<Transport> = if sel == "all" {
        Transport::ALL.to_vec()
    } else {
        vec![Transport::parse(&sel)?]
    };
    let report_json = |r: &ScenarioReport| -> serde_json::Value {
        serde_json::json!({
            "scenario": r.scenario,
            "transport": r.transport.name(),
            "completed": r.completed,
            "passed": r.passed(),
            "violations": r.violations,
            "error": r.error,
            "fingerprint": format!("{:#018x}", r.fingerprint),
            "wall_ms": r.wall_ms,
        })
    };

    match args.positional(0).unwrap_or("list") {
        "list" => {
            let lib = library::all();
            if json {
                let rows: Vec<serde_json::Value> = lib
                    .iter()
                    .map(|sc| {
                        let ts: Vec<&str> =
                            sc.supported_transports().iter().map(|t| t.name()).collect();
                        let oracles: Vec<String> = sc.expect.iter().map(|e| e.label()).collect();
                        serde_json::json!({
                            "name": sc.name,
                            "descr": sc.descr,
                            "runner": sc.runner.name(),
                            "transports": ts,
                            "expect": oracles,
                        })
                    })
                    .collect();
                Ok(serde_json::to_value(&rows).to_string())
            } else {
                let mut out = format!("scenario library: {} scenarios", lib.len());
                for sc in &lib {
                    let ts: Vec<&str> =
                        sc.supported_transports().iter().map(|t| t.name()).collect();
                    let oracles: Vec<String> = sc.expect.iter().map(|e| e.label()).collect();
                    out.push_str(&format!(
                        "\n  {}  [{} | {}]\n      {}\n      expects: {}",
                        sc.name,
                        sc.runner.name(),
                        ts.join(","),
                        sc.descr,
                        oracles.join(", "),
                    ));
                }
                Ok(out)
            }
        }
        "show" => {
            let name = args.positional(1).ok_or("scenario show: need a NAME")?;
            let sc = library::find(name)
                .ok_or_else(|| format!("unknown scenario '{name}' (see `scenario list`)"))?;
            Ok(sc.to_json_string())
        }
        "run" => {
            let file = args.get_str("file", "");
            let sc = if !file.is_empty() {
                let text = std::fs::read_to_string(&file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                Scenario::from_json_str(&text)?
            } else {
                let name = args
                    .positional(1)
                    .ok_or("scenario run: need a NAME or --file FILE")?;
                library::find(name)
                    .ok_or_else(|| format!("unknown scenario '{name}' (see `scenario list`)"))?
            };
            let ts: Vec<Transport> = sc
                .supported_transports()
                .into_iter()
                .filter(|t| selected.contains(t))
                .collect();
            if ts.is_empty() {
                return Err(format!(
                    "scenario '{}' does not run on --transport {sel} (supports: {})",
                    sc.name,
                    sc.supported_transports()
                        .iter()
                        .map(|t| t.name())
                        .collect::<Vec<_>>()
                        .join(","),
                ));
            }
            let mut reports = Vec::new();
            for t in ts {
                reports.push(run_scenario(&sc, t)?);
            }
            let failed = reports.iter().any(|r| !r.passed());
            let text = if json {
                let rows: Vec<serde_json::Value> = reports.iter().map(&report_json).collect();
                serde_json::to_value(&rows).to_string()
            } else {
                reports
                    .iter()
                    .map(|r| r.summary())
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            if failed {
                Err(text)
            } else {
                Ok(text)
            }
        }
        "suite" => {
            // The standing regression gate: the full library on every
            // selected transport, except that UDP runs only the curated
            // subset (CI time budget) — `scenario run NAME --transport
            // udp` runs any scenario on demand.
            let mut lines = Vec::new();
            let mut rows = Vec::new();
            let mut failures = 0usize;
            for sc in library::all() {
                for t in sc.supported_transports() {
                    if !selected.contains(&t) {
                        continue;
                    }
                    if t == Transport::Udp && !library::udp_subset().contains(&sc.name.as_str()) {
                        continue;
                    }
                    match run_scenario(&sc, t) {
                        Ok(rep) => {
                            if !rep.passed() {
                                failures += 1;
                            }
                            if json {
                                rows.push(report_json(&rep));
                            }
                            lines.push(rep.summary());
                        }
                        Err(e) => {
                            failures += 1;
                            lines.push(format!("{} [{}]: ERROR — {e}", sc.name, t.name()));
                        }
                    }
                }
            }
            let text = if json {
                serde_json::json!({
                    "suite": "scenario-library",
                    "runs": lines.len(),
                    "failures": failures,
                    "reports": rows,
                })
                .to_string()
            } else {
                format!(
                    "scenario suite: {} run(s), {} failure(s)\n  {}",
                    lines.len(),
                    failures,
                    lines.join("\n  ")
                )
            };
            if failures == 0 {
                Ok(text)
            } else {
                Err(text)
            }
        }
        other => Err(format!(
            "scenario: unknown action '{other}' (list|show|run|suite)"
        )),
    }
}

/// `chaos`: the live chaos harness — one seeded fault schedule
/// (probabilistic loss/dup/reorder plus scripted straggler stalls,
/// a worker kill, or a switch-process restart) against the real
/// threaded transports, held to the paper's correctness bar: either
/// the run completes with every worker's aggregate bit-identical, or
/// it degrades to a reported error. Silent corruption exits nonzero.
pub fn chaos(args: &Args) -> Result<String, String> {
    args.assert_known(&[
        "transport",
        "workers",
        "elems",
        "cores",
        "burst",
        "seed",
        "loss",
        "dup",
        "reorder",
        "straggler",
        "stall-us",
        "kill",
        "kill-at-ms",
        "ctrl",
        "switch-restart-ms",
        "rto",
        "rto-us",
        "max-wall-ms",
        "json",
    ])?;
    use switchml_scenario::{
        run_scenario, Detail, JobSpec, KillWhen, RtoMode, RunnerKind, Scenario, Topology, Transport,
    };

    let workers: usize = args.get("workers", 3)?;
    let elems: usize = args.get("elems", 4096)?;
    let cores: usize = args.get("cores", 1)?;
    let burst: usize = args.get("burst", 8)?;
    let transport = args.get_str("transport", "channel");
    if transport != "udp" && transport != "channel" {
        return Err(format!(
            "--transport: expected udp|channel, got '{transport}'"
        ));
    }
    if workers < 2 || cores == 0 || burst == 0 {
        return Err("need --workers >= 2 and --cores/--burst >= 1".into());
    }
    let rto_mode =
        RtoMode::parse(&args.get_str("rto", "adaptive")).map_err(|e| format!("--rto: {e}"))?;
    let straggler_w: i64 = args.get("straggler", -1)?;
    let stall_us: u64 = args.get("stall-us", 50)?;
    let kill_w: i64 = args.get("kill", -1)?;
    let kill_at_ms: u64 = args.get("kill-at-ms", 5)?;
    let restart_ms: i64 = args.get("switch-restart-ms", -1)?;
    let ctrl_mode = args.switch("ctrl") || restart_ms >= 0;
    if (straggler_w >= 0 && straggler_w as usize >= workers)
        || (kill_w >= 0 && kill_w as usize >= workers)
    {
        return Err("--straggler/--kill name a worker index < --workers".into());
    }
    let json = args.switch("json");

    // The flags compile to one declarative scenario; the DSL engine
    // owns the endpoint mapping, the fault wiring, and the
    // bit-identical bar (observe-only: no expectations, but silent
    // corruption still surfaces as a violation).
    let mut faults = fault_flags(args, "loss", 0.02, 0.02, 0.05)?;
    if straggler_w >= 0 {
        faults.stragglers.push((straggler_w as usize, stall_us));
    }
    if kill_w >= 0 {
        faults
            .kills
            .push((kill_w as usize, KillWhen::ElapsedUs(kill_at_ms * 1_000)));
    }
    if restart_ms >= 0 {
        faults.switch_restart_ms = Some(restart_ms as u64);
    }
    let sc = Scenario {
        name: format!("cli-chaos-{transport}"),
        descr: "ad-hoc chaos schedule from CLI flags".into(),
        runner: if ctrl_mode {
            RunnerKind::Ctrl
        } else if cores > 1 {
            RunnerKind::Sharded
        } else {
            RunnerKind::Plain
        },
        topology: Topology {
            workers,
            cores,
            // The harness's historical protocol: paper-default packet
            // size over a 32-slot pool.
            k: Protocol::default().k,
            pool_size: 32,
            ..Topology::default()
        },
        jobs: vec![JobSpec {
            elems,
            ..JobSpec::default()
        }],
        faults,
        expect: Vec::new(),
        max_wall_ms: args.get("max-wall-ms", 10_000)?,
        rto_us: args.get("rto-us", 2_000)?,
        rto_mode,
        burst,
        only_transports: None,
    };
    let rep =
        run_scenario(&sc, Transport::parse(&transport)?).map_err(|e| format!("chaos: {e}"))?;

    if ctrl_mode {
        // Controller-managed run: a killed worker is detected by
        // heartbeat silence and the job shrinks and resumes under a
        // bumped epoch; a switch restart is recovered by an in-place
        // failover. The DSL engine checks the §5.4 bar unconditionally
        // — survivor disagreement or a reference mismatch lands in the
        // report's violations, a failed run in its error.
        if !rep.violations.is_empty() {
            return Err(format!("chaos (ctrl): {}", rep.violations.join("; ")));
        }
        let report = match rep.detail {
            Detail::Ctrl(r) => r,
            _ => {
                return Err(format!(
                    "chaos (ctrl): {}",
                    rep.error.unwrap_or_else(|| "run produced no report".into())
                ))
            }
        };

        let retx: u64 = report.worker_stats.iter().map(|s| s.retx).sum();
        let srtt_us: f64 = report
            .worker_stats
            .iter()
            .map(|s| s.srtt_ns)
            .max()
            .unwrap_or(0) as f64
            / 1e3;
        if json {
            let injected = serde_json::json!({
                "send_drops": report.transport_stats.injected_send_drops,
                "recv_drops": report.transport_stats.injected_recv_drops,
                "dups": report.transport_stats.injected_dups,
                "reorders": report.transport_stats.injected_reorders,
            });
            let per_pool: Vec<serde_json::Value> = report
                .per_pool_switch_stats
                .iter()
                .map(|(job, s)| {
                    serde_json::json!({
                        "wire_job": *job,
                        "updates": s.updates,
                        "duplicates": s.duplicates,
                        "completions": s.completions,
                        "stale_epoch_drops": s.stale_epoch,
                    })
                })
                .collect();
            return Ok(serde_json::json!({
                "outcome": "bit-identical",
                "mode": "ctrl",
                "transport": transport,
                "workers": workers,
                "survivors": report.final_n,
                "epoch": report.final_epoch,
                "retransmissions": retx,
                "injected_faults": report.transport_stats.injected_faults(),
                "injected": injected,
                "stale_epoch_drops": report.switch_stats.stale_epoch,
                "per_pool": per_pool,
                "rtt_samples": report.worker_stats.iter().map(|s| s.rtt_samples).sum::<u64>(),
                "srtt_us": srtt_us,
                "events": report.events,
                "wall_ms": report.wall.as_millis() as u64,
            })
            .to_string());
        }
        let mut text = format!(
            "chaos (ctrl, {transport}): {} of {workers} worker(s) finished epoch {} \
             bit-identical in {:?}\n  \
             retransmissions: {retx}   injected faults: {}   \
             stale-epoch drops at switch: {}   srtt: {srtt_us:.1} us",
            report.final_n,
            report.final_epoch,
            report.wall,
            report.transport_stats.injected_faults(),
            report.switch_stats.stale_epoch,
        );
        text.push_str(&format!(
            "\n  injected: send-drops {}  recv-drops {}  dups {}  reorders {}",
            report.transport_stats.injected_send_drops,
            report.transport_stats.injected_recv_drops,
            report.transport_stats.injected_dups,
            report.transport_stats.injected_reorders,
        ));
        if !report.per_pool_switch_stats.is_empty() {
            text.push_str("\n  per-pool switch counters (one pool per job generation):");
            for (job, s) in &report.per_pool_switch_stats {
                text.push_str(&format!(
                    "\n    wire-job {job}: updates {}  dups {}  completions {}  \
                     stale-epoch drops {}",
                    s.updates, s.duplicates, s.completions, s.stale_epoch,
                ));
            }
        }
        if !report.events.is_empty() {
            text.push_str("\n  controller events:");
            for e in &report.events {
                text.push_str(&format!("\n    {e}"));
            }
        }
        return Ok(text);
    }

    // Plain data plane: no control plane, so a kill must surface as a
    // reported error (clean degradation), never as wrong numbers. The
    // DSL engine turns silent corruption into a violation.
    if !rep.violations.is_empty() {
        return Err(format!("chaos: {}", rep.violations.join("; ")));
    }
    match rep.detail {
        Detail::Run(report) => {
            let retx: u64 = report.worker_stats.iter().map(|s| s.retx).sum();
            let samples: u64 = report.worker_stats.iter().map(|s| s.rtt_samples).sum();
            let srtt_us = report
                .worker_stats
                .iter()
                .map(|s| s.srtt_ns)
                .max()
                .unwrap_or(0) as f64
                / 1e3;
            if json {
                Ok(serde_json::json!({
                    "outcome": "bit-identical",
                    "mode": "plain",
                    "transport": transport,
                    "workers": workers,
                    "cores": cores,
                    "retransmissions": retx,
                    "injected_faults": report.transport_stats.injected_faults(),
                    "rtt_samples": samples,
                    "srtt_us": srtt_us,
                    "wall_ms": report.wall.as_millis() as u64,
                })
                .to_string())
            } else {
                Ok(format!(
                    "chaos ({transport}, {cores} core(s)): completed bit-identical to the \
                     sequential reference in {:?}\n  \
                     retransmissions: {retx}   injected faults: {}   \
                     rtt samples: {samples}   srtt: {srtt_us:.1} us",
                    report.wall,
                    report.transport_stats.injected_faults(),
                ))
            }
        }
        _ => {
            let e = rep.error.unwrap_or_else(|| "did not complete".into());
            if json {
                Ok(serde_json::json!({
                    "outcome": "clean-degradation",
                    "mode": "plain",
                    "transport": transport,
                    "error": e,
                })
                .to_string())
            } else {
                Ok(format!(
                    "chaos ({transport}): degraded cleanly (no silent corruption)\n  {e}"
                ))
            }
        }
    }
}

/// `sched`: multi-tenant churn under the slot scheduler. Submits a
/// seeded population of jobs (mixed priority classes, staggered
/// arrivals) against one shared switch over a real transport, and
/// reports the churn metrics the multi-job benchmark tracks:
/// arrivals/sec, p99 admission-to-first-aggregate, and aggregate
/// tensor-element throughput. With `--noisy-loss` it runs the
/// scenario twice — storm-free baseline, then a loss storm aimed at
/// job 0's ports — and *measures* isolation: quiet tenants must
/// absorb zero injected faults and keep their p99 completion latency
/// within 2x of the baseline, or the command exits nonzero.
pub fn sched(args: &Args) -> Result<String, String> {
    args.assert_known(&[
        "transport",
        "jobs",
        "workers",
        "elems",
        "capacity",
        "arrival-ms",
        "high-every",
        "noisy-loss",
        "seed",
        "cores",
        "max-wall-ms",
        "bench",
        "json",
    ])?;
    use std::time::Duration;
    use switchml_ctrl::sched::SchedRunReport;
    use switchml_scenario::{
        run_scenario, Detail, JobClass, JobSpec, RtoMode, RunnerKind, Scenario, Topology, Transport,
    };

    let n_jobs: usize = args.get("jobs", 6)?;
    let workers: usize = args.get("workers", 2)?;
    // Large enough that aggregation work, not scheduler quantum
    // noise, dominates each job's completion latency — the isolation
    // bound compares p99s across two runs.
    let elems: usize = args.get("elems", 16384)?;
    let capacity: u32 = args.get("capacity", 32)?;
    let arrival_ms: u64 = args.get("arrival-ms", 4)?;
    let high_every: usize = args.get("high-every", 3)?;
    let cores: usize = args.get("cores", 1)?;
    let bench_file = args.get_str("bench", "");
    let transport = args.get_str("transport", "channel");
    let json = args.switch("json");
    if n_jobs == 0 || n_jobs > 64 || workers < 2 {
        return Err("need 1..=64 --jobs and --workers >= 2".into());
    }
    match transport.as_str() {
        "udp" | "channel" => {}
        "both" if !bench_file.is_empty() => {}
        _ => {
            return Err(format!(
                "--transport: expected udp|channel (or both with --bench), got '{transport}'"
            ))
        }
    }

    // The flags compile to one declarative scenario (observe-only: the
    // churn metrics and the isolation verdict below are computed from
    // the full report). The storm, when any, is aimed at the first
    // tenant's workers.
    let mut faults = fault_flags(args, "noisy-loss", 0.0, 0.0, 0.0)?;
    faults.target_job = Some(0);
    let noisy_loss = faults.loss;
    let seed = faults.seed;
    let base_sc = Scenario {
        name: "cli-sched".into(),
        descr: "ad-hoc churn population from CLI flags".into(),
        runner: RunnerKind::Sched,
        topology: Topology {
            workers,
            cores,
            // The churn benchmark's historical protocol: small packets
            // over a small per-job pool so slot pressure is real.
            k: 8,
            pool_size: 16,
            capacity,
            ..Topology::default()
        },
        jobs: (0..n_jobs)
            .map(|j| JobSpec {
                elems,
                arrival_ms: arrival_ms * j as u64,
                class: if high_every > 0 && j % high_every == high_every - 1 {
                    JobClass::High
                } else {
                    JobClass::BestEffort
                },
                weight: 1 + (j as u32 % 2),
                // The (noisy) first tenant is capped so a storm cannot
                // also hog the pool.
                quota: if j == 0 { capacity / 2 } else { 0 },
                min_slots: 2,
            })
            .collect(),
        faults,
        expect: Vec::new(),
        max_wall_ms: args.get("max-wall-ms", 30_000)?,
        rto_us: 2_000,
        rto_mode: RtoMode::Fixed,
        burst: 8,
        only_transports: None,
    };

    let run_one = |transport: &str, loss: f64| -> Result<SchedRunReport, String> {
        let mut sc = base_sc.clone();
        sc.faults.loss = loss;
        let rep = run_scenario(&sc, Transport::parse(transport)?)
            .map_err(|e| format!("sched ({transport}): {e}"))?;
        if let Some(e) = rep.error {
            return Err(format!("sched ({transport}): {e}"));
        }
        match rep.detail {
            Detail::Sched(r) => Ok(r),
            _ => Err(format!("sched ({transport}): run produced no report")),
        }
    };

    let p99 = |mut xs: Vec<Duration>| -> Option<Duration> {
        if xs.is_empty() {
            return None;
        }
        xs.sort();
        let idx = ((xs.len() as f64) * 0.99).ceil() as usize;
        Some(xs[idx.saturating_sub(1).min(xs.len() - 1)])
    };

    // Churn metrics + isolation verdict for one transport. Violations
    // make the whole command fail after reporting.
    let mut violations: Vec<String> = Vec::new();
    let mut measure = |transport: &str| -> Result<serde_json::Value, String> {
        let baseline = run_one(transport, 0.0)?;
        if !baseline.all_complete() {
            return Err(format!(
                "sched ({transport}): baseline churn did not drain: {:?}",
                baseline.events
            ));
        }
        let admitted = baseline.outcomes.iter().filter(|o| o.admitted).count();
        let wall_s = baseline.wall.as_secs_f64().max(1e-9);
        let arrivals_per_sec = admitted as f64 / wall_s;
        let p99_first_us = p99(baseline
            .outcomes
            .iter()
            .filter_map(|o| o.first_aggregate)
            .collect())
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
        // Aggregate tensor elements: every switch-side completion
        // aggregates one k-element chunk across the job's workers.
        let ate: u64 = baseline
            .outcomes
            .iter()
            .map(|o| o.switch_stats.completions * base_sc.topology.k as u64)
            .sum();
        let ate_per_sec = ate as f64 / wall_s;

        let isolation = if noisy_loss > 0.0 {
            let stormy = run_one(transport, noisy_loss)?;
            if !stormy.all_complete() {
                violations.push(format!("{transport}: storm churn did not drain"));
            }
            let quiet_p99 = |r: &SchedRunReport| {
                p99(r
                    .outcomes
                    .iter()
                    .filter(|o| o.job != 0)
                    .filter_map(|o| o.completed_at)
                    .collect())
                .unwrap_or_default()
            };
            let (bp, sp) = (quiet_p99(&baseline), quiet_p99(&stormy));
            let noisy = stormy.outcomes.iter().find(|o| o.job == 0).unwrap();
            if noisy.injected_faults == 0 {
                violations.push(format!(
                    "{transport}: loss storm never hit the noisy tenant"
                ));
            }
            let leaked: u64 = stormy
                .outcomes
                .iter()
                .filter(|o| o.job != 0)
                .map(|o| o.injected_faults)
                .sum();
            if leaked > 0 {
                violations.push(format!(
                    "{transport}: {leaked} injected fault(s) attributed to quiet tenants"
                ));
            }
            if sp > bp * 2 + Duration::from_millis(1) {
                violations.push(format!(
                    "{transport}: quiet p99 inflated by the storm: {bp:?} -> {sp:?}"
                ));
            }
            serde_json::json!({
                "noisy_loss": noisy_loss,
                "noisy_injected_faults": noisy.injected_faults,
                "noisy_retransmissions": noisy.worker_stats.retx,
                "quiet_injected_faults": leaked,
                "baseline_quiet_p99_us": bp.as_micros() as u64,
                "storm_quiet_p99_us": sp.as_micros() as u64,
            })
        } else {
            serde_json::Value::Null
        };

        Ok(serde_json::json!({
            "transport": transport,
            "jobs": n_jobs,
            "admitted": admitted,
            "all_complete": baseline.all_complete(),
            "wall_ms": baseline.wall.as_millis() as u64,
            "arrivals_per_sec": arrivals_per_sec,
            "p99_admission_to_first_aggregate_us": p99_first_us,
            "aggregate_ate_per_sec": ate_per_sec,
            "total_resizes": baseline.outcomes.iter().map(|o| o.resizes as u64).sum::<u64>(),
            "stale_epoch_drops": baseline.outcomes.iter()
                .map(|o| o.switch_stats.stale_epoch).sum::<u64>(),
            "isolation": isolation,
        }))
    };

    let transports: Vec<&str> = if transport == "both" {
        vec!["channel", "udp"]
    } else {
        vec![transport.as_str()]
    };
    let mut sections = Vec::new();
    for t in &transports {
        sections.push(measure(t)?);
    }

    let config = serde_json::json!({
        "jobs": n_jobs,
        "workers_per_job": workers,
        "elems": elems,
        "capacity_slots": capacity,
        "arrival_ms": arrival_ms,
        "high_every": high_every,
        "seed": seed,
        "noisy_loss": noisy_loss,
    });
    let doc = serde_json::json!({
        "bench": "multijob_churn",
        "config": config,
        "transports": sections,
        "isolation_violations": violations,
    });
    if !bench_file.is_empty() {
        std::fs::write(&bench_file, serde_json::to_string_pretty(&doc).unwrap())
            .map_err(|e| format!("cannot write {bench_file}: {e}"))?;
    }

    let text = if json {
        doc.to_string()
    } else {
        let mut out = String::from("sched: multi-tenant churn");
        for s in &sections {
            out.push_str(&format!(
                "\n  {}: {} of {} job(s) admitted, drained in {} ms\n    \
                 arrivals/sec: {:.1}   p99 admission→first-aggregate: {} us   \
                 aggregate throughput: {:.0} elem/s   repartitions: {}",
                s["transport"].as_str().unwrap(),
                s["admitted"],
                s["jobs"],
                s["wall_ms"],
                s["arrivals_per_sec"].as_f64().unwrap(),
                s["p99_admission_to_first_aggregate_us"],
                s["aggregate_ate_per_sec"].as_f64().unwrap(),
                s["total_resizes"],
            ));
            if !s["isolation"].is_null() {
                let i = &s["isolation"];
                out.push_str(&format!(
                    "\n    isolation: noisy tenant absorbed {} fault(s) ({} retx); \
                     quiet tenants absorbed {}; quiet p99 {} us baseline -> {} us under storm",
                    i["noisy_injected_faults"],
                    i["noisy_retransmissions"],
                    i["quiet_injected_faults"],
                    i["baseline_quiet_p99_us"],
                    i["storm_quiet_p99_us"],
                ));
            }
        }
        if !bench_file.is_empty() {
            out.push_str(&format!("\n  wrote {bench_file}"));
        }
        out
    };
    if violations.is_empty() {
        Ok(text)
    } else {
        Err(format!(
            "{text}\n  ISOLATION VIOLATIONS:\n    {}",
            violations.join("\n    ")
        ))
    }
}

/// `hier`: two-level (leaf + spine) aggregation over a real transport,
/// optionally compared against the flat star on the same workload.
/// The flat star funnels every worker into one switch socket; the
/// hierarchy bounds per-socket fan-in to `max(per_rack, racks)`, which
/// is the §6 motivation made measurable on loopback UDP.
pub fn hier(args: &Args) -> Result<String, String> {
    args.assert_known(&[
        "racks",
        "per-rack",
        "elems",
        "transport",
        "threads",
        "burst",
        "loss",
        "seed",
        "kill-rack",
        "kill-at-ms",
        "up-rto-us",
        "flat",
        "json",
    ])?;
    use std::time::Duration;
    use switchml_core::agg;
    use switchml_transport::channel::channel_fabric;
    use switchml_transport::hier::{hier_fabric_size, run_allreduce_hier, HierConfig};
    use switchml_transport::lossy::lossy_fabric;
    use switchml_transport::reactor::run_allreduce_reactor;
    use switchml_transport::runner::{RunConfig, RunReport};
    use switchml_transport::shard::{sharded_channel_fabric, sharded_fabric_size};
    use switchml_transport::udp::udp_fabric;
    use switchml_transport::Port;

    let racks: usize = args.get("racks", 2)?;
    let per_rack: usize = args.get("per-rack", 4)?;
    let elems: usize = args.get("elems", 4096)?;
    let transport = args.get_str("transport", "udp");
    let threads: usize = args.get("threads", 2)?;
    let burst: usize = args.get("burst", 8)?;
    let loss: f64 = args.get("loss", 0.0)?;
    let seed: u64 = args.get("seed", 42)?;
    let kill_rack: i64 = args.get("kill-rack", -1)?;
    let kill_at_ms: u64 = args.get("kill-at-ms", 1)?;
    let up_rto_us: u64 = args.get("up-rto-us", 0)?;
    let compare_flat = args.switch("flat");
    let json = args.switch("json");
    if transport != "udp" && transport != "channel" {
        return Err(format!(
            "--transport: expected udp|channel, got '{transport}'"
        ));
    }
    if racks < 2 || per_rack < 1 {
        return Err("--racks must be >= 2 and --per-rack >= 1".into());
    }
    if kill_rack >= racks as i64 {
        return Err(format!("--kill-rack: rack {kill_rack} >= {racks} racks"));
    }
    let n = racks * per_rack;
    let proto = Protocol {
        n_workers: n,
        pool_size: 32,
        rto_ns: 2_000_000,
        scaling_factor: 10_000.0,
        ..Protocol::default()
    };
    let cfg = RunConfig {
        burst,
        ..RunConfig::default()
    };
    let hc = HierConfig {
        n_threads: threads,
        up_rto_ns: (up_rto_us > 0).then_some(up_rto_us * 1_000),
        kill_leaf: (kill_rack >= 0)
            .then(|| (kill_rack as usize, Duration::from_millis(kill_at_ms))),
        ..HierConfig::new(racks, per_rack)
    };
    let mk_updates = || -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 + (i % 7) as f32 * 0.1)
                    .collect()]
            })
            .collect()
    };

    fn hier_fabric<P: Port + 'static>(
        base: Vec<P>,
        loss: f64,
        seed: u64,
        updates: Vec<Vec<Vec<f32>>>,
        proto: &Protocol,
        cfg: &RunConfig,
        hc: &HierConfig,
    ) -> switchml_core::Result<RunReport> {
        if loss > 0.0 {
            let (ports, _) = lossy_fabric(base, loss, seed);
            run_allreduce_hier(ports, updates, proto, cfg, hc)
        } else {
            run_allreduce_hier(base, updates, proto, cfg, hc)
        }
    }

    let size = hier_fabric_size(racks, per_rack);
    let report = match transport.as_str() {
        "udp" => {
            let base = udp_fabric(size).map_err(|e| e.to_string())?;
            hier_fabric(base, loss, seed, mk_updates(), &proto, &cfg, &hc)
        }
        _ => hier_fabric(
            channel_fabric(size),
            loss,
            seed,
            mk_updates(),
            &proto,
            &cfg,
            &hc,
        ),
    }
    .map_err(|e| e.to_string())?;

    let reference = agg::allreduce(&mk_updates(), &proto).map_err(|e| e.to_string())?;
    let verified = report.results.iter().all(|t| *t == reference);
    if !verified {
        return Err("hierarchical results differ from the sequential reference".into());
    }
    let hr = report.hier.as_ref().expect("hier counters");
    let worker_retx: u64 = report.worker_stats.iter().map(|s| s.retx).sum();
    let up_retx: u64 = hr.leaf_up_stats.iter().map(|s| s.retx).sum();
    let ate = elems as f64 / report.wall.as_secs_f64();

    // The flat star on the same workload: one switch socket absorbing
    // all n workers, reactor-multiplexed on the same thread count.
    let flat = if compare_flat {
        fn flat_drive<P: Port + 'static>(
            ports: Vec<P>,
            loss: f64,
            seed: u64,
            updates: Vec<Vec<Vec<f32>>>,
            proto: &Protocol,
            cfg: &RunConfig,
            threads: usize,
        ) -> switchml_core::Result<RunReport> {
            if loss > 0.0 {
                let (ports, _) = lossy_fabric(ports, loss, seed);
                run_allreduce_reactor(ports, updates, proto, cfg, threads)
            } else {
                run_allreduce_reactor(ports, updates, proto, cfg, threads)
            }
        }
        let flat_report = match transport.as_str() {
            "udp" => {
                let ports = udp_fabric(sharded_fabric_size(n, 1)).map_err(|e| e.to_string())?;
                flat_drive(ports, loss, seed, mk_updates(), &proto, &cfg, threads)
            }
            _ => flat_drive(
                sharded_channel_fabric(n, 1),
                loss,
                seed,
                mk_updates(),
                &proto,
                &cfg,
                threads,
            ),
        }
        .map_err(|e| e.to_string())?;
        if flat_report.results.iter().any(|t| *t != reference) {
            return Err("flat-star results differ from the sequential reference".into());
        }
        Some(flat_report)
    } else {
        None
    };

    if json {
        use serde_json::{json, Value};
        let mut fields: Vec<(String, Value)> = vec![
            ("racks".into(), json!(racks as u64)),
            ("per_rack".into(), json!(per_rack as u64)),
            ("workers".into(), json!(n as u64)),
            ("elems".into(), json!(elems as u64)),
            ("transport".into(), json!(transport)),
            ("threads".into(), json!(threads as u64)),
            ("verified".into(), json!(verified)),
            ("wall_ms".into(), json!(report.wall.as_secs_f64() * 1e3)),
            ("ate_per_sec".into(), json!(ate)),
            ("worker_retx".into(), json!(worker_retx)),
            ("leaf_up_retx".into(), json!(up_retx)),
            (
                "rack_epochs".into(),
                Value::Array(hr.rack_epochs.iter().map(|&e| json!(e as u64)).collect()),
            ),
            ("leaf_reboots".into(), json!(hr.leaf_reboots)),
        ];
        if let Some(f) = &flat {
            fields.push(("flat_wall_ms".into(), json!(f.wall.as_secs_f64() * 1e3)));
            fields.push((
                "flat_ate_per_sec".into(),
                json!(elems as f64 / f.wall.as_secs_f64()),
            ));
            fields.push((
                "hier_speedup".into(),
                json!(f.wall.as_secs_f64() / report.wall.as_secs_f64()),
            ));
        }
        return Ok(Value::Object(fields).to_string());
    }
    let mut out = format!(
        "hierarchical all-reduce: {racks} racks x {per_rack} workers = {n}, {elems} elems\n\
         transport {transport}, {threads} reactor threads, burst {burst}\n\
         verified: {verified}   wall: {:.1} ms   {:.2} M ATE/s\n\
         retransmissions: {worker_retx} worker-hop, {up_retx} leaf->spine\n\
         rack epochs: {:?}   leaf reboots: {}",
        report.wall.as_secs_f64() * 1e3,
        ate / 1e6,
        hr.rack_epochs,
        hr.leaf_reboots,
    );
    if let Some(f) = &flat {
        out.push_str(&format!(
            "\nflat star (same {n} workers, one switch socket): {:.1} ms — hierarchy speedup {:.2}x",
            f.wall.as_secs_f64() * 1e3,
            f.wall.as_secs_f64() / report.wall.as_secs_f64(),
        ));
    }
    Ok(out)
}

/// `check`: the deterministic adversarial schedule explorer
/// (`switchml-check`). Explores the protocol state space under a
/// chosen strategy; a violation shrinks to a minimal schedule,
/// optionally saves a `.trace`, and exits nonzero so CI fails.
pub fn check(args: &Args) -> Result<String, String> {
    use switchml_check::{
        replay, shrink, DelayBoundedExplorer, ExhaustiveExplorer, Expectation, Explorer,
        RandomWalkExplorer, Scenario, SwitchKind, Trace,
    };
    args.assert_known(&[
        "strategy",
        "switch",
        "workers",
        "slots",
        "chunks",
        "k",
        "scale",
        "drops",
        "dups",
        "retx",
        "stale-epochs",
        "d",
        "seed",
        "runs",
        "steps",
        "max-states",
        "max-depth",
        "replay",
        "save-trace",
        "json",
    ])?;
    let json = args.switch("json");

    // Replay mode: re-execute a recorded trace and judge it against
    // its embedded expectation.
    let replay_file = args.get_str("replay", "");
    if !replay_file.is_empty() {
        let text = std::fs::read_to_string(&replay_file)
            .map_err(|e| format!("cannot read {replay_file}: {e}"))?;
        let trace = Trace::from_json_str(&text).map_err(|e| format!("{replay_file}: {e}"))?;
        let outcome = replay(&trace)?;
        let ok = match trace.expect {
            Expectation::Clean => outcome.violation.is_none(),
            Expectation::Violation => outcome.violation.is_some(),
        };
        let text = if json {
            serde_json::json!({
                "trace": replay_file.clone(),
                "applied": outcome.applied as u64,
                "skipped": outcome.skipped as u64,
                "violation": match &outcome.violation {
                    Some(v) => serde_json::json!(format!("{v}")),
                    None => serde_json::Value::Null,
                },
                "as_expected": ok,
            })
            .to_string()
        } else {
            format!(
                "replayed {replay_file}: {} choices applied, {} skipped\n  outcome: {}\n  {}",
                outcome.applied,
                outcome.skipped,
                match &outcome.violation {
                    Some(v) => format!("{v}"),
                    None => "clean".into(),
                },
                if ok { "as expected" } else { "NOT as expected" },
            )
        };
        return if ok { Ok(text) } else { Err(text) };
    }

    let switch = SwitchKind::parse(&args.get_str("switch", "reliable"))?;
    let sc = Scenario {
        switch,
        n_workers: args.get("workers", 2usize)?,
        pool_size: args.get("slots", 1usize)?,
        n_chunks: args.get("chunks", 2u64)?,
        k: args.get("k", 2usize)?,
        scaling: args.get("scale", 64.0f64)?,
        drops: args.get("drops", 1u32)?,
        dups: args.get("dups", 1u32)?,
        retx: args.get("retx", 1u32)?,
        stale_epochs: args.get("stale-epochs", 0u32)?,
        deviations: None,
    };
    sc.validate()?;
    let strategy = args.get_str("strategy", "exhaustive");
    let max_states = args.get("max-states", 2_000_000u64)?;
    let max_depth = args.get("max-depth", 200u64)?;
    let mut explorer: Box<dyn Explorer> = match strategy.as_str() {
        "exhaustive" => Box::new(ExhaustiveExplorer {
            max_states,
            max_depth,
            drain_budget: 10_000,
        }),
        "delay" => Box::new(DelayBoundedExplorer {
            d: args.get("d", 2u32)?,
            max_states,
            max_depth,
            drain_budget: 10_000,
        }),
        "random" => Box::new(RandomWalkExplorer::new(
            args.get("seed", 1u64)?,
            args.get("runs", 200u64)?,
            args.get("steps", 400u64)?,
        )),
        other => return Err(format!("unknown strategy '{other}'")),
    };
    let report = explorer.explore(&sc)?;

    match report.violation {
        None => {
            let text = if json {
                serde_json::json!({
                    "strategy": strategy.clone(),
                    "switch": sc.switch.name(),
                    "states_visited": report.states_visited,
                    "max_depth": report.max_depth,
                    "exhausted": report.exhausted,
                    "violation": serde_json::Value::Null,
                })
                .to_string()
            } else {
                format!(
                    "{} exploration of {}: {} states, depth {} — no violations{}",
                    strategy,
                    sc.switch.name(),
                    report.states_visited,
                    report.max_depth,
                    if report.exhausted {
                        " (space exhausted)"
                    } else {
                        " (caps hit)"
                    },
                )
            };
            Ok(text)
        }
        Some(found) => {
            let oracle = found.violation.oracle.clone();
            let trace = Trace {
                scenario: sc,
                choices: found.choices,
                expect: Expectation::Violation,
                violation: Some((oracle.clone(), found.violation.message.clone())),
            };
            let (shrunk, replays) = shrink(&trace, &oracle);
            let save = args.get_str("save-trace", "");
            let saved = if save.is_empty() {
                String::new()
            } else {
                std::fs::write(&save, shrunk.to_json_string())
                    .map_err(|e| format!("cannot write {save}: {e}"))?;
                format!("\n  trace saved to {save}")
            };
            Err(format!(
                "VIOLATION {}\n  schedule: {} choices (shrunk from {} in {} replays)\n  \
                 after {} states explored{saved}",
                found.violation,
                shrunk.choices.len(),
                trace.choices.len(),
                replays,
                report.states_visited,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn simulate_small() {
        let out = simulate(&args("simulate --workers 2 --elems 2048 --pool 8")).unwrap();
        assert!(out.contains("verified: true"), "{out}");
    }

    #[test]
    fn simulate_json() {
        let out = simulate(&args("simulate --workers 2 --elems 1024 --pool 8 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["verified"], true);
        assert!(v["tat_ns"].as_u64().unwrap() > 0);
    }

    #[test]
    fn simulate_with_trace_and_f16() {
        let out = simulate(&args(
            "simulate --workers 2 --elems 512 --pool 4 --mode f16 --trace 5",
        ))
        .unwrap();
        assert!(out.contains("SEND"), "{out}");
    }

    #[test]
    fn simulate_pcap_writes_valid_capture() {
        let path = std::env::temp_dir().join("switchml_cli_test.pcap");
        let _ = std::fs::remove_file(&path);
        let out = simulate(&args(&format!(
            "simulate --workers 2 --elems 256 --pool 4 --pcap {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..4], &0xA1B2C3D4u32.to_le_bytes());
        assert!(bytes.len() > 24, "capture has records");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_multirack() {
        let out = simulate(&args(
            "simulate --workers 4 --racks 2 --elems 2048 --pool 8",
        ))
        .unwrap();
        assert!(out.contains("2 racks"), "{out}");
        assert!(out.contains("verified: true"));
    }

    #[test]
    fn baseline_strategies() {
        for s in ["gloo", "nccl", "hd", "ps-dedicated", "ps-colocated"] {
            let out = baseline(&args(&format!(
                "baseline --strategy {s} --workers 4 --elems 2048"
            )))
            .unwrap();
            assert!(out.contains("verified: true"), "{s}: {out}");
        }
        assert!(baseline(&args("baseline --strategy bogus")).is_err());
    }

    #[test]
    fn tune_reports_paper_values() {
        let out = tune(&args("tune --bandwidth-gbps 10 --delay-us 15")).unwrap();
        assert!(out.contains("s = 128"), "{out}");
    }

    #[test]
    fn train_smoke() {
        let out = train(&args("train --workers 2 --epochs 2")).unwrap();
        assert!(out.contains("final accuracy"), "{out}");
    }

    #[test]
    fn unknown_flags_rejected() {
        assert!(simulate(&args("simulate --wrokers 8")).is_err());
        assert!(tune(&args("tune --bandwdith-gbps 10")).is_err());
    }

    #[test]
    fn udp_smoke() {
        let out = udp(&args("udp --workers 2 --elems 256")).unwrap();
        assert!(out.contains("expected 3"), "{out}");
    }

    #[test]
    fn ctrl_healthy_smoke() {
        let out = ctrl(&args("ctrl --workers 3 --elems 256")).unwrap();
        assert!(out.contains("all surviving workers completed"), "{out}");
        assert!(out.contains("epoch 0 with 3 worker(s)"), "{out}");
    }

    #[test]
    fn ctrl_kill_shrinks_json() {
        let out = ctrl(&args(
            "ctrl --workers 4 --elems 256 --fail-worker 1 --fail-at-us 25 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["finished"], true, "{out}");
        assert_eq!(v["jobs"][0]["epoch"].as_u64(), Some(1), "{out}");
        assert_eq!(v["jobs"][0]["workers"].as_u64(), Some(3), "{out}");
    }

    #[test]
    fn scenario_list_show_and_bad_actions() {
        let out = scenario(&args("scenario list")).unwrap();
        assert!(out.contains("loss-storm-5pct"), "{out}");
        assert!(out.contains("expects:"), "{out}");
        let shown = scenario(&args("scenario show smoke-2w")).unwrap();
        let sc = switchml_scenario::Scenario::from_json_str(&shown).unwrap();
        assert_eq!(sc.name, "smoke-2w");
        assert!(scenario(&args("scenario show no-such-scenario")).is_err());
        assert!(scenario(&args("scenario frobnicate")).is_err());
    }

    #[test]
    fn scenario_run_netsim_smoke() {
        let out = scenario(&args("scenario run smoke-2w --transport netsim --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v[0]["passed"], true, "{out}");
        assert_eq!(v[0]["transport"], "netsim", "{out}");
    }

    #[test]
    fn scenario_run_from_file() {
        let path = std::env::temp_dir().join("switchml_cli_test.scenario");
        let shown = scenario(&args("scenario show smoke-2w")).unwrap();
        std::fs::write(&path, shown).unwrap();
        let out = scenario(&args(&format!(
            "scenario run --file {} --transport netsim",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("PASS"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chaos_adapter_bit_identical_json() {
        let out = chaos(&args(
            "chaos --transport channel --workers 2 --elems 2048 --seed 7 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["outcome"], "bit-identical", "{out}");
        assert_eq!(v["mode"], "plain", "{out}");
        assert!(v["injected_faults"].as_u64().unwrap() > 0, "{out}");
    }

    #[test]
    fn chaos_adapter_kill_degrades_cleanly() {
        let out = chaos(&args(
            "chaos --transport channel --workers 2 --elems 32768 --kill 1 --kill-at-ms 1 \
             --max-wall-ms 2000 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["outcome"], "clean-degradation", "{out}");
    }

    #[test]
    fn check_exhaustive_clean() {
        let out = check(&args("check --workers 2 --slots 1 --chunks 2")).unwrap();
        assert!(out.contains("no violations"), "{out}");
        assert!(out.contains("space exhausted"), "{out}");
    }

    #[test]
    fn check_mutant_fails_with_shrunk_trace() {
        let err = check(&args("check --switch mutant-no-bitmap")).unwrap_err();
        assert!(err.contains("VIOLATION"), "{err}");
        assert!(err.contains("shrunk from"), "{err}");
    }

    #[test]
    fn check_random_json() {
        let out = check(&args(
            "check --strategy random --runs 5 --steps 100 --seed 3 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["violation"], serde_json::Value::Null, "{out}");
        assert!(v["states_visited"].as_u64().unwrap() > 0, "{out}");
    }

    #[test]
    fn check_replay_roundtrip() {
        let dir = std::env::temp_dir().join("switchml-cli-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mutant.trace");
        let path_str = path.to_str().unwrap();
        // Capture a violation trace, then replay it.
        let err = check(&args(&format!(
            "check --switch mutant-no-bitmap --save-trace {path_str}"
        )))
        .unwrap_err();
        assert!(err.contains("trace saved"), "{err}");
        let out = check(&args(&format!("check --replay {path_str}"))).unwrap();
        assert!(out.contains("as expected"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ctrl_failover_needs_standby() {
        assert!(ctrl(&args("ctrl --failover-at-us 100")).is_err());
        let out = ctrl(&args(
            "ctrl --workers 3 --elems 256 --switches 2 --failover-at-us 100",
        ))
        .unwrap();
        assert!(out.contains("failover: switch 0 -> 1"), "{out}");
    }
}
