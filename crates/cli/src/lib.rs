//! # switchml-cli
//!
//! Command-line front end for the SwitchML reproduction: run simulated
//! scenarios, compare baselines, tune pool sizes against the pipeline
//! model, train a real model with quantized aggregation, and run the
//! protocol over real UDP sockets — each a subcommand of one binary.

pub mod args;
pub mod commands;

use args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
switchml-cli — SwitchML (NSDI 2021) reproduction toolkit

USAGE: switchml-cli <command> [flags]

COMMANDS:
  simulate   Run SwitchML on the simulated rack
             --workers N (8) --elems N (1000000) --bandwidth-gbps N (10)
             --pool N (128) --k N (32) --cores N (1) --rto-us N (1000)
             --loss P (0) --mode f32|f16|i32 (f32) --racks N (1)
             --trace N (0: off) --pcap FILE (off)  --json
  baseline   Run a baseline collective
             --strategy gloo|nccl|hd|ps-dedicated|ps-colocated (gloo)
             --workers N (8) --elems N (1000000) --bandwidth-gbps N (10)
             --loss P (0)  --json
  tune       Pool sizing + switch resource report
             --bandwidth-gbps N (10) --delay-us N (15) --k N (32)
             --workers N (8)  --json
  train      Real data-parallel training through the protocol
             --workers N (4) --epochs N (10) --scale F (1e6)
             --mode exact|f32|f16|sign (f32) --hidden N (0)
             --byzantine N (0)  --json
  udp        Threaded all-reduce over real UDP loopback sockets
             --workers N (2) --elems N (4096) --loss P (0)
             --transport udp|channel (udp) --burst N (8) --cores N (1)
  hier       Two-level hierarchical all-reduce over real sockets: per-
             rack leaf switches re-aggregate into a spine; per-socket
             fan-in drops from workers to max(per-rack, racks)
             --racks N (2) --per-rack N (4) --elems N (4096)
             --transport udp|channel (udp) --threads N (2) --burst N (8)
             --loss P (0) --seed N (42)
             --kill-rack R (off) --kill-at-ms N (1)
             --up-rto-us N (inherit protocol RTO)
             --flat (also run the flat star; print the speedup)  --json
  ctrl       Controller-managed jobs: lifecycle, failure detection,
             live reconfiguration, switch failover (simulated rack)
             --workers N (4) --jobs N (1) --switches N (1)
             --elems N (4096) --k N (8) --pool N (8) --loss P (0)
             --seed N (1) --fail-worker N (off) --fail-at-us N (25)
             --failover-at-us N (off)  --json
  chaos      Live chaos harness: one seeded fault schedule against the
             real threaded transports, checked bit-for-bit against the
             sequential reference (silent corruption exits nonzero)
             --transport channel|udp (channel) --workers N (3)
             --elems N (4096) --cores N (1) --burst N (8) --seed N (1)
             --loss P (0.02) --dup P (0.02) --reorder P (0.05)
             --straggler W (off) --stall-us N (50)
             --kill W (off) --kill-at-ms N (5)
             --ctrl (shrink-and-resume via the controller)
             --switch-restart-ms N (off; implies --ctrl)
             --rto adaptive|backoff|fixed (adaptive) --rto-us N (2000)
             --max-wall-ms N (10000)  --json
  sched      Multi-tenant churn under the slot scheduler: staggered
             arrivals, priority classes, live repartition; reports
             arrivals/sec, p99 admission-to-first-aggregate and
             aggregate throughput; --noisy-loss measures isolation
             (quiet tenants' p99 within 2x baseline or exit nonzero)
             --transport channel|udp|both (channel; both needs --bench)
             --jobs N (6) --workers N (2, per job) --elems N (16384)
             --capacity N (32 slots) --arrival-ms N (4)
             --high-every N (3: every Nth job is high priority)
             --noisy-loss P (0: loss storm on job 0's ports)
             --seed N (1) --cores N (1) --max-wall-ms N (30000)
             --bench FILE (write churn benchmark JSON)  --json
  scenario   Declarative scenario DSL: run the curated chaos-lab
             library (or a .scenario file) on any transport
             list [--json]               catalog every named scenario
             show NAME                   print a scenario as .scenario JSON
             run NAME | run --file F     run one scenario
                 [--transport netsim|channel|udp|all]  [--json]
             suite [--transport netsim|channel|udp|all]
                 the standing regression gate: full library on
                 netsim+channel, the UDP-tagged subset on udp
  check      Deterministic adversarial schedule explorer (model checker)
             --strategy exhaustive|delay|random (exhaustive)
             --switch basic|reliable|multijob:N|mutant-no-bitmap
                      |mutant-no-epoch|mutant-overlap-partition (reliable)
             --workers N (2) --slots N (1) --chunks N (2) --k N (2)
             --scale F (64) --drops N (1) --dups N (1) --retx N (1)
             --stale-epochs N (0: dead-generation ghost injection)
             --d N (2, delay strategy) --seed N (1) --runs N (200)
             --steps N (400) --max-states N --max-depth N
             --replay FILE (re-execute a .trace) --save-trace FILE
             --json
  help       This text
";

/// Dispatch a parsed command line; returns the text to print.
pub fn dispatch(args: &Args) -> Result<String, String> {
    // `scenario` takes positionals (its sub-action and a name); every
    // other command takes flags only.
    if args.command.as_deref() != Some("scenario") {
        args.assert_no_positionals()?;
    }
    match args.command.as_deref() {
        Some("scenario") => commands::scenario(args),
        Some("simulate") => commands::simulate(args),
        Some("baseline") => commands::baseline(args),
        Some("tune") => commands::tune(args),
        Some("train") => commands::train(args),
        Some("udp") => commands::udp(args),
        Some("hier") => commands::hier(args),
        Some("ctrl") => commands::ctrl(args),
        Some("chaos") => commands::chaos(args),
        Some("sched") => commands::sched(args),
        Some("check") => commands::check(args),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}
