//! A small, dependency-free flag parser.
//!
//! Supports `--flag value`, `--flag=value` and boolean `--flag`.
//! Anything a downstream user would type at the `switchml-cli` prompt
//! goes through here, so errors name the offending flag.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus its flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pub command: Option<String>,
    /// Positional arguments after the subcommand (e.g. `scenario run
    /// NAME`). Commands that take none reject them via
    /// [`Args::assert_no_positionals`].
    pub positionals: Vec<String>,
    flags: HashMap<String, String>,
    /// Flags given without a value (`--verbose`).
    switches: Vec<String>,
}

impl Args {
    /// Parse raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(stripped) = a.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err("empty flag '--'".into());
                }
                if let Some((k, v)) = stripped.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                } else if iter.peek().is_some_and(|next| !next.starts_with("--")) {
                    let v = iter.next().expect("peeked");
                    out.flags.insert(stripped.to_string(), v);
                } else {
                    out.switches.push(stripped.to_string());
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                out.positionals.push(a);
            }
        }
        Ok(out)
    }

    /// String flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Typed flag with a default; errors name the flag.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Boolean switch (present without a value, or `--k=true/false`).
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
            || self.flags.get(key).is_some_and(|v| v == "true" || v == "1")
    }

    /// Positional argument `i` (0 = the first after the subcommand).
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Reject stray positionals (commands that only take flags).
    pub fn assert_no_positionals(&self) -> Result<(), String> {
        match self.positionals.first() {
            None => Ok(()),
            Some(p) => Err(format!("unexpected positional argument '{p}'")),
        }
    }

    /// Flags the program never consumed (typo detection).
    pub fn assert_known(&self, known: &[&str]) -> Result<(), String> {
        for k in self.flags.keys().chain(self.switches.iter()) {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_and_flags() {
        let a = parse("simulate --workers 8 --loss=0.01 --json");
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get::<usize>("workers", 0).unwrap(), 8);
        assert_eq!(a.get::<f64>("loss", 0.0).unwrap(), 0.01);
        assert!(a.switch("json"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("simulate");
        assert_eq!(a.get::<u64>("bandwidth-gbps", 10).unwrap(), 10);
        assert_eq!(a.get_str("mode", "f32"), "f32");
    }

    #[test]
    fn bad_value_names_flag() {
        let a = parse("x --workers eight");
        let err = a.get::<usize>("workers", 1).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
    }

    #[test]
    fn unknown_flag_detected() {
        let a = parse("x --wrokers 8");
        assert!(a.assert_known(&["workers"]).is_err());
        assert!(a.assert_known(&["wrokers"]).is_ok());
    }

    #[test]
    fn positionals_collected_and_rejectable() {
        let a = Args::parse(["scenario".into(), "run".into(), "smoke-2w".into()]).unwrap();
        assert_eq!(a.command.as_deref(), Some("scenario"));
        assert_eq!(a.positional(0), Some("run"));
        assert_eq!(a.positional(1), Some("smoke-2w"));
        assert!(a.assert_no_positionals().is_err());
        assert!(Args::parse(["a".into()])
            .unwrap()
            .assert_no_positionals()
            .is_ok());
        assert!(Args::parse(["--".into()]).is_err());
    }

    #[test]
    fn boolean_before_flag() {
        // `--json` followed by another flag must not swallow it.
        let a = parse("run --json --workers 4");
        assert!(a.switch("json"));
        assert_eq!(a.get::<usize>("workers", 0).unwrap(), 4);
    }
}
