//! The `switchml-cli` binary: parse, dispatch, print.

use switchml_cli::args::Args;
use switchml_cli::dispatch;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match dispatch(&parsed) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
