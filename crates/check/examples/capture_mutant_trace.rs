//! Regenerate the checked-in mutant regression trace and print
//! explorer coverage numbers.
//!
//! ```text
//! cargo run --release -p switchml-check --example capture_mutant_trace
//! ```
//!
//! Prints the shrunk `.trace` JSON for the no-bitmap mutant on stdout
//! (redirect into `crates/check/tests/traces/`) and per-configuration
//! coverage (states visited, max depth) on stderr.

use switchml_check::{
    shrink, ExhaustiveExplorer, Expectation, Explorer, Scenario, SwitchKind, Trace,
};

fn main() {
    for (label, sc) in [
        ("n=2 s=1 chunks=2 (reliable)", Scenario::default()),
        (
            "n=2 s=2 chunks=3 (reliable)",
            Scenario {
                pool_size: 2,
                n_chunks: 3,
                ..Scenario::default()
            },
        ),
    ] {
        let report = ExhaustiveExplorer::default().explore(&sc).unwrap();
        eprintln!(
            "{label}: {} states, max depth {}, exhausted={}, violation={:?}",
            report.states_visited, report.max_depth, report.exhausted, report.violation
        );
    }

    let sc = Scenario {
        switch: SwitchKind::MutantNoBitmap,
        ..Scenario::default()
    };
    let report = ExhaustiveExplorer::default().explore(&sc).unwrap();
    let found = report.violation.expect("mutant must be caught");
    eprintln!(
        "mutant: caught by [{}] after {} states ({} choices)",
        found.violation.oracle,
        report.states_visited,
        found.choices.len()
    );
    let trace = Trace {
        scenario: sc,
        choices: found.choices,
        expect: Expectation::Violation,
        violation: Some((found.violation.oracle.clone(), found.violation.message)),
    };
    let (shrunk, replays) = shrink(&trace, &found.violation.oracle);
    eprintln!(
        "shrunk to {} choices in {} replays",
        shrunk.choices.len(),
        replays
    );
    println!("{}", shrunk.to_json_string());
}
