//! Regression-trace suite: every `.trace` file under `tests/traces/`
//! is parsed and re-executed. Traces marked `"expect": "violation"`
//! must still trip the recorded oracle; traces marked `"clean"` must
//! complete with every oracle quiet. Drop a shrunk counterexample in
//! the directory and it becomes a permanent regression test.

use std::fs;
use std::path::PathBuf;
use switchml_check::{replay, Expectation, Trace};

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("traces")
}

#[test]
fn all_checked_in_traces_replay_as_expected() {
    let dir = traces_dir();
    assert!(
        dir.is_dir(),
        "trace directory {} missing — traces are part of the test suite",
        dir.display()
    );
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "trace"))
        .collect();
    paths.sort();
    // The suite ships with at least the mutant counterexample; an
    // empty directory means traces were lost, not that there is
    // nothing to test.
    assert!(
        !paths.is_empty(),
        "no .trace files in {} — expected at least the mutant regression trace",
        dir.display()
    );
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).unwrap();
        let trace = Trace::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{name}: unparseable trace: {e}"));
        let outcome = replay(&trace).unwrap_or_else(|e| panic!("{name}: replay failed: {e}"));
        match trace.expect {
            Expectation::Clean => {
                assert!(
                    outcome.violation.is_none(),
                    "{name}: clean trace now violates: {:?}",
                    outcome.violation
                );
            }
            Expectation::Violation => {
                let v = outcome.violation.unwrap_or_else(|| {
                    panic!("{name}: violation trace no longer reproduces — fixed or checker broken")
                });
                if let Some((oracle, _)) = &trace.violation {
                    assert_eq!(
                        &v.oracle, oracle,
                        "{name}: different oracle fired than when captured"
                    );
                }
            }
        }
    }
}
