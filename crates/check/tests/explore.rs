//! Acceptance tests for the checker itself.
//!
//! Two sides of the coin: the bounded-exhaustive explorer must clear
//! the real protocol on the issue's two acceptance configurations with
//! zero violations, and it must *catch* the seeded mutant (Algorithm 3
//! without the duplicate check) — then shrink the counterexample to a
//! minimal schedule and replay it. A checker that can't fail is not
//! checking anything.

use switchml_check::{
    shrink, DelayBoundedExplorer, ExhaustiveExplorer, Expectation, Explorer, RandomWalkExplorer,
    Scenario, SwitchKind, Trace,
};

/// Acceptance config 1: n = 2 workers, s = 1 slot, 2 chunks.
fn config_n2_s1_c2() -> Scenario {
    Scenario::default()
}

/// Acceptance config 2: n = 2 workers, s = 2 slots, 3 chunks.
fn config_n2_s2_c3() -> Scenario {
    Scenario {
        pool_size: 2,
        n_chunks: 3,
        ..Scenario::default()
    }
}

#[test]
fn exhaustive_n2_s1_c2_has_no_violations() {
    let report = ExhaustiveExplorer::default()
        .explore(&config_n2_s1_c2())
        .unwrap();
    assert!(
        report.violation.is_none(),
        "explorer found: {:?}",
        report.violation
    );
    assert!(report.exhausted, "bounded space not fully explored");
    assert!(report.states_visited > 100, "suspiciously small space");
}

#[test]
fn exhaustive_n2_s2_c3_has_no_violations() {
    let report = ExhaustiveExplorer::default()
        .explore(&config_n2_s2_c3())
        .unwrap();
    assert!(
        report.violation.is_none(),
        "explorer found: {:?}",
        report.violation
    );
    assert!(report.exhausted, "bounded space not fully explored");
}

#[test]
fn exhaustive_basic_switch_lossless() {
    let sc = Scenario {
        switch: SwitchKind::Basic,
        drops: 0,
        dups: 0,
        retx: 0,
        ..Scenario::default()
    };
    let report = ExhaustiveExplorer::default().explore(&sc).unwrap();
    assert!(
        report.violation.is_none(),
        "explorer found: {:?}",
        report.violation
    );
    assert!(report.exhausted);
}

#[test]
fn delay_bounded_multijob() {
    let sc = Scenario {
        switch: SwitchKind::MultiJob { jobs: 2 },
        ..Scenario::default()
    };
    let report = DelayBoundedExplorer::new(2).explore(&sc).unwrap();
    assert!(
        report.violation.is_none(),
        "explorer found: {:?}",
        report.violation
    );
}

#[test]
fn random_walks_stay_clean() {
    let report = RandomWalkExplorer::new(0xC0FFEE, 40, 400)
        .explore(&config_n2_s2_c3())
        .unwrap();
    assert!(
        report.violation.is_none(),
        "walk found: {:?}",
        report.violation
    );
    assert!(report.exhausted);
}

/// The mutation test: remove the `seen`-bitmap duplicate check from
/// Algorithm 3 and the explorer must produce a shrunk, replayable
/// counterexample. Any duplicate or retransmitted update gets double-
/// added; the counter-discipline / double-add oracles see the switch
/// state diverge from the reference model at the very packet that
/// does it.
#[test]
fn mutant_no_bitmap_is_caught_shrunk_and_replayed() {
    let sc = Scenario {
        switch: SwitchKind::MutantNoBitmap,
        ..Scenario::default()
    };
    let report = ExhaustiveExplorer::default().explore(&sc).unwrap();
    let found = report
        .violation
        .expect("explorer failed to catch the seeded no-bitmap mutant");
    let oracle = found.violation.oracle.clone();
    assert!(
        matches!(
            oracle.as_str(),
            "double-add" | "counter-discipline" | "bitmap-contributors" | "action"
        ),
        "unexpected oracle caught the mutant: {}",
        found.violation
    );

    let trace = Trace {
        scenario: sc,
        choices: found.choices.clone(),
        expect: Expectation::Violation,
        violation: Some((oracle.clone(), found.violation.message.clone())),
    };
    let (shrunk, replays) = shrink(&trace, &oracle);
    assert!(replays > 0);
    assert!(shrunk.choices.len() <= trace.choices.len());

    // The shrunk trace must still reproduce the same oracle firing,
    // through the full serialize → parse → replay path a regression
    // trace file takes.
    let reparsed = Trace::from_json_str(&shrunk.to_json_string()).unwrap();
    let outcome = switchml_check::replay(&reparsed).unwrap();
    let v = outcome
        .violation
        .expect("shrunk trace no longer reproduces the violation");
    assert_eq!(v.oracle, oracle, "shrunk trace trips a different oracle");
}

/// The real switches must survive dead-generation ghosts: with a
/// stale-epoch budget the adversary clones in-flight updates into
/// previous-epoch packets with perturbed payloads, and the epoch-fence
/// oracle requires every one to be counted-and-dropped with the pool
/// untouched. Algorithm 3 carries the §5.4 fence, so the space must
/// still be violation-free.
#[test]
fn reliable_survives_stale_epoch_ghosts() {
    let sc = Scenario {
        stale_epochs: 2,
        // Ghosts + retransmissions reach every slot state the fence
        // can see (pending, completed, reused); adding drop/dup
        // budgets on top multiplies the space without creating new
        // fence-relevant interleavings.
        drops: 0,
        dups: 0,
        ..Scenario::default()
    };
    let report = ExhaustiveExplorer::default().explore(&sc).unwrap();
    assert!(
        report.violation.is_none(),
        "explorer found: {:?}",
        report.violation
    );
    assert!(report.exhausted, "bounded space not fully explored");
}

/// The second mutation test: erase the generation byte at switch
/// ingress (deleting the §5.4 epoch fence) and the explorer must
/// produce a shrunk, replayable counterexample. A dead-generation
/// ghost then either reaches a completed slot (the mutant answers
/// Unicast where the fence demands Drop) or its perturbed payload is
/// folded into the pool (state mutates through the fence) — the
/// epoch-fence oracle fires either way.
#[test]
fn mutant_no_epoch_is_caught_shrunk_and_replayed() {
    let sc = Scenario {
        switch: SwitchKind::MutantNoEpoch,
        stale_epochs: 1,
        ..Scenario::default()
    };
    let report = ExhaustiveExplorer::default().explore(&sc).unwrap();
    let found = report
        .violation
        .expect("explorer failed to catch the seeded no-epoch-fence mutant");
    let oracle = found.violation.oracle.clone();
    assert_eq!(
        oracle, "epoch-fence",
        "unexpected oracle caught the mutant: {}",
        found.violation
    );

    let trace = Trace {
        scenario: sc,
        choices: found.choices.clone(),
        expect: Expectation::Violation,
        violation: Some((oracle.clone(), found.violation.message.clone())),
    };
    let (shrunk, replays) = shrink(&trace, &oracle);
    assert!(replays > 0);
    assert!(shrunk.choices.len() <= trace.choices.len());

    let reparsed = Trace::from_json_str(&shrunk.to_json_string()).unwrap();
    let outcome = switchml_check::replay(&reparsed).unwrap();
    let v = outcome
        .violation
        .expect("shrunk trace no longer reproduces the violation");
    assert_eq!(v.oracle, oracle, "shrunk trace trips a different oracle");
}

/// The third mutation test: a scheduler that skipped the
/// slot-disjointness check and handed two tenants the same physical
/// slot range. Both jobs' traffic lands in one shared pool, so the
/// very first switch-bound update from either tenant trips the
/// `partition-disjoint` scheduler oracle — the tenancy invariant that
/// no two live jobs may ever claim overlapping slots.
#[test]
fn mutant_overlap_partition_is_caught_shrunk_and_replayed() {
    let sc = Scenario {
        switch: SwitchKind::MutantOverlapPartition,
        ..Scenario::default()
    };
    let report = ExhaustiveExplorer::default().explore(&sc).unwrap();
    let found = report
        .violation
        .expect("explorer failed to catch the seeded overlap-partition mutant");
    let oracle = found.violation.oracle.clone();
    assert_eq!(
        oracle, "partition-disjoint",
        "unexpected oracle caught the mutant: {}",
        found.violation
    );

    let trace = Trace {
        scenario: sc,
        choices: found.choices.clone(),
        expect: Expectation::Violation,
        violation: Some((oracle.clone(), found.violation.message.clone())),
    };
    let (shrunk, replays) = shrink(&trace, &oracle);
    assert!(replays > 0);
    assert!(shrunk.choices.len() <= trace.choices.len());

    let reparsed = Trace::from_json_str(&shrunk.to_json_string()).unwrap();
    let outcome = switchml_check::replay(&reparsed).unwrap();
    let v = outcome
        .violation
        .expect("shrunk trace no longer reproduces the violation");
    assert_eq!(v.oracle, oracle, "shrunk trace trips a different oracle");
}

/// The real multi-tenant switch partitions its slot space by
/// construction, so the same `partition-disjoint` oracle must stay
/// silent across the delay-bounded two-job space. (Paired with the
/// mutant test above: an oracle that cannot pass is as useless as one
/// that cannot fail.)
#[test]
fn multijob_partition_oracle_stays_clean() {
    let sc = Scenario {
        switch: SwitchKind::MultiJob { jobs: 2 },
        drops: 0,
        dups: 0,
        ..Scenario::default()
    };
    let report = ExhaustiveExplorer::default().explore(&sc).unwrap();
    assert!(
        report.violation.is_none(),
        "partition oracle misfired on the real multi-job switch: {:?}",
        report.violation
    );
}

/// The mutant must also fall to plain random walks — the bug is not an
/// exhaustive-search exotic, any duplicate triggers it.
#[test]
fn mutant_no_bitmap_falls_to_random_walk() {
    let sc = Scenario {
        switch: SwitchKind::MutantNoBitmap,
        dups: 2,
        retx: 2,
        ..Scenario::default()
    };
    let report = RandomWalkExplorer::new(7, 200, 400).explore(&sc).unwrap();
    assert!(
        report.violation.is_some(),
        "200 random walks with dup budget never caught the no-bitmap mutant"
    );
}
