//! The closed-world model the explorer walks.
//!
//! A [`World`] is one complete protocol instance — switch (with its
//! oracle), workers, and the multiset of in-flight packets — advanced
//! exclusively by adversarial [`Choice`]s. There is no RNG and no
//! clock: time exists only as the virtual instant at which the
//! adversary decides a retransmission timer fires, which with
//! [`RtoPolicy::Fixed`] never changes *what* is retransmitted, only
//! *when* — so the state fingerprint can ignore time entirely and the
//! reachable state space stays finite.
//!
//! ## The network-assumption guard
//!
//! §3.5's correctness argument is self-clocking: a worker reuses a
//! slot only after receiving the previous result, so no worker — and
//! no packet a worker ever sent — lags more than **one phase** behind.
//! A single pool-version bit is sufficient *under that assumption*; an
//! adversary allowed to hold an update for two full phases could
//! replay it into a fresh phase of the same pool (classic ABA) and no
//! 1-bit scheme can tell. The world therefore ages out exactly those
//! packets: an update stays deliverable while its sender still has it
//! outstanding, or while the switch still remembers the contribution
//! (the `seen` bit that makes redelivery a safe duplicate). Anything
//! older is removed from flight, mirroring the paper's bounded
//! packet-lifetime assumption.
//!
//! [`RtoPolicy::Fixed`]: switchml_core::config::RtoPolicy

use crate::model::SwitchModel;
use crate::scenario::Scenario;
use std::collections::BTreeMap;
use switchml_core::config::{NumericMode, TimeNs};
use switchml_core::oracle::OracleViolation;
use switchml_core::packet::{Packet, Payload};
use switchml_core::switch::SwitchAction;
use switchml_core::worker::stream::TensorStream;
use switchml_core::worker::Worker;

/// One adversarial scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Deliver in-flight packet `id` to its destination.
    Deliver(u64),
    /// Drop in-flight packet `id` (consumes a drop budget unit).
    Drop(u64),
    /// Duplicate in-flight packet `id` (consumes a dup budget unit).
    Duplicate(u64),
    /// Jump the clock to worker `flat` (job-major index)'s next
    /// retransmission deadline and fire it.
    Timeout(usize),
    /// Clone switch-bound update `id` into a dead-generation ghost:
    /// previous epoch byte, payload perturbed by +1 per element — a
    /// straggler from before a §5.4 reconfiguration whose content is
    /// no longer valid (consumes a stale-epoch budget unit). The
    /// `epoch-fence` oracle then requires the switch to counted-and-
    /// drop it without touching the pool.
    StaleEpoch(u64),
}

/// A violated invariant, with the oracle's diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub oracle: String,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.message)
    }
}

impl From<OracleViolation> for Violation {
    fn from(v: OracleViolation) -> Self {
        Violation {
            oracle: v.oracle.into(),
            message: v.message,
        }
    }
}

/// Outcome of applying one [`Choice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// The choice was applied and all oracles passed.
    Applied,
    /// The choice is not applicable in this state (packet gone, budget
    /// exhausted, no timer armed). State unchanged — replay skips it.
    Skipped,
    /// An invariant broke.
    Violation(Violation),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    Switch,
    /// Flat (job-major) worker index.
    Worker(usize),
}

#[derive(Debug, Clone)]
struct InFlight {
    dest: Dest,
    pkt: Packet,
}

struct JobReference {
    /// The sequential reference: quantize → saturating-sum → dequantize.
    ate: Vec<f32>,
    /// Exact float sum, for the Appendix C `n/f` bound.
    float_sum: Vec<f64>,
}

/// FNV-1a 64-bit hasher for state fingerprints.
pub struct Fnv(u64);

impl Fnv {
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

/// The explorable protocol world. Cloneable: BFS expansion forks it.
pub struct World {
    scenario: Scenario,
    switch: SwitchModel,
    /// Job-major: worker `wid` of job `j` lives at `j * n_workers + wid`.
    workers: Vec<Worker>,
    inflight: BTreeMap<u64, InFlight>,
    next_pkt_id: u64,
    now: TimeNs,
    drops_left: u32,
    dups_left: u32,
    retx_left: u32,
    stale_left: u32,
    deviations_left: Option<u32>,
    /// Set once the final-result oracle has run clean.
    finished: bool,
    references: Vec<JobReference>,
}

impl Clone for World {
    fn clone(&self) -> Self {
        World {
            scenario: self.scenario.clone(),
            switch: self.switch.clone(),
            workers: self.workers.clone(),
            inflight: self.inflight.clone(),
            next_pkt_id: self.next_pkt_id,
            now: self.now,
            drops_left: self.drops_left,
            dups_left: self.dups_left,
            retx_left: self.retx_left,
            stale_left: self.stale_left,
            deviations_left: self.deviations_left,
            finished: self.finished,
            // The references are pure functions of the (immutable)
            // scenario; recomputing beats cloning big float vectors
            // for nothing — but they are small, so share by rebuild.
            references: self
                .references
                .iter()
                .map(|r| JobReference {
                    ate: r.ate.clone(),
                    float_sum: r.float_sum.clone(),
                })
                .collect(),
        }
    }
}

impl World {
    pub fn new(sc: &Scenario) -> Result<World, String> {
        sc.validate()?;
        let proto = sc.proto();
        let switch = SwitchModel::new(sc)?;
        let mut world = World {
            scenario: sc.clone(),
            switch,
            workers: Vec::new(),
            inflight: BTreeMap::new(),
            next_pkt_id: 0,
            now: 0,
            drops_left: sc.drops,
            dups_left: sc.dups,
            retx_left: sc.retx,
            stale_left: sc.stale_epochs,
            deviations_left: sc.deviations,
            finished: false,
            references: Vec::new(),
        };
        for job in 0..sc.jobs() {
            world.references.push(Self::reference_for_job(sc, job)?);
            for wid in 0..sc.n_workers {
                let stream = TensorStream::from_f32(
                    &[sc.tensor(job, wid as u16)],
                    NumericMode::Fixed32,
                    sc.scaling,
                    sc.k,
                )
                .map_err(|e| e.to_string())?;
                let mut worker =
                    Worker::new(wid as u16, &proto, stream).map_err(|e| e.to_string())?;
                worker.set_epoch(Scenario::EPOCH);
                let pkts = worker.start(0).map_err(|e| e.to_string())?;
                world.workers.push(worker);
                for mut pkt in pkts {
                    pkt.job = job;
                    world.enqueue(Dest::Switch, pkt);
                }
            }
        }
        world.gc_expired();
        Ok(world)
    }

    /// The quantize → saturating-sum → dequantize sequential reference
    /// for one job, computed without any switch or worker machinery.
    fn reference_for_job(sc: &Scenario, job: u8) -> Result<JobReference, String> {
        let elems = (sc.n_chunks as usize) * sc.k;
        let mut int_sum = vec![0i32; elems];
        let mut float_sum = vec![0f64; elems];
        for wid in 0..sc.n_workers {
            let tensor = sc.tensor(job, wid as u16);
            let stream = TensorStream::from_f32(
                std::slice::from_ref(&tensor),
                NumericMode::Fixed32,
                sc.scaling,
                sc.k,
            )
            .map_err(|e| e.to_string())?;
            for chunk in 0..sc.n_chunks {
                let off = chunk * sc.k as u64;
                let payload = stream.payload_chunk(off).map_err(|e| e.to_string())?;
                match payload {
                    Payload::I32(v) => {
                        for (acc, x) in int_sum[off as usize..].iter_mut().zip(&v) {
                            *acc = acc.saturating_add(*x);
                        }
                    }
                    other => return Err(format!("Fixed32 stream produced {other:?}")),
                }
            }
            for (acc, x) in float_sum.iter_mut().zip(&tensor) {
                *acc += *x as f64;
            }
        }
        // Dequantize through the same stream code the workers use.
        let mut result_stream =
            TensorStream::from_f32(&[vec![0.0; elems]], NumericMode::Fixed32, sc.scaling, sc.k)
                .map_err(|e| e.to_string())?;
        for chunk in 0..sc.n_chunks {
            let off = (chunk * sc.k as u64) as usize;
            result_stream
                .write_result(off as u64, &Payload::I32(int_sum[off..off + sc.k].to_vec()))
                .map_err(|e| e.to_string())?;
        }
        let ate = result_stream
            .result_tensors_f32(1)
            .map_err(|e| e.to_string())?
            .remove(0);
        Ok(JobReference { ate, float_sum })
    }

    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Did every worker finish *and* the final-result oracle pass?
    pub fn is_complete(&self) -> bool {
        self.finished
    }

    pub fn all_workers_done(&self) -> bool {
        self.workers.iter().all(|w| w.is_done())
    }

    pub fn n_inflight(&self) -> usize {
        self.inflight.len()
    }

    fn enqueue(&mut self, dest: Dest, pkt: Packet) -> u64 {
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        self.inflight.insert(id, InFlight { dest, pkt });
        id
    }

    fn flat_index(&self, job: u8, wid: u16) -> usize {
        job as usize * self.scenario.n_workers + wid as usize
    }

    fn job_of_flat(&self, flat: usize) -> u8 {
        (flat / self.scenario.n_workers) as u8
    }

    fn oldest_id(&self) -> Option<u64> {
        self.inflight.keys().next().copied()
    }

    /// Is this switch-bound update still within the protocol's assumed
    /// packet lifetime (≤ one phase of lag, see module docs)?
    fn update_is_live(&self, flat_sender: usize, pkt: &Packet) -> bool {
        let worker = &self.workers[flat_sender];
        let outstanding = worker.slot_snapshots().iter().any(|s| {
            s.active
                && s.slot == pkt.idx
                && s.ver == pkt.ver
                && s.chunk * self.scenario.k as u64 == pkt.off
        });
        if outstanding {
            return true;
        }
        match self.switch.cell(pkt.job, pkt.ver, pkt.idx as usize) {
            Some(cell) => cell.seen.contains(pkt.wid as usize) && cell.off == pkt.off,
            // BasicSwitch runs lossless with no duplication: every
            // update in flight is the outstanding one — but the
            // outstanding test can momentarily fail for packets the
            // worker already advanced past; treat as live, Algorithm 1
            // has no stale-packet hazard without faults.
            None => true,
        }
    }

    /// Remove aged-out packets (see module docs). Deterministic: runs
    /// after every step, so fingerprint-equal states agree on flight.
    fn gc_expired(&mut self) {
        let dead: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, f)| {
                f.dest == Dest::Switch && {
                    let flat = self.flat_index(f.pkt.job, f.pkt.wid);
                    !self.update_is_live(flat, &f.pkt)
                }
            })
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            self.inflight.remove(&id);
        }
    }

    /// All applicable choices in this state, in deterministic order.
    pub fn enabled_choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        if self.deviations_left == Some(0) {
            // Deviation budget exhausted: FIFO delivery only, plus
            // timeouts when the network is empty (forced progress).
            if let Some(id) = self.oldest_id() {
                out.push(Choice::Deliver(id));
            } else {
                for (flat, w) in self.workers.iter().enumerate() {
                    if !w.is_done() && w.next_deadline().is_some() {
                        out.push(Choice::Timeout(flat));
                    }
                }
            }
            return out;
        }
        for &id in self.inflight.keys() {
            out.push(Choice::Deliver(id));
        }
        if self.drops_left > 0 {
            for &id in self.inflight.keys() {
                out.push(Choice::Drop(id));
            }
        }
        if self.dups_left > 0 {
            for &id in self.inflight.keys() {
                out.push(Choice::Duplicate(id));
            }
        }
        if self.stale_left > 0 {
            for (&id, f) in self.inflight.iter() {
                if f.dest == Dest::Switch {
                    out.push(Choice::StaleEpoch(id));
                }
            }
        }
        for (flat, w) in self.workers.iter().enumerate() {
            if !w.is_done()
                && w.next_deadline().is_some()
                && (self.retx_left > 0 || self.inflight.is_empty())
            {
                out.push(Choice::Timeout(flat));
            }
        }
        out
    }

    /// Apply one choice. On [`StepResult::Applied`] every per-step
    /// oracle has passed.
    pub fn step(&mut self, choice: Choice) -> StepResult {
        // Deviation accounting (delay-bounded exploration): anything
        // other than oldest-first delivery, or a timeout forced by an
        // empty network, deviates.
        if let Some(dev) = self.deviations_left {
            let deviating = match choice {
                Choice::Deliver(id) => Some(id) != self.oldest_id(),
                Choice::Timeout(_) => !self.inflight.is_empty(),
                Choice::Drop(_) | Choice::Duplicate(_) | Choice::StaleEpoch(_) => true,
            };
            if deviating {
                if dev == 0 {
                    return StepResult::Skipped;
                }
                self.deviations_left = Some(dev - 1);
            }
        }

        let result = match choice {
            Choice::Deliver(id) => match self.inflight.remove(&id) {
                None => return StepResult::Skipped,
                Some(f) => self.deliver(f),
            },
            Choice::Drop(id) => {
                if self.drops_left == 0 || !self.inflight.contains_key(&id) {
                    return StepResult::Skipped;
                }
                self.inflight.remove(&id);
                self.drops_left -= 1;
                StepResult::Applied
            }
            Choice::Duplicate(id) => {
                if self.dups_left == 0 {
                    return StepResult::Skipped;
                }
                match self.inflight.get(&id).cloned() {
                    None => return StepResult::Skipped,
                    Some(f) => {
                        self.dups_left -= 1;
                        self.enqueue(f.dest, f.pkt);
                        StepResult::Applied
                    }
                }
            }
            Choice::StaleEpoch(id) => {
                if self.stale_left == 0 {
                    return StepResult::Skipped;
                }
                match self.inflight.get(&id) {
                    Some(f) if f.dest == Dest::Switch => {
                        let mut ghost = f.pkt.clone();
                        ghost.epoch = ghost.epoch.wrapping_sub(1);
                        // Perturb the payload so a fence leak is not
                        // silently absorbed as a harmless duplicate:
                        // if these bytes reach the aggregate, the
                        // final-ATE oracle sees them too.
                        if let Payload::I32(v) = &mut ghost.payload {
                            for x in v.iter_mut() {
                                *x = x.wrapping_add(1);
                            }
                        }
                        self.stale_left -= 1;
                        self.enqueue(Dest::Switch, ghost);
                        StepResult::Applied
                    }
                    _ => return StepResult::Skipped,
                }
            }
            Choice::Timeout(flat) => {
                if flat >= self.workers.len() {
                    return StepResult::Skipped;
                }
                let Some(deadline) = self.workers[flat].next_deadline() else {
                    return StepResult::Skipped;
                };
                let network_busy = !self.inflight.is_empty();
                if network_busy {
                    if self.retx_left == 0 {
                        return StepResult::Skipped;
                    }
                    self.retx_left -= 1;
                }
                self.now = self.now.max(deadline);
                let job = self.job_of_flat(flat);
                let now = self.now;
                match self.workers[flat].expired(now) {
                    Err(e) => StepResult::Violation(Violation {
                        oracle: "worker-reject".into(),
                        message: format!("expired() failed: {e}"),
                    }),
                    Ok(pkts) => {
                        for mut pkt in pkts {
                            pkt.job = job;
                            self.enqueue(Dest::Switch, pkt);
                        }
                        StepResult::Applied
                    }
                }
            }
        };
        if let StepResult::Violation(_) = result {
            return result;
        }
        if let Some(v) = self.post_step_oracles() {
            return StepResult::Violation(v);
        }
        self.gc_expired();
        result
    }

    fn deliver(&mut self, f: InFlight) -> StepResult {
        match f.dest {
            Dest::Switch => {
                let job = f.pkt.job;
                match self.switch.on_update(f.pkt) {
                    Err(v) => StepResult::Violation(v),
                    Ok(SwitchAction::Drop) => StepResult::Applied,
                    Ok(SwitchAction::Multicast(pkt)) => {
                        for flat in 0..self.workers.len() {
                            if self.job_of_flat(flat) == job {
                                self.enqueue(Dest::Worker(flat), pkt.clone());
                            }
                        }
                        StepResult::Applied
                    }
                    Ok(SwitchAction::Unicast(wid, pkt)) => {
                        let flat = self.flat_index(job, wid);
                        self.enqueue(Dest::Worker(flat), pkt);
                        StepResult::Applied
                    }
                }
            }
            Dest::Worker(flat) => {
                let job = self.job_of_flat(flat);
                let now = self.now;
                match self.workers[flat].on_result(&f.pkt, now) {
                    Err(e) => StepResult::Violation(Violation {
                        oracle: "worker-reject".into(),
                        message: format!("worker {flat} rejected a result: {e}"),
                    }),
                    Ok(followups) => {
                        for mut pkt in followups {
                            pkt.job = job;
                            self.enqueue(Dest::Switch, pkt);
                        }
                        StepResult::Applied
                    }
                }
            }
        }
    }

    /// Oracles evaluated after every applied step.
    fn post_step_oracles(&mut self) -> Option<Violation> {
        // Exactly-once accounting: every accepted result corresponds
        // to exactly one newly-done chunk ([`TensorStream`] writes are
        // idempotent, so a double-accepted result breaks this
        // equality, not the buffer).
        for (flat, w) in self.workers.iter().enumerate() {
            if w.stats().results != w.stream().done_chunks() {
                return Some(Violation {
                    oracle: "result-accounting".into(),
                    message: format!(
                        "worker {flat}: {} accepted results but {} done chunks — \
                         a result was accepted twice or a chunk never installed",
                        w.stats().results,
                        w.stream().done_chunks()
                    ),
                });
            }
        }
        if !self.finished && self.all_workers_done() {
            if let Some(v) = self.final_checks() {
                return Some(v);
            }
            self.finished = true;
        }
        None
    }

    /// Terminal oracle: each job's every worker holds the bit-exact
    /// sequential-reference ATE, within Appendix C's `n/f` of the
    /// exact float sum.
    fn final_checks(&self) -> Option<Violation> {
        let n = self.scenario.n_workers;
        let f = self.scenario.scaling;
        for job in 0..self.scenario.jobs() {
            let reference = &self.references[job as usize];
            for wid in 0..n {
                let flat = self.flat_index(job, wid as u16);
                let tensors = match self.workers[flat].stream().result_tensors_f32(1) {
                    Ok(t) => t,
                    Err(e) => {
                        return Some(Violation {
                            oracle: "final-ate".into(),
                            message: format!("worker {flat} results unreadable: {e}"),
                        })
                    }
                };
                let ate = &tensors[0];
                if ate.len() != reference.ate.len()
                    || ate
                        .iter()
                        .zip(&reference.ate)
                        .any(|(a, b)| a.to_bits() != b.to_bits())
                {
                    return Some(Violation {
                        oracle: "final-ate".into(),
                        message: format!(
                            "job {job} worker {wid}: ATE differs from the sequential \
                             reference (not bit-identical)"
                        ),
                    });
                }
                let bound = n as f64 / f + 1e-6;
                for (i, (&a, &exact)) in ate.iter().zip(&reference.float_sum).enumerate() {
                    let err = (a as f64 - exact).abs();
                    if err > bound {
                        return Some(Violation {
                            oracle: "quantization-bound".into(),
                            message: format!(
                                "job {job} worker {wid} elem {i}: |ATE − Σfloat| = {err:.3e} \
                                 exceeds Appendix C bound n/f = {bound:.3e}"
                            ),
                        });
                    }
                }
            }
        }
        None
    }

    /// Quiescence: the adversary stops interfering (FIFO delivery,
    /// timeouts only when the network is empty) — every chunk must
    /// complete within `max_steps`, and leftover duplicates must be
    /// absorbed as stale. This is the liveness oracle.
    pub fn drain(&mut self, max_steps: u64) -> Option<Violation> {
        let mut steps = 0u64;
        while !self.all_workers_done() {
            if steps >= max_steps {
                return Some(Violation {
                    oracle: "liveness".into(),
                    message: format!(
                        "not quiescent after {max_steps} fault-free steps \
                         ({} packets in flight)",
                        self.inflight.len()
                    ),
                });
            }
            let choice = match self.oldest_id() {
                Some(id) => Choice::Deliver(id),
                None => {
                    let next = self
                        .workers
                        .iter()
                        .enumerate()
                        .filter(|(_, w)| !w.is_done())
                        .filter_map(|(flat, w)| w.next_deadline().map(|d| (d, flat)))
                        .min();
                    match next {
                        Some((_, flat)) => Choice::Timeout(flat),
                        None => {
                            return Some(Violation {
                                oracle: "liveness".into(),
                                message: "stuck: chunks pending but no packets in flight \
                                          and no retransmission timers armed"
                                    .into(),
                            })
                        }
                    }
                }
            };
            match self.step(choice) {
                StepResult::Applied => {}
                StepResult::Violation(v) => return Some(v),
                StepResult::Skipped => {
                    return Some(Violation {
                        oracle: "liveness".into(),
                        message: format!("drain choice {choice:?} unexpectedly inapplicable"),
                    })
                }
            }
            steps += 1;
        }
        // Flush leftovers (late duplicates): every one must be
        // absorbed without disturbing the completed state.
        while let Some(id) = self.oldest_id() {
            if steps >= max_steps {
                return Some(Violation {
                    oracle: "liveness".into(),
                    message: "leftover packets never drained".into(),
                });
            }
            if let StepResult::Violation(v) = self.step(Choice::Deliver(id)) {
                return Some(v);
            }
            steps += 1;
        }
        if !self.finished {
            return Some(Violation {
                oracle: "final-ate".into(),
                message: "drain completed but the final-result oracle never ran clean".into(),
            });
        }
        None
    }

    /// Structural state fingerprint for BFS deduplication. Excludes
    /// time, timers, statistics, and packet ids (flight is hashed as a
    /// canonical multiset), so schedules that converge to the same
    /// protocol state merge.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.drops_left as u64);
        h.write_u64(self.dups_left as u64);
        h.write_u64(self.retx_left as u64);
        h.write_u64(self.stale_left as u64);
        h.write_u64(match self.deviations_left {
            None => u64::MAX,
            Some(d) => d as u64,
        });
        h.write_u64(self.finished as u64);
        for w in &self.workers {
            for s in w.slot_snapshots() {
                h.write_u64(s.slot as u64);
                h.write_u64(s.ver.index() as u64);
                h.write_u64(s.chunk);
                h.write_u64(s.active as u64);
            }
            let stream = w.stream();
            let mut done_bits = 0u64;
            for chunk in 0..stream.total_chunks() {
                if stream.chunk_is_done(chunk) {
                    done_bits |= 1 << (chunk % 64);
                }
            }
            h.write_u64(done_bits);
        }
        self.switch.fingerprint_into(&mut h);
        let mut flight: Vec<Vec<u8>> = self
            .inflight
            .values()
            .map(|f| {
                let mut bytes = Vec::new();
                f.pkt.encode_into(&mut bytes);
                match f.dest {
                    Dest::Switch => bytes.push(0xFF),
                    Dest::Worker(flat) => bytes.push(flat as u8),
                }
                bytes
            })
            .collect();
        flight.sort_unstable();
        for bytes in &flight {
            h.write_bytes(bytes);
            h.write_u64(0x5E9A);
        }
        h.finish()
    }
}
