//! The switch under test, with its invariant oracle attached.
//!
//! [`SwitchModel`] pairs each switch state machine with the matching
//! reference-model oracle from [`switchml_core::oracle`] and runs the
//! two in lock-step: every delivered update advances both, and any
//! divergence (state or action) surfaces as a [`Violation`] carrying
//! the oracle's diagnosis.
//!
//! [`MutantSwitch`] is the checker's built-in mutation: Algorithm 3
//! re-implemented *without* the `seen`-bitmap duplicate check, so a
//! duplicated or retransmitted update is folded into the aggregate
//! twice. The explorer must catch it — that is the acceptance test for
//! the whole harness.
//!
//! The second seeded mutation is [`SwitchKind::MutantNoEpoch`]: a real
//! [`ReliableSwitch`] whose ingress overwrites each packet's
//! generation byte with its own, deleting the §5.4 epoch fence. Every
//! switch model is audited on stale-generation packets by the
//! `epoch-fence` oracle: the only correct response is counted-and-drop
//! with the pool untouched.

use crate::scenario::{Scenario, SwitchKind};
use crate::world::Violation;
use switchml_core::bitmap::WorkerBitmap;
use switchml_core::oracle::{BasicOracle, ObservedAction, ReliableOracle, ReliableStateView};
use switchml_core::packet::{Packet, PacketKind, Payload, PoolVersion};
use switchml_core::switch::basic::BasicSwitch;
use switchml_core::switch::multijob::MultiJobSwitch;
use switchml_core::switch::pipeline::PipelineModel;
use switchml_core::switch::reliable::{CellView, ReliableSwitch};
use switchml_core::switch::SwitchAction;

/// A switch plus the oracle that audits it.
#[derive(Debug, Clone)]
pub enum SwitchModel {
    Basic {
        sw: BasicSwitch,
        oracle: BasicOracle,
    },
    Reliable {
        sw: ReliableSwitch,
        oracle: ReliableOracle,
    },
    MultiJob {
        sw: MultiJobSwitch,
        /// One oracle per admitted job, indexed by job id (0-based).
        oracles: Vec<ReliableOracle>,
    },
    Mutant {
        sw: MutantSwitch,
        oracle: ReliableOracle,
    },
    /// A real [`ReliableSwitch`] behind an ingress that erases the
    /// packet's generation byte — the no-epoch-fence mutation.
    MutantNoEpoch {
        sw: ReliableSwitch,
        oracle: ReliableOracle,
    },
    /// Two tenants mapped onto ONE shared physical pool: the
    /// scheduler mutation that skipped the slot-disjointness check
    /// when partitioning the pool. Every live job claims the same
    /// slot range, so the first switch-bound delivery trips the
    /// `partition-disjoint` oracle.
    MutantOverlap { sw: ReliableSwitch },
}

/// Owned copy of one slot's protocol-visible state across both pool
/// versions, for before/after comparison around a stale-generation
/// packet. `None` entries mean the switch kind has no such cell
/// (Algorithm 1 has a single unversioned pool, snapshotted as V0).
type PoolSnapshot = Vec<Option<(Vec<i32>, usize, WorkerBitmap, u64)>>;

impl SwitchModel {
    pub fn new(sc: &Scenario) -> Result<Self, String> {
        let proto = sc.proto();
        // Every world runs at a nonzero generation so the adversary
        // has a dead one to forge from; the fences must match it.
        let epoch = Scenario::EPOCH;
        Ok(match sc.switch {
            SwitchKind::Basic => {
                let mut sw = BasicSwitch::new(&proto).map_err(|e| e.to_string())?;
                sw.set_epoch(epoch);
                SwitchModel::Basic {
                    sw,
                    oracle: BasicOracle::for_proto(&proto),
                }
            }
            SwitchKind::Reliable => {
                let mut sw = ReliableSwitch::new(&proto).map_err(|e| e.to_string())?;
                sw.set_epoch(epoch);
                SwitchModel::Reliable {
                    sw,
                    oracle: ReliableOracle::for_proto(&proto),
                }
            }
            SwitchKind::MultiJob { jobs } => {
                let mut sw = MultiJobSwitch::new(PipelineModel::default());
                let mut oracles = Vec::with_capacity(jobs as usize);
                for job in 0..jobs {
                    sw.admit(job, &proto).map_err(|e| e.to_string())?;
                    sw.set_job_epoch(job, epoch).map_err(|e| e.to_string())?;
                    oracles.push(ReliableOracle::for_proto(&proto));
                }
                SwitchModel::MultiJob { sw, oracles }
            }
            SwitchKind::MutantNoBitmap => SwitchModel::Mutant {
                sw: MutantSwitch::new(&proto),
                oracle: ReliableOracle::for_proto(&proto),
            },
            SwitchKind::MutantNoEpoch => {
                let mut sw = ReliableSwitch::new(&proto).map_err(|e| e.to_string())?;
                sw.set_epoch(epoch);
                SwitchModel::MutantNoEpoch {
                    sw,
                    oracle: ReliableOracle::for_proto(&proto),
                }
            }
            SwitchKind::MutantOverlapPartition => {
                let mut sw = ReliableSwitch::new(&proto).map_err(|e| e.to_string())?;
                sw.set_epoch(epoch);
                SwitchModel::MutantOverlap { sw }
            }
        })
    }

    /// The slot ranges each live job claims in the pool's global slot
    /// address space, for multi-tenant kinds (`None` for single-tenant
    /// switches, where there is nothing to partition).
    ///
    /// This is the scheduler's tenancy invariant made checkable: the
    /// `partition-disjoint` oracle audits every switch-bound update
    /// against these claims.
    fn claimed_ranges(&self) -> Option<Vec<(u8, u32, u32)>> {
        match self {
            SwitchModel::MultiJob { sw, .. } => Some(
                sw.partition()
                    .into_iter()
                    .map(|(job, r)| (job, r.base, r.len))
                    .collect(),
            ),
            // THE BUG UNDER TEST: both tenants were handed the same
            // physical range.
            SwitchModel::MutantOverlap { sw } => {
                let s = sw.pool_size() as u32;
                Some(vec![(0, 0, s), (1, 0, s)])
            }
            _ => None,
        }
    }

    /// The scheduler oracle: the global slot an update touches must
    /// lie inside its own job's claimed range and no other live
    /// job's. Packets whose local index falls outside their own range
    /// are left for the switch's own bounds check.
    fn audit_partition(&self, job: u8, idx: u32) -> Result<(), Violation> {
        let Some(ranges) = self.claimed_ranges() else {
            return Ok(());
        };
        let Some(&(_, base, len)) = ranges.iter().find(|&&(j, _, _)| j == job) else {
            return Ok(());
        };
        if idx >= len {
            return Ok(());
        }
        let global = base + idx;
        if let Some(&(other, ob, ol)) = ranges
            .iter()
            .find(|&&(j, ob, ol)| j != job && global >= ob && global < ob + ol)
        {
            return Err(Violation {
                oracle: "partition-disjoint".into(),
                message: format!(
                    "job {job} update for local slot {idx} lands on global slot {global} \
                     of its range [{base}, {}), which live job {other} also claims as \
                     [{ob}, {}) — two live jobs may never overlap a slot",
                    base + len,
                    ob + ol
                ),
            });
        }
        Ok(())
    }

    /// Deliver one update packet to the switch, auditing the result.
    pub fn on_update(&mut self, pkt: Packet) -> Result<SwitchAction, Violation> {
        if pkt.epoch != Scenario::EPOCH {
            return self.on_stale_update(pkt);
        }
        self.audit_partition(pkt.job, pkt.idx)?;
        let (wid, ver, idx, off, job) = (pkt.wid, pkt.ver, pkt.idx, pkt.off, pkt.job);
        let payload = pkt.payload.clone();
        let step = |action: Result<SwitchAction, switchml_core::error::Error>| {
            action.map_err(|e| Violation {
                oracle: "switch-reject".into(),
                message: format!("switch rejected an adversary-legal packet: {e}"),
            })
        };
        match self {
            SwitchModel::Basic { sw, oracle } => {
                let action = step(sw.on_packet(pkt))?;
                oracle
                    .observe_update(idx, &payload, ObservedAction::of_switch(&action), sw)
                    .map_err(Violation::from)?;
                Ok(action)
            }
            SwitchModel::Reliable { sw, oracle } => {
                let action = step(sw.on_packet(pkt))?;
                oracle
                    .observe_packet(wid, ver, idx, off, &payload, &action, sw)
                    .map_err(Violation::from)?;
                Ok(action)
            }
            SwitchModel::MultiJob { sw, oracles } => {
                let action = step(sw.on_packet(pkt))?;
                let oracle = oracles.get_mut(job as usize).ok_or_else(|| Violation {
                    oracle: "switch-reject".into(),
                    message: format!("packet for unadmitted job {job}"),
                })?;
                let view = sw.job_switch(job).expect("admitted job has a pool");
                oracle
                    .observe_packet(wid, ver, idx, off, &payload, &action, view)
                    .map_err(Violation::from)?;
                Ok(action)
            }
            SwitchModel::Mutant { sw, oracle } => {
                let action = step(sw.on_packet(pkt))?;
                oracle
                    .observe_packet(wid, ver, idx, off, &payload, &action, &*sw)
                    .map_err(Violation::from)?;
                Ok(action)
            }
            SwitchModel::MutantNoEpoch { sw, oracle } => {
                let mut pkt = pkt;
                // THE BUG UNDER TEST: ingress ignores the generation
                // byte (a no-op here; stale packets take the audited
                // path above and get the same erasure there).
                pkt.epoch = sw.epoch();
                let action = step(sw.on_packet(pkt))?;
                oracle
                    .observe_packet(wid, ver, idx, off, &payload, &action, &*sw)
                    .map_err(Violation::from)?;
                Ok(action)
            }
            SwitchModel::MutantOverlap { sw } => {
                // Unreachable in practice: with both tenants claiming
                // one range, `audit_partition` fires on the first
                // delivery. Kept runnable so replay stays total.
                step(sw.on_packet(pkt))
            }
        }
    }

    /// A packet from a dead generation reached the switch. §5.4's
    /// contract is absolute: counted-and-dropped at ingress, pool
    /// state untouched, no oracle advance (the reference model never
    /// sees fenced traffic). Anything else is an `epoch-fence`
    /// violation — which is exactly how the no-epoch mutant dies.
    fn on_stale_update(&mut self, pkt: Packet) -> Result<SwitchAction, Violation> {
        let (job, idx, epoch) = (pkt.job, pkt.idx as usize, pkt.epoch);
        let before = self.pool_snapshot(job, idx);
        let action = match self {
            SwitchModel::Basic { sw, .. } => sw.on_packet(pkt),
            SwitchModel::Reliable { sw, .. } => sw.on_packet(pkt),
            SwitchModel::MultiJob { sw, .. } => sw.on_packet(pkt),
            SwitchModel::Mutant { sw, .. } => sw.on_packet(pkt),
            SwitchModel::MutantNoEpoch { sw, .. } => {
                let mut pkt = pkt;
                // THE BUG UNDER TEST: the fence is erased, so the
                // stale straggler reaches Algorithm 3 ingress.
                pkt.epoch = sw.epoch();
                sw.on_packet(pkt)
            }
            SwitchModel::MutantOverlap { sw } => sw.on_packet(pkt),
        }
        .map_err(|e| Violation {
            oracle: "epoch-fence".into(),
            message: format!("switch errored on a stale-generation update: {e}"),
        })?;
        if !matches!(action, SwitchAction::Drop) {
            let answered = match &action {
                SwitchAction::Multicast(_) => "Multicast",
                SwitchAction::Unicast(..) => "Unicast",
                SwitchAction::Drop => unreachable!(),
            };
            return Err(Violation {
                oracle: "epoch-fence".into(),
                message: format!(
                    "slot {idx}: switch answered {answered} to an epoch-{epoch} update \
                     while fenced at epoch {}; §5.4 requires counted-and-drop",
                    Scenario::EPOCH
                ),
            });
        }
        let after = self.pool_snapshot(job, idx);
        if before != after {
            return Err(Violation {
                oracle: "epoch-fence".into(),
                message: format!(
                    "slot {idx}: an epoch-{epoch} update mutated pool state through a fence \
                     at epoch {} — a dead generation's bytes reached the aggregate",
                    Scenario::EPOCH
                ),
            });
        }
        Ok(SwitchAction::Drop)
    }

    /// Owned state of slot `idx` (both pool versions) for `job`.
    fn pool_snapshot(&self, job: u8, idx: usize) -> PoolSnapshot {
        match self {
            SwitchModel::Basic { sw, .. } => {
                let (value, count) = sw.slot(idx);
                vec![
                    Some((value.to_vec(), count, WorkerBitmap::empty(), 0)),
                    None,
                ]
            }
            _ => [PoolVersion::V0, PoolVersion::V1]
                .into_iter()
                .map(|ver| {
                    self.cell(job, ver, idx)
                        .map(|c| (c.value.to_vec(), c.count, c.seen, c.off))
                })
                .collect(),
        }
    }

    /// The (version, slot) cell for `job`, if this switch kind has
    /// reliable-style cells (everything but Basic).
    pub fn cell(&self, job: u8, ver: PoolVersion, idx: usize) -> Option<CellView<'_>> {
        match self {
            SwitchModel::Basic { .. } => None,
            SwitchModel::Reliable { sw, .. } => Some(sw.cell(ver, idx)),
            SwitchModel::MultiJob { sw, .. } => sw.job_switch(job).map(|s| s.cell(ver, idx)),
            SwitchModel::Mutant { sw, .. } => Some(sw.cell_view(ver, idx)),
            SwitchModel::MutantNoEpoch { sw, .. } => Some(sw.cell(ver, idx)),
            SwitchModel::MutantOverlap { sw } => Some(sw.cell(ver, idx)),
        }
    }

    /// Feed the switch's protocol-visible state into a fingerprint
    /// hasher. Oracles are derived state (they mirror the switch) and
    /// are excluded.
    pub fn fingerprint_into(&self, h: &mut crate::world::Fnv) {
        let hash_cells = |h: &mut crate::world::Fnv, view: &dyn ReliableStateView, s: usize| {
            for ver in [PoolVersion::V0, PoolVersion::V1] {
                for idx in 0..s {
                    let c = view.cell_view(ver, idx);
                    h.write_u64(c.count as u64);
                    h.write_u64(c.off);
                    let mut bits = 0u64;
                    for w in c.seen.iter() {
                        bits |= 1u64 << (w % 64);
                    }
                    h.write_u64(bits);
                    for &x in c.value {
                        h.write_u64(x as u32 as u64);
                    }
                }
            }
        };
        match self {
            SwitchModel::Basic { sw, .. } => {
                for idx in 0..sw.pool_size() {
                    let (value, count) = sw.slot(idx);
                    h.write_u64(count as u64);
                    for &x in value {
                        h.write_u64(x as u32 as u64);
                    }
                }
            }
            SwitchModel::Reliable { sw, .. } => hash_cells(h, sw, sw.pool_size()),
            SwitchModel::MultiJob { sw, .. } => {
                let mut jobs = sw.job_ids();
                jobs.sort_unstable();
                for job in jobs {
                    let s = sw.job_switch(job).expect("listed job exists");
                    hash_cells(h, s, s.pool_size());
                }
            }
            SwitchModel::Mutant { sw, .. } => hash_cells(h, sw, sw.pool_size()),
            SwitchModel::MutantNoEpoch { sw, .. } => hash_cells(h, sw, sw.pool_size()),
            SwitchModel::MutantOverlap { sw } => hash_cells(h, sw, sw.pool_size()),
        }
    }
}

/// Per-(version, slot) state of the mutant — same shape as the real
/// switch's so the oracle can inspect it.
#[derive(Debug, Clone)]
struct MutantSlot {
    value: Vec<i32>,
    count: usize,
    seen: WorkerBitmap,
    off: u64,
}

/// Algorithm 3 with the line-9 duplicate check removed: every arriving
/// update is folded into the aggregate, so a retransmission or network
/// duplicate is double-added. The `seen` bitmap is still *maintained*
/// (set on contribution, cleared in the other pool) — it is just never
/// *consulted* — so the oracle's state comparison has real bits to
/// look at.
#[derive(Debug, Clone)]
pub struct MutantSwitch {
    n: usize,
    pools: [Vec<MutantSlot>; 2],
}

impl MutantSwitch {
    pub fn new(proto: &switchml_core::config::Protocol) -> Self {
        let mk = || {
            (0..proto.pool_size)
                .map(|_| MutantSlot {
                    value: vec![0; proto.k],
                    count: 0,
                    seen: WorkerBitmap::empty(),
                    off: 0,
                })
                .collect::<Vec<_>>()
        };
        MutantSwitch {
            n: proto.n_workers,
            pools: [mk(), mk()],
        }
    }

    pub fn pool_size(&self) -> usize {
        self.pools[0].len()
    }

    pub fn on_packet(
        &mut self,
        mut p: Packet,
    ) -> Result<SwitchAction, switchml_core::error::Error> {
        use switchml_core::packet::WireElems;
        let ver = p.ver.index();
        let other = 1 - ver;
        let idx = p.idx as usize;
        let wid = p.wid as usize;
        if idx >= self.pools[0].len() || wid >= self.n {
            return Err(switchml_core::error::Error::OutOfRange(
                "mutant: slot or worker out of range",
            ));
        }
        // BUG UNDER TEST: Algorithm 3 checks `seen[ver][idx][wid]`
        // here and ignores duplicates. The mutant skips the check and
        // aggregates unconditionally.
        self.pools[ver][idx].seen.set(wid);
        self.pools[other][idx].seen.clear(wid);
        let slot = &mut self.pools[ver][idx];
        if slot.count == 0 {
            p.payload.overwrite_into(&mut slot.value);
            slot.off = p.off;
        } else {
            p.payload.add_into(&mut slot.value, false);
        }
        slot.count = (slot.count + 1) % self.n;
        if slot.count == 0 {
            p.payload = Payload::from_i32_as(&p.payload, &slot.value);
            p.kind = PacketKind::Result;
            Ok(SwitchAction::Multicast(p))
        } else {
            Ok(SwitchAction::Drop)
        }
    }
}

impl ReliableStateView for MutantSwitch {
    fn cell_view(&self, ver: PoolVersion, idx: usize) -> CellView<'_> {
        let slot = &self.pools[ver.index()][idx];
        CellView {
            value: &slot.value,
            count: slot.count,
            seen: slot.seen,
            off: slot.off,
        }
    }
}
