//! Exploration strategies over the [`World`] transition graph.
//!
//! All three strategies speak the same [`Explorer`] trait and report
//! through [`ExploreReport`]: how much of the space was covered and —
//! if an oracle fired — the exact [`Choice`] sequence reproducing it,
//! ready to serialize as a `.trace` and shrink.

use crate::scenario::Scenario;
use crate::world::{Choice, StepResult, Violation, World};

/// A counterexample: the choices that, applied in order to
/// `World::new(&scenario)`, produce `violation`.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    pub violation: Violation,
    pub choices: Vec<Choice>,
}

/// What an exploration covered, and what (if anything) it found.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Distinct state fingerprints visited (exhaustive/delay-bounded)
    /// or total steps taken (random walk).
    pub states_visited: u64,
    /// Deepest schedule examined, in choices.
    pub max_depth: u64,
    /// True when the search finished without hitting its caps — for
    /// the exhaustive strategy this means the bounded space is fully
    /// explored.
    pub exhausted: bool,
    /// The first violation found, if any. Exploration stops at the
    /// first counterexample: shrinking makes more of one trace than a
    /// second find would.
    pub violation: Option<FoundViolation>,
}

pub trait Explorer {
    fn explore(&mut self, sc: &Scenario) -> Result<ExploreReport, String>;
}

/// Bounded-exhaustive breadth-first search with fingerprint
/// deduplication. At every *dequeued* state a cloned world is drained
/// fault-free (the liveness + final-result oracles), so each reachable
/// state is checked both for safety (per-step oracles on the way in)
/// and for recoverability.
pub struct ExhaustiveExplorer {
    pub max_states: u64,
    pub max_depth: u64,
    pub drain_budget: u64,
}

impl Default for ExhaustiveExplorer {
    fn default() -> Self {
        ExhaustiveExplorer {
            max_states: 2_000_000,
            max_depth: 200,
            drain_budget: 10_000,
        }
    }
}

impl Explorer for ExhaustiveExplorer {
    fn explore(&mut self, sc: &Scenario) -> Result<ExploreReport, String> {
        let root = World::new(sc)?;
        bfs(root, self.max_states, self.max_depth, self.drain_budget)
    }
}

/// Delay-bounded search: the same BFS, but the world only admits
/// schedules within `d` deviations from oldest-first FIFO delivery.
/// The classic observation (CHESS, delay-bounded scheduling) is that
/// most concurrency bugs need very few deviations — so small `d`
/// reaches interesting interleavings of configurations whose full
/// space is far out of range.
pub struct DelayBoundedExplorer {
    pub d: u32,
    pub max_states: u64,
    pub max_depth: u64,
    pub drain_budget: u64,
}

impl DelayBoundedExplorer {
    pub fn new(d: u32) -> Self {
        DelayBoundedExplorer {
            d,
            max_states: 2_000_000,
            max_depth: 400,
            drain_budget: 10_000,
        }
    }
}

impl Explorer for DelayBoundedExplorer {
    fn explore(&mut self, sc: &Scenario) -> Result<ExploreReport, String> {
        let mut bounded = sc.clone();
        bounded.deviations = Some(self.d);
        let root = World::new(&bounded)?;
        bfs(root, self.max_states, self.max_depth, self.drain_budget)
    }
}

fn bfs(
    root: World,
    max_states: u64,
    max_depth: u64,
    drain_budget: u64,
) -> Result<ExploreReport, String> {
    use std::collections::{HashSet, VecDeque};
    let mut report = ExploreReport::default();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut queue: VecDeque<(World, Vec<Choice>)> = VecDeque::new();
    visited.insert(root.fingerprint());
    queue.push_back((root, Vec::new()));
    report.states_visited = 1;
    let mut capped = false;
    while let Some((world, path)) = queue.pop_front() {
        report.max_depth = report.max_depth.max(path.len() as u64);
        // Recoverability: from here, a fault-free network must finish.
        if !world.is_complete() {
            let mut probe = world.clone();
            if let Some(violation) = probe.drain(drain_budget) {
                report.violation = Some(FoundViolation {
                    violation,
                    choices: path,
                });
                return Ok(report);
            }
        }
        if path.len() as u64 >= max_depth {
            capped = true;
            continue;
        }
        for choice in world.enabled_choices() {
            let mut next = world.clone();
            match next.step(choice) {
                StepResult::Skipped => continue,
                StepResult::Violation(violation) => {
                    let mut choices = path.clone();
                    choices.push(choice);
                    report.violation = Some(FoundViolation { violation, choices });
                    return Ok(report);
                }
                StepResult::Applied => {
                    let fp = next.fingerprint();
                    if !visited.insert(fp) {
                        continue;
                    }
                    report.states_visited += 1;
                    if report.states_visited >= max_states {
                        capped = true;
                        queue.clear();
                        break;
                    }
                    let mut choices = path.clone();
                    choices.push(choice);
                    queue.push_back((next, choices));
                }
            }
        }
        if capped && queue.is_empty() {
            break;
        }
    }
    report.exhausted = !capped;
    Ok(report)
}

/// SplitMix64 — tiny, seedable, and good enough to pick schedule
/// branches. Inlined so the checker stays free of RNG dependencies and
/// every walk is a pure function of its seed.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Seeded random walks: each run picks uniformly among enabled choices
/// until the world completes or `max_steps` is hit, then drains. Every
/// choice is recorded, so a violation found deep in a walk is exactly
/// as replayable as one found by BFS.
pub struct RandomWalkExplorer {
    pub seed: u64,
    pub runs: u64,
    pub max_steps: u64,
    pub drain_budget: u64,
}

impl RandomWalkExplorer {
    pub fn new(seed: u64, runs: u64, max_steps: u64) -> Self {
        RandomWalkExplorer {
            seed,
            runs,
            max_steps,
            drain_budget: 10_000,
        }
    }
}

impl Explorer for RandomWalkExplorer {
    fn explore(&mut self, sc: &Scenario) -> Result<ExploreReport, String> {
        let mut report = ExploreReport::default();
        for run in 0..self.runs {
            let mut rng = SplitMix64(self.seed ^ run.wrapping_mul(0xA076_1D64_78BD_642F));
            let mut world = World::new(sc)?;
            let mut choices: Vec<Choice> = Vec::new();
            for _ in 0..self.max_steps {
                if world.is_complete() && world.n_inflight() == 0 {
                    break;
                }
                let enabled = world.enabled_choices();
                if enabled.is_empty() {
                    break;
                }
                let choice = enabled[rng.below(enabled.len())];
                choices.push(choice);
                report.states_visited += 1;
                match world.step(choice) {
                    StepResult::Applied | StepResult::Skipped => {}
                    StepResult::Violation(violation) => {
                        report.max_depth = report.max_depth.max(choices.len() as u64);
                        report.violation = Some(FoundViolation { violation, choices });
                        return Ok(report);
                    }
                }
            }
            report.max_depth = report.max_depth.max(choices.len() as u64);
            if let Some(violation) = world.drain(self.drain_budget) {
                report.violation = Some(FoundViolation { violation, choices });
                return Ok(report);
            }
        }
        report.exhausted = true;
        Ok(report)
    }
}
