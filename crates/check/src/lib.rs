//! `switchml-check` — deterministic model checking for the SwitchML
//! protocol state machines.
//!
//! The sans-IO cores ([`switchml_core::switch`] and
//! [`switchml_core::worker`]) make the protocol a closed system: a
//! [`world::World`] holds one switch, `n` workers, and the set of
//! in-flight packets, and *every* network event — deliver, drop,
//! duplicate, retransmission timeout — is an explicit
//! [`world::Choice`] made by an adversarial scheduler instead of a
//! thread interleaving or an RNG. That turns the rare schedules that
//! break loss-recovery protocols (duplicate after slot reuse, reorder
//! across pool versions, loss during the last phase) into enumerable,
//! replayable points in a finite state space.
//!
//! Three strategies implement [`explore::Explorer`]:
//!
//! * [`explore::ExhaustiveExplorer`] — bounded BFS with state
//!   fingerprint deduplication, exhaustive for tiny configurations
//!   (n = 2–3 workers, s = 1–2 slots, 2–4 chunks);
//! * [`explore::DelayBoundedExplorer`] — the same search restricted to
//!   schedules within `d` deviations from FIFO delivery (the
//!   delay-bounding heuristic: most protocol bugs hide at small `d`);
//! * [`explore::RandomWalkExplorer`] — seeded random walks with
//!   per-step choice recording, for configurations past exhaustion.
//!
//! After every step the oracle suite ([`switchml_core::oracle`] plus
//! the worker-side checks in [`world`]) re-derives the §3.5
//! invariants; a violation serializes the exact choice sequence to a
//! `.trace` JSON ([`trace`]) that [`trace::replay`] re-executes
//! step-for-step and [`shrink::shrink`] reduces to a minimal schedule
//! by greedy delta debugging. Two seeded mutations keep the whole
//! pipeline honest — the explorer must catch each, shrink the
//! counterexample, and replay it:
//!
//! * [`model::MutantSwitch`] — Algorithm 3 with the `seen`-bitmap
//!   duplicate check deliberately removed;
//! * [`scenario::SwitchKind::MutantNoEpoch`] — Algorithm 3 with the
//!   §5.4 epoch fence erased at ingress, hunted via the
//!   [`world::Choice::StaleEpoch`] adversary move (clone an in-flight
//!   update into a dead-generation ghost with a perturbed payload; the
//!   `epoch-fence` oracle demands counted-and-drop with the pool
//!   untouched).

pub mod explore;
pub mod model;
pub mod scenario;
pub mod shrink;
pub mod trace;
pub mod world;

pub use explore::{
    DelayBoundedExplorer, ExhaustiveExplorer, ExploreReport, Explorer, FoundViolation,
    RandomWalkExplorer,
};
pub use scenario::{Scenario, SwitchKind};
pub use shrink::shrink;
pub use trace::{replay, Expectation, ReplayOutcome, Trace};
pub use world::{Choice, StepResult, Violation, World};
