//! `.trace` files: a self-contained, replayable counterexample (or
//! regression witness). JSON with three parts — the [`Scenario`], the
//! [`Choice`] sequence, and the expected outcome — so a trace checked
//! into `tests/traces/` keeps exercising the exact schedule that once
//! found a bug.

use crate::scenario::Scenario;
use crate::world::{Choice, StepResult, Violation, World};
use serde_json::{json, Value};

/// What replaying a trace is supposed to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The schedule must complete with every oracle quiet.
    Clean,
    /// The schedule must trip an oracle (a mutation-test witness).
    Violation,
}

#[derive(Debug, Clone)]
pub struct Trace {
    pub scenario: Scenario,
    pub choices: Vec<Choice>,
    pub expect: Expectation,
    /// The oracle (and message) recorded when the trace was captured —
    /// informational; replay matches on the oracle name only.
    pub violation: Option<(String, String)>,
}

const FORMAT_VERSION: u64 = 1;

fn choice_to_json(c: &Choice) -> Value {
    let (kind, arg) = match c {
        Choice::Deliver(id) => ("deliver", *id),
        Choice::Drop(id) => ("drop", *id),
        Choice::Duplicate(id) => ("duplicate", *id),
        Choice::Timeout(flat) => ("timeout", *flat as u64),
        Choice::StaleEpoch(id) => ("stale-epoch", *id),
    };
    Value::Array(vec![json!(kind), json!(arg)])
}

fn choice_from_json(v: &Value) -> Result<Choice, String> {
    let arr = v
        .as_array()
        .ok_or("trace choice is not a two-element array")?;
    if arr.len() != 2 {
        return Err(format!("trace choice has {} elements, wanted 2", arr.len()));
    }
    let kind = arr[0].as_str().ok_or("trace choice kind is not a string")?;
    let arg = arr[1]
        .as_u64()
        .ok_or("trace choice argument is not an integer")?;
    match kind {
        "deliver" => Ok(Choice::Deliver(arg)),
        "drop" => Ok(Choice::Drop(arg)),
        "duplicate" => Ok(Choice::Duplicate(arg)),
        "timeout" => Ok(Choice::Timeout(arg as usize)),
        "stale-epoch" => Ok(Choice::StaleEpoch(arg)),
        other => Err(format!("unknown trace choice kind `{other}`")),
    }
}

impl Trace {
    pub fn to_json_string(&self) -> String {
        let violation = match &self.violation {
            Some((oracle, message)) => json!({
                "oracle": oracle.clone(),
                "message": message.clone(),
            }),
            None => Value::Null,
        };
        let v = json!({
            "version": FORMAT_VERSION,
            "scenario": self.scenario.to_json(),
            "choices": Value::Array(self.choices.iter().map(choice_to_json).collect()),
            "expect": match self.expect {
                Expectation::Clean => "clean",
                Expectation::Violation => "violation",
            },
            "violation": violation,
        });
        serde_json::to_string_pretty(&v).expect("value-tree serialization cannot fail")
    }

    pub fn from_json_str(s: &str) -> Result<Trace, String> {
        let v: Value = serde_json::from_str(s).map_err(|e| format!("trace is not JSON: {e}"))?;
        let version = v
            .get("version")
            .as_u64()
            .ok_or("trace has no version field")?;
        if version != FORMAT_VERSION {
            return Err(format!(
                "trace format version {version} unsupported (this build reads {FORMAT_VERSION})"
            ));
        }
        let scenario = Scenario::from_json(v.get("scenario"))?;
        let choices = v
            .get("choices")
            .as_array()
            .ok_or("trace has no choices array")?
            .iter()
            .map(choice_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let expect = match v.get("expect").as_str() {
            Some("clean") => Expectation::Clean,
            Some("violation") => Expectation::Violation,
            other => return Err(format!("trace expect field is {other:?}")),
        };
        let violation = {
            let vv = v.get("violation");
            if vv.is_null() {
                None
            } else {
                Some((
                    vv.get("oracle")
                        .as_str()
                        .ok_or("trace violation has no oracle")?
                        .to_string(),
                    vv.get("message").as_str().unwrap_or("").to_string(),
                ))
            }
        };
        Ok(Trace {
            scenario,
            choices,
            expect,
            violation,
        })
    }
}

/// Result of re-executing a trace.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The violation the schedule produced, if any (either during the
    /// recorded choices or in the fault-free drain afterwards).
    pub violation: Option<Violation>,
    /// Recorded choices that were inapplicable on replay (packet id
    /// no longer in flight, budget already spent). Some skips are
    /// normal after shrinking; a fully-skipped trace is suspect.
    pub skipped: usize,
    /// Choices actually applied.
    pub applied: usize,
}

/// Re-execute a trace: build the world from the embedded scenario,
/// apply the recorded choices in order, then drain fault-free.
pub fn replay(trace: &Trace) -> Result<ReplayOutcome, String> {
    let mut world = World::new(&trace.scenario)?;
    let mut outcome = ReplayOutcome {
        violation: None,
        skipped: 0,
        applied: 0,
    };
    for &choice in &trace.choices {
        match world.step(choice) {
            StepResult::Applied => outcome.applied += 1,
            StepResult::Skipped => outcome.skipped += 1,
            StepResult::Violation(v) => {
                outcome.violation = Some(v);
                return Ok(outcome);
            }
        }
    }
    outcome.violation = world.drain(100_000);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_roundtrip() {
        let trace = Trace {
            scenario: Scenario::default(),
            choices: vec![
                Choice::Deliver(0),
                Choice::Duplicate(1),
                Choice::Drop(7),
                Choice::Timeout(1),
                Choice::StaleEpoch(2),
            ],
            expect: Expectation::Violation,
            violation: Some(("double-add".into(), "slot 0 diverged".into())),
        };
        let s = trace.to_json_string();
        let back = Trace::from_json_str(&s).unwrap();
        assert_eq!(back.scenario, trace.scenario);
        assert_eq!(back.choices, trace.choices);
        assert_eq!(back.expect, trace.expect);
        assert_eq!(back.violation, trace.violation);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Trace::from_json_str("not json").is_err());
        assert!(Trace::from_json_str("{}").is_err());
        let wrong_version = r#"{"version": 99}"#;
        assert!(Trace::from_json_str(wrong_version).is_err());
    }

    #[test]
    fn empty_trace_replays_clean() {
        let trace = Trace {
            scenario: Scenario::default(),
            choices: vec![],
            expect: Expectation::Clean,
            violation: None,
        };
        let outcome = replay(&trace).unwrap();
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }
}
