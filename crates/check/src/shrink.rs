//! Greedy delta debugging over choice sequences.
//!
//! Explorer counterexamples are already short-ish (BFS finds minimal-
//! *depth* schedules) but random-walk traces carry hundreds of
//! irrelevant choices. [`shrink`] removes one choice at a time, keeps
//! the removal whenever replay still trips the *same oracle*, and
//! rescans until a fixed point: the result is 1-minimal (no single
//! choice can be dropped), which in practice reads as "the schedule
//! that matters".

use crate::trace::{replay, Expectation, Trace};

/// Minimize `trace` while preserving a violation from oracle
/// `oracle`. Returns the shrunk trace and the number of replays spent.
pub fn shrink(trace: &Trace, oracle: &str) -> (Trace, u64) {
    let mut best = trace.clone();
    let mut replays = 0u64;
    let still_fails = |candidate: &Trace, replays: &mut u64| -> bool {
        *replays += 1;
        match replay(candidate) {
            Ok(outcome) => outcome
                .violation
                .as_ref()
                .is_some_and(|v| v.oracle == oracle),
            Err(_) => false,
        }
    };
    // The input must fail to begin with; otherwise shrinking a clean
    // trace would "converge" to the empty schedule.
    if !still_fails(&best, &mut replays) {
        return (best, replays);
    }
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < best.choices.len() {
            let mut candidate = best.clone();
            candidate.choices.remove(i);
            if still_fails(&candidate, &mut replays) {
                best = candidate;
                progressed = true;
                // Same index now holds the next choice; don't advance.
            } else {
                i += 1;
            }
        }
        if !progressed {
            break;
        }
    }
    best.expect = Expectation::Violation;
    (best, replays)
}
