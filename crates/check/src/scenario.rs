//! Checked configuration: which switch, how many workers/slots/chunks,
//! and the adversary's budgets. Serializes into (and parses back out
//! of) the `.trace` JSON header so a trace is self-contained.

use serde_json::{json, Value};
use switchml_core::config::{NumericMode, Protocol, RtoPolicy};

/// Which switch state machine the world drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchKind {
    /// Algorithm 1 — lossless only; the scenario must have zero
    /// adversary budgets (reordering remains free).
    Basic,
    /// Algorithm 3 — the loss-recovery switch (the default).
    Reliable,
    /// Several independent Algorithm 3 pools behind the tenancy
    /// demultiplexer, one worker group per job.
    MultiJob { jobs: u8 },
    /// Algorithm 3 with the `seen`-bitmap duplicate check removed — a
    /// deliberately broken switch for mutation-testing the checker.
    MutantNoBitmap,
    /// Algorithm 3 with the §5.4 epoch fence removed: the generation
    /// byte on every arriving packet is overwritten with the switch's
    /// own, so dead-generation stragglers sail straight into the
    /// pool. Mutation-tests the [`Choice::StaleEpoch`] adversary move.
    ///
    /// [`Choice::StaleEpoch`]: crate::world::Choice::StaleEpoch
    MutantNoEpoch,
    /// A two-tenant deployment whose scheduler skipped the
    /// slot-disjointness check: both jobs were handed the *same*
    /// physical slot range, so their traffic aggregates into one
    /// shared pool. Mutation-tests the `partition-disjoint` scheduler
    /// oracle — the tenancy invariant that no two live jobs may ever
    /// overlap a slot.
    MutantOverlapPartition,
}

impl SwitchKind {
    pub fn name(&self) -> String {
        match self {
            SwitchKind::Basic => "basic".into(),
            SwitchKind::Reliable => "reliable".into(),
            SwitchKind::MultiJob { jobs } => format!("multijob:{jobs}"),
            SwitchKind::MutantNoBitmap => "mutant-no-bitmap".into(),
            SwitchKind::MutantNoEpoch => "mutant-no-epoch".into(),
            SwitchKind::MutantOverlapPartition => "mutant-overlap-partition".into(),
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "basic" => Ok(SwitchKind::Basic),
            "reliable" => Ok(SwitchKind::Reliable),
            "mutant-no-bitmap" => Ok(SwitchKind::MutantNoBitmap),
            "mutant-no-epoch" => Ok(SwitchKind::MutantNoEpoch),
            "mutant-overlap-partition" => Ok(SwitchKind::MutantOverlapPartition),
            other => {
                if let Some(j) = other.strip_prefix("multijob:") {
                    let jobs: u8 = j.parse().map_err(|_| format!("bad job count `{j}`"))?;
                    if jobs == 0 {
                        return Err("multijob needs at least one job".into());
                    }
                    Ok(SwitchKind::MultiJob { jobs })
                } else {
                    Err(format!("unknown switch kind `{other}`"))
                }
            }
        }
    }
}

/// One checkable configuration: the protocol dimensions plus the
/// adversary's fault budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub switch: SwitchKind,
    /// Workers per job.
    pub n_workers: usize,
    /// Aggregator slots per pool version.
    pub pool_size: usize,
    /// Chunks each worker streams.
    pub n_chunks: u64,
    /// Elements per chunk.
    pub k: usize,
    /// Quantization scaling factor `f` (Appendix C).
    pub scaling: f64,
    /// How many in-flight packets the adversary may drop.
    pub drops: u32,
    /// How many in-flight packets the adversary may duplicate.
    pub dups: u32,
    /// How many retransmission timeouts the adversary may fire while
    /// packets are still in flight (timeouts with an empty network are
    /// always allowed — they are the only way forward).
    pub retx: u32,
    /// How many in-flight updates the adversary may clone into
    /// dead-generation ghosts: same routing fields, previous epoch
    /// byte, perturbed payload — a straggler from before a §5.4
    /// reconfiguration, whose content is no longer valid. Every
    /// switch must counted-and-drop them without touching the pool.
    pub stale_epochs: u32,
    /// Delay-bounding: if set, at most this many deviations from
    /// oldest-first FIFO delivery. `None` leaves scheduling fully free.
    pub deviations: Option<u32>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            switch: SwitchKind::Reliable,
            n_workers: 2,
            pool_size: 1,
            n_chunks: 2,
            k: 2,
            scaling: 64.0,
            drops: 1,
            dups: 1,
            retx: 1,
            stale_epochs: 0,
            deviations: None,
        }
    }
}

impl Scenario {
    /// The job generation every world runs at. Nonzero so the
    /// adversary has a dead generation (`EPOCH - 1`) to forge ghosts
    /// from; all switches and workers are fenced to this value.
    pub const EPOCH: u8 = 1;
    /// The virtual-time retransmission timeout. Its magnitude is
    /// irrelevant (the adversary jumps the clock); it only needs to be
    /// finite so timers exist, and [`RtoPolicy::Fixed`] so the
    /// retransmitted bytes are independent of *when* the timer fires —
    /// which is what lets the state fingerprint ignore time entirely.
    pub const RTO_NS: u64 = 1_000;

    pub fn validate(&self) -> Result<(), String> {
        if self.n_workers == 0 || self.pool_size == 0 || self.k == 0 {
            return Err("n_workers, pool_size and k must be > 0".into());
        }
        if self.scaling <= 0.0 {
            return Err("scaling factor must be > 0".into());
        }
        if matches!(self.switch, SwitchKind::Basic) && (self.drops > 0 || self.retx > 0) {
            return Err(
                "BasicSwitch (Algorithm 1) is only correct on a lossless fabric: \
                 drops and retransmissions are not valid adversary moves for it"
                    .into(),
            );
        }
        if matches!(self.switch, SwitchKind::Basic) && self.dups > 0 {
            return Err("BasicSwitch has no duplicate suppression; dups must be 0".into());
        }
        Ok(())
    }

    /// The protocol configuration every worker (and the switch) runs.
    pub fn proto(&self) -> Protocol {
        Protocol {
            n_workers: self.n_workers,
            k: self.k,
            pool_size: self.pool_size,
            rto_ns: Self::RTO_NS,
            rto_policy: RtoPolicy::Fixed,
            mode: NumericMode::Fixed32,
            wrapping_add: false,
            scaling_factor: self.scaling,
        }
    }

    /// Number of worker groups (1 except for multi-job scenarios).
    pub fn jobs(&self) -> u8 {
        match self.switch {
            SwitchKind::MultiJob { jobs } => jobs,
            // The overlap mutant is inherently a two-tenant bug.
            SwitchKind::MutantOverlapPartition => 2,
            _ => 1,
        }
    }

    /// The gradient of worker `wid` in job `job`: deterministic,
    /// deliberately *not* exactly representable after scaling, so the
    /// final-result oracle genuinely exercises the Appendix C `n/f`
    /// quantization-error bound.
    pub fn tensor(&self, job: u8, wid: u16) -> Vec<f32> {
        let elems = (self.n_chunks as usize) * self.k;
        (0..elems)
            .map(|i| (wid as f32 + 1.0 + 10.0 * job as f32) * 0.37 + (i as f32) * 0.11 - 1.3)
            .collect()
    }

    pub fn to_json(&self) -> Value {
        json!({
            "switch": self.switch.name(),
            "n_workers": self.n_workers as u64,
            "pool_size": self.pool_size as u64,
            "n_chunks": self.n_chunks,
            "k": self.k as u64,
            "scaling": self.scaling,
            "drops": self.drops,
            "dups": self.dups,
            "retx": self.retx,
            "stale_epochs": self.stale_epochs,
            "deviations": match self.deviations {
                Some(d) => json!(d),
                None => Value::Null,
            },
        })
    }

    pub fn from_json(v: &Value) -> Result<Self, String> {
        let need_u64 = |key: &str| {
            v.get(key)
                .as_u64()
                .ok_or_else(|| format!("scenario field `{key}` missing or not an integer"))
        };
        let switch = SwitchKind::parse(
            v.get("switch")
                .as_str()
                .ok_or("scenario field `switch` missing")?,
        )?;
        let sc = Scenario {
            switch,
            n_workers: need_u64("n_workers")? as usize,
            pool_size: need_u64("pool_size")? as usize,
            n_chunks: need_u64("n_chunks")?,
            k: need_u64("k")? as usize,
            scaling: v
                .get("scaling")
                .as_f64()
                .ok_or("scenario field `scaling` missing")?,
            drops: need_u64("drops")? as u32,
            dups: need_u64("dups")? as u32,
            retx: need_u64("retx")? as u32,
            // Absent in traces captured before epoch fencing existed.
            stale_epochs: v.get("stale_epochs").as_u64().unwrap_or(0) as u32,
            deviations: v.get("deviations").as_u64().map(|d| d as u32),
        };
        sc.validate()?;
        Ok(sc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let sc = Scenario {
            switch: SwitchKind::MultiJob { jobs: 2 },
            stale_epochs: 2,
            deviations: Some(3),
            ..Scenario::default()
        };
        let back = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(back, sc);
    }

    #[test]
    fn pre_epoch_traces_parse_without_stale_epochs() {
        let mut v = Scenario::default().to_json();
        // A header captured before the field existed.
        if let Value::Object(entries) = &mut v {
            entries.retain(|(k, _)| k != "stale_epochs");
        }
        let back = Scenario::from_json(&v).unwrap();
        assert_eq!(back.stale_epochs, 0);
    }

    #[test]
    fn basic_rejects_faults() {
        let sc = Scenario {
            switch: SwitchKind::Basic,
            ..Scenario::default()
        };
        assert!(sc.validate().is_err());
        let clean = Scenario {
            switch: SwitchKind::Basic,
            drops: 0,
            dups: 0,
            retx: 0,
            ..Scenario::default()
        };
        assert!(clean.validate().is_ok());
    }

    #[test]
    fn switch_kind_names_roundtrip() {
        for kind in [
            SwitchKind::Basic,
            SwitchKind::Reliable,
            SwitchKind::MultiJob { jobs: 3 },
            SwitchKind::MutantNoBitmap,
            SwitchKind::MutantNoEpoch,
            SwitchKind::MutantOverlapPartition,
        ] {
            assert_eq!(SwitchKind::parse(&kind.name()).unwrap(), kind);
        }
        assert!(SwitchKind::parse("bogus").is_err());
        assert!(SwitchKind::parse("multijob:0").is_err());
    }
}
