//! # switchml-bench
//!
//! The reproduction harness: one experiment per table/figure of the
//! paper's evaluation (run them with the `reproduce` binary), plus
//! criterion microbenchmarks for the hot paths (quantization, switch
//! packet processing, end-to-end all-reduce).

pub mod experiments;
