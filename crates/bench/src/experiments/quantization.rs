//! Figure 10: accuracy vs. scaling factor.
//!
//! The paper trains GoogLeNet on ImageNet under a sweep of scaling
//! factors and finds a ~5-decade plateau at unquantized accuracy, with
//! divergence outside it. ImageNet + GPUs are hardware/data-gated, so
//! this reproduction trains a real (CPU-scale) classifier whose
//! gradient all-reduce runs through the actual SwitchML protocol, and
//! sweeps `f` across 15 decades to expose the same three regimes:
//! underflow (no learning), plateau (matches exact), overflow
//! (divergence).

use super::ExperimentResult;
use switchml_core::quant::scaling::max_safe_factor;
use switchml_dnn::data::gaussian_blobs;
use switchml_dnn::real_train::{train, Aggregation, TrainConfig};

/// Figure 10: final accuracy across a scaling-factor sweep, with the
/// unquantized baseline as reference.
pub fn fig10_scaling_sweep(quick: bool) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig10",
        "Accuracy vs scaling factor (real training, SwitchML aggregation)",
        &["scaling_factor", "accuracy_pct", "diverged", "regime"],
    );
    let (train_set, test_set) =
        gaussian_blobs(if quick { 400 } else { 1200 }, 8, 4, 4.0, 2024).train_test_split(0.25);
    let cfg0 = TrainConfig {
        n_workers: 4,
        epochs: if quick { 4 } else { 10 },
        batch_per_worker: 16,
        lr: 0.1,
        seed: 3,
        agg: Aggregation::Exact,
        hidden: 0,
        byzantine: 0,
    };

    let exact = train(&train_set, &test_set, &cfg0);
    result.row(vec![
        "exact (no quantization)".into(),
        format!("{:.1}", exact.final_accuracy * 100.0),
        "no".into(),
        "baseline".into(),
    ]);

    let factors: &[f64] = if quick {
        &[1e-2, 1e2, 1e6, 1e9, 1e12]
    } else {
        &[
            1e-3, 1e-2, 1e-1, 1.0, 1e2, 1e4, 1e6, 1e7, 1e8, 1e9, 1e10, 1e12,
        ]
    };
    let b = exact.max_grad_abs.max(1e-6);
    let f_max = max_safe_factor(cfg0.n_workers, b);
    for &f in factors {
        let r = train(
            &train_set,
            &test_set,
            &TrainConfig {
                agg: Aggregation::Fixed32 { f },
                ..cfg0.clone()
            },
        );
        let regime = if f < 1.0 / b {
            "underflow"
        } else if f > f_max {
            "overflow"
        } else {
            "plateau"
        };
        result.row(vec![
            format!("{f:.0e}"),
            format!("{:.1}", r.final_accuracy * 100.0),
            if r.diverged { "yes" } else { "no" }.into(),
            regime.into(),
        ]);
    }
    result.note(format!(
        "profiled max |gradient| B = {:.3}; Theorem 2 overflow bound f ≤ {:.2e} (paper's GoogLeNet: B = 29.24)",
        b, f_max
    ));
    result.note("expected shape: a multi-decade plateau at the exact baseline's accuracy, collapse below it (gradients round to zero) and above it (32-bit aggregate overflow), as in the paper's Figure 10");
    result
}
