//! Microbenchmark experiments: Figures 2, 4, 5, 6, 7 and 8.
//!
//! Tensor sizes are scaled down from the paper's 100 MB (the simulator
//! trades memory for determinism); every figure's *shape* — knees,
//! orderings, crossovers — is what these reproduce, per EXPERIMENTS.md.

use super::ExperimentResult;
use switchml_baselines::cost;
use switchml_baselines::{
    run_ps, run_ring, run_switchml, run_switchml_traced, PsPlacement, PsScenario, RingScenario,
    SwitchMLScenario,
};
use switchml_core::config::NumericMode;
use switchml_core::packet::{DEFAULT_K, MTU_K};
use switchml_netsim::prelude::*;

const G10: u64 = 10_000_000_000;
const G100: u64 = 100_000_000_000;

fn fmt_ms(ns: f64) -> String {
    format!("{:.2}", ns / 1e6)
}

fn fmt_m(x: f64) -> String {
    format!("{:.1}", x / 1e6)
}

/// Figure 2: pool size vs. tensor aggregation time and per-packet RTT
/// at 100 Gbps. The knee sits where `s · b` crosses the BDP (§3.6);
/// beyond it TAT is flat at line rate while RTT keeps growing with
/// queueing.
pub fn fig2_pool_size(quick: bool) -> ExperimentResult {
    let elems = if quick { 400_000 } else { 4_000_000 };
    let mut result = ExperimentResult::new(
        "fig2",
        "Effect of pool size on TAT and per-packet RTT (8 workers, 100 Gbps)",
        &[
            "pool_size",
            "TAT_ms",
            "RTT_us",
            "p99_RTT_us",
            "at_line_rate",
        ],
    );
    let pools: &[usize] = if quick {
        &[32, 128, 512, 2048, 8192]
    } else {
        &[32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
    };
    let line_tat = cost::switchml_line_rate_tat_ns(G100, DEFAULT_K, elems);
    for &s in pools {
        let mut sc = SwitchMLScenario::new(8, elems).at_100g();
        sc.proto.pool_size = s;
        let out = run_switchml(&sc).expect("fig2 run");
        assert!(out.verified);
        result.row(vec![
            s.to_string(),
            fmt_ms(out.max_tat.0 as f64),
            format!("{:.1}", out.mean_rtt_ns / 1e3),
            format!("{:.1}", out.p99_rtt_ns as f64 / 1e3),
            format!("{:.0}%", 100.0 * line_tat / out.max_tat.0 as f64),
        ]);
    }
    result.note(format!(
        "line-rate TAT bound: {} ms; paper picks s = 512 at 100 Gbps (the knee)",
        fmt_ms(line_tat)
    ));
    result.note("expected shape: TAT falls until s·b covers the BDP, then flattens; RTT grows past the knee");
    result
}

/// Figure 4: aggregated tensor elements per second vs. worker count
/// for every strategy, at 10 and 100 Gbps.
pub fn fig4_ate_scaling(quick: bool) -> ExperimentResult {
    let elems = if quick { 200_000 } else { 2_000_000 };
    let mut result = ExperimentResult::new(
        "fig4",
        "ATE/s microbenchmark vs workers (top: 10 Gbps, bottom: 100 Gbps)",
        &["bw", "workers", "strategy", "ATE_Melem_s", "pct_line_rate"],
    );
    for &bw in &[G10, G100] {
        let line = cost::switchml_line_rate_ate(bw, DEFAULT_K);
        for &n in &[4usize, 8, 16] {
            let base = {
                let mut sc = SwitchMLScenario::new(n, elems);
                if bw == G100 {
                    sc = sc.at_100g();
                }
                sc
            };
            let mut push = |name: &str, ate: f64, verified: bool| {
                assert!(verified, "{name} n={n} bw={bw} failed verification");
                result.row(vec![
                    format!("{}G", bw / 1_000_000_000),
                    n.to_string(),
                    name.to_string(),
                    fmt_m(ate),
                    format!("{:.0}%", 100.0 * ate / line),
                ]);
            };
            let sm = run_switchml(&base).expect("switchml");
            push("SwitchML", sm.ate_per_sec, sm.verified);

            let mut gloo = RingScenario::gloo(n, elems);
            gloo.link.bandwidth_bps = bw;
            let g = run_ring(&gloo).expect("gloo");
            push("Gloo", g.ate_per_sec, g.verified);

            let mut nccl = RingScenario::nccl(n, elems);
            nccl.link.bandwidth_bps = bw;
            let c = run_ring(&nccl).expect("nccl");
            push("NCCL", c.ate_per_sec, c.verified);

            let ded = run_ps(&PsScenario::new(base.clone(), PsPlacement::Dedicated))
                .expect("dedicated ps");
            push("DedicatedPS", ded.ate_per_sec, ded.verified);

            let col = run_ps(&PsScenario::new(base.clone(), PsPlacement::Colocated))
                .expect("colocated ps");
            push("ColocatedPS", col.ate_per_sec, col.verified);
        }
        result.note(format!(
            "{} Gbps line rates: SwitchML/DedicatedPS {} M, ring {} M, ColocatedPS {} M elem/s",
            bw / 1_000_000_000,
            fmt_m(line),
            fmt_m(cost::ring_line_rate_ate(bw, 8)),
            fmt_m(cost::colocated_ps_line_rate_ate(bw, DEFAULT_K)),
        ));
    }
    result.note("expected shape: SwitchML ≈ DedicatedPS > ColocatedPS ≈ ½·SwitchML > NCCL > Gloo; SwitchML flat in n");
    result
}

/// Figure 5: TAT inflation under uniform random loss, normalized to
/// the lossless run of the same strategy.
pub fn fig5_loss_inflation(quick: bool) -> ExperimentResult {
    let elems = if quick { 200_000 } else { 2_000_000 };
    let mut result = ExperimentResult::new(
        "fig5",
        "TAT inflation under packet loss (8 workers, 10 Gbps, 1 ms RTO)",
        &["loss", "SwitchML_x", "Gloo_x", "NCCL_x"],
    );
    let losses = [0.0, 0.0001, 0.001, 0.01];
    let mut base_tat = [0.0f64; 3];
    for (li, &p) in losses.iter().enumerate() {
        let mut sm = SwitchMLScenario::new(8, elems);
        sm.link = sm.link.with_loss(p);
        let s = run_switchml(&sm).expect("fig5 switchml");
        assert!(s.verified);

        let mut gl = RingScenario::gloo(8, elems);
        gl.link = gl.link.with_loss(p);
        let g = run_ring(&gl).expect("fig5 gloo");
        assert!(g.verified);

        let mut nc = RingScenario::nccl(8, elems);
        nc.link = nc.link.with_loss(p);
        let c = run_ring(&nc).expect("fig5 nccl");
        assert!(c.verified);

        let tats = [s.max_tat.0 as f64, g.max_tat.0 as f64, c.max_tat.0 as f64];
        if li == 0 {
            base_tat = tats;
        }
        result.row(vec![
            format!("{:.2}%", p * 100.0),
            format!("{:.2}", tats[0] / base_tat[0]),
            format!("{:.2}", tats[1] / base_tat[1]),
            format!("{:.2}", tats[2] / base_tat[2]),
        ]);
    }
    result.note("expected shape: 0.01% barely matters; at 0.1–1% the TCP baselines inflate far more than SwitchML (200 ms RTO stalls vs 1 ms switch-protocol retransmits)");
    result
}

/// Figure 6: timeline of packets sent per time bucket at one worker,
/// under 0%, 0.01% and 1% loss.
pub fn fig6_send_timeline(quick: bool) -> ExperimentResult {
    let elems = if quick { 800_000 } else { 16_000_000 };
    let bucket = Nanos::from_micros(if quick { 100 } else { 1000 });
    let mut result = ExperimentResult::new(
        "fig6",
        "Packets sent per bucket at worker 0 during one aggregation",
        &["loss", "TAT_ms", "resent", "mean_pps_bucket", "timeline"],
    );
    for &p in &[0.0, 0.0001, 0.01] {
        let mut sc = SwitchMLScenario::new(8, elems);
        sc.link = sc.link.with_loss(p);
        // Worker 0 is the first node bound after the switch in star().
        let mut trace = RateTrace::new(NodeId(1), bucket);
        let out = run_switchml_traced(&sc, &mut trace).expect("fig6 run");
        assert!(out.verified);
        let counts = &trace.counts;
        let mean = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
        result.row(vec![
            format!("{:.2}%", p * 100.0),
            fmt_ms(out.max_tat.0 as f64),
            out.total_retx.to_string(),
            format!("{:.0}", mean),
            sparkline(counts, 40),
        ]);
    }
    result.note("expected shape: near-constant send rate at 0%/0.01%; at 1% the rate dips late in the run as unevenly-hit slots straggle (no work stealing), then recovers — the paper's 424 ms tail");
    result
}

/// Downsample a series into a unicode sparkline.
fn sparkline(series: &[u64], width: usize) -> String {
    if series.is_empty() {
        return String::new();
    }
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let chunk = series.len().div_ceil(width).max(1);
    let buckets: Vec<f64> = series
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>() as f64 / c.len() as f64)
        .collect();
    let max = buckets.iter().cloned().fold(1.0_f64, f64::max);
    buckets
        .iter()
        .map(|&v| BARS[((v / max) * 7.0).round() as usize])
        .collect()
}

/// Figure 7: TAT vs tensor size — SwitchML (k=32) vs the MTU-capable
/// what-if switch (k=366) vs a dedicated PS with MTU packets.
pub fn fig7_mtu_what_if(quick: bool) -> ExperimentResult {
    let scale = if quick { 10 } else { 1 };
    let sizes: Vec<usize> = [500_000usize, 1_000_000, 2_500_000, 5_000_000]
        .iter()
        .map(|s| s / scale)
        .collect();
    let mut result = ExperimentResult::new(
        "fig7",
        "TAT vs tensor size: SwitchML, SwitchML(MTU), Dedicated PS (MTU) at 10 Gbps",
        &[
            "elems",
            "SwitchML_ms",
            "SwitchML_MTU_ms",
            "PS_MTU_ms",
            "line32_ms",
            "lineMTU_ms",
        ],
    );
    for &elems in &sizes {
        let base = SwitchMLScenario::new(8, elems);
        let sm = run_switchml(&base).expect("fig7 switchml");
        assert!(sm.verified);

        // MTU what-if: the switch processes 366-element packets (the
        // paper emulates this by having the Tofino aggregate the first
        // 32 and forward the rest; timing-wise both are full-MTU
        // line-rate packets). Per-packet worker cost grows with size.
        let mut mtu = SwitchMLScenario::new(8, elems);
        mtu.proto.k = MTU_K;
        mtu.proto.pool_size = 32;
        mtu.worker_cost = Nanos(300);
        let sm_mtu = run_switchml(&mtu).expect("fig7 switchml mtu");
        assert!(sm_mtu.verified);

        let mut ps_base = mtu.clone();
        ps_base.worker_cost = Nanos(300);
        let mut ps = PsScenario::new(ps_base, PsPlacement::Dedicated);
        ps.ps_cost = Nanos(1_000); // software per-MTU-packet cost
        let ps_out = run_ps(&ps).expect("fig7 ps");
        assert!(ps_out.verified);

        result.row(vec![
            elems.to_string(),
            fmt_ms(sm.max_tat.0 as f64),
            fmt_ms(sm_mtu.max_tat.0 as f64),
            fmt_ms(ps_out.max_tat.0 as f64),
            fmt_ms(cost::switchml_line_rate_tat_ns(G10, DEFAULT_K, elems)),
            fmt_ms(cost::switchml_line_rate_tat_ns(G10, MTU_K, elems)),
        ]);
    }
    result.note("expected shape: SwitchML pays a modest cost for order-of-magnitude smaller packets; the MTU what-if improves TAT by ~30% (header overhead 28.9% → 3.4%); PS(MTU) trails the MTU switch");
    result
}

/// Figure 8: TAT by wire data type — native int32, scaled float32,
/// and float16 — for SwitchML vs the Gloo baseline.
pub fn fig8_datatypes(quick: bool) -> ExperimentResult {
    let elems = if quick { 200_000 } else { 2_000_000 };
    let mut result = ExperimentResult::new(
        "fig8",
        "TAT by data type (8 workers, 10 Gbps)",
        &["datatype", "SwitchML_ms", "Gloo_ms", "line_rate_ms"],
    );
    let line32 = cost::switchml_line_rate_tat_ns(G10, DEFAULT_K, elems);

    let mut int32 = SwitchMLScenario::new(8, elems);
    int32.proto.mode = NumericMode::NativeInt32;
    let i = run_switchml(&int32).expect("fig8 int32");
    assert!(i.verified);

    let f32sc = SwitchMLScenario::new(8, elems);
    let f = run_switchml(&f32sc).expect("fig8 f32");
    assert!(f.verified);

    let mut f16sc = SwitchMLScenario::new(8, elems);
    f16sc.proto.mode = NumericMode::Float16;
    f16sc.proto.scaling_factor = 1000.0; // respect the f16 overflow bound
    let h = run_switchml(&f16sc).expect("fig8 f16");
    assert!(h.verified);

    let gloo = run_ring(&RingScenario::gloo(8, elems)).expect("fig8 gloo");
    assert!(gloo.verified);
    let gloo_ms = fmt_ms(gloo.max_tat.0 as f64);

    // f16 halves payload bytes per element: its line-rate TAT uses the
    // 16-bit wire size.
    let line16 = elems as f64 * 2.0 * 8.0
        / (G10 as f64 * (2.0 * DEFAULT_K as f64 / (52.0 + 2.0 * DEFAULT_K as f64)))
        * 1e9;

    result.row(vec![
        "int32".into(),
        fmt_ms(i.max_tat.0 as f64),
        gloo_ms.clone(),
        fmt_ms(line32),
    ]);
    result.row(vec![
        "float32".into(),
        fmt_ms(f.max_tat.0 as f64),
        gloo_ms.clone(),
        fmt_ms(line32),
    ]);
    result.row(vec![
        "float16".into(),
        fmt_ms(h.max_tat.0 as f64),
        "n/a".into(),
        fmt_ms(line16),
    ]);
    result.note("expected shape: int32 ≈ float32 (scaling/conversion is free on the worker hot path); float16 ≈ half the TAT (half the wire bytes); Gloo well above all");
    result
}
