//! The per-figure/table reproduction experiments.
//!
//! Each experiment returns an [`ExperimentResult`]: a set of rows
//! (serde-serializable) plus human-readable notes, printed as a table
//! by the `reproduce` binary and dumped to JSON for EXPERIMENTS.md.
//!
//! `quick` mode shrinks tensors ~20× so the full suite runs in CI
//! time; shapes (who wins, crossover locations) are preserved, only
//! statistical smoothness suffers.

pub mod ablations;
pub mod calibrate;
pub mod extensions;
pub mod micro;
pub mod quantization;
pub mod training;

use serde::Serialize;

/// One reproduced table or figure.
#[derive(Debug, Serialize)]
pub struct ExperimentResult {
    /// Paper artifact id: "table1", "fig2", …
    pub id: String,
    pub title: String,
    /// Column names, in display order.
    pub columns: Vec<String>,
    /// Rows of display values (already formatted).
    pub rows: Vec<Vec<String>>,
    /// What the paper reports, and how our shapes compare.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// All experiment ids: the paper's artifacts in paper order, then the
/// ablations of DESIGN.md's called-out design choices.
pub const ALL_IDS: &[&str] = &[
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig10",
    "ablation_rto",
    "ablation_cores",
    "ablation_pool",
    "ext_rdma",
    "ext_resources",
    "ext_compression",
    "ext_straggler",
    "ext_multirack",
];

/// Run one experiment by id.
pub fn run(id: &str, quick: bool) -> Option<ExperimentResult> {
    match id {
        "table1" => Some(training::table1(quick)),
        "fig2" => Some(micro::fig2_pool_size(quick)),
        "fig3" => Some(training::fig3_speedups(quick)),
        "fig4" => Some(micro::fig4_ate_scaling(quick)),
        "fig5" => Some(micro::fig5_loss_inflation(quick)),
        "fig6" => Some(micro::fig6_send_timeline(quick)),
        "fig7" => Some(micro::fig7_mtu_what_if(quick)),
        "fig8" => Some(micro::fig8_datatypes(quick)),
        "fig10" => Some(quantization::fig10_scaling_sweep(quick)),
        "ablation_rto" => Some(ablations::ablation_rto(quick)),
        "ablation_cores" => Some(ablations::ablation_cores(quick)),
        "ablation_pool" => Some(ablations::ablation_pool_floor(quick)),
        "ext_rdma" => Some(extensions::ext_rdma(quick)),
        "ext_resources" => Some(extensions::ext_resources(quick)),
        "ext_compression" => Some(extensions::ext_compression(quick)),
        "ext_straggler" => Some(extensions::ext_straggler(quick)),
        "ext_multirack" => Some(extensions::ext_multirack(quick)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = ExperimentResult::new("figX", "demo", &["a", "long-column"]);
        r.row(vec!["1".into(), "2".into()]);
        r.row(vec!["100000".into(), "3".into()]);
        r.note("a note");
        let s = r.render();
        assert!(s.contains("figX"));
        assert!(s.contains("note: a note"));
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut r = ExperimentResult::new("x", "y", &["a"]);
        r.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn registry_covers_all_ids() {
        for id in ALL_IDS {
            // Don't actually run (slow); just check the match arms via
            // a cheap unknown-id probe.
            assert_ne!(*id, "unknown");
        }
        assert!(run("unknown", true).is_none());
    }
}
