//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **RTO sensitivity** — §6 notes "one should take care to adapt the
//!   retransmission timeout according to variations in end-to-end
//!   RTT"; this sweep quantifies the cost of getting it wrong in
//!   either direction under loss.
//! * **Worker cores** — the paper used 4 cores at 100 Gbps ("due to a
//!   bug … we are unable to use more cores. This means that our
//!   results at 100 Gbps are a lower bound"); this sweep shows where
//!   the host bound lifts as the Flow-Director sharding widens.
//! * **Slot-reuse discipline** — the self-clocking correctness
//!   argument needs `s` ≥ in-flight window; this run demonstrates the
//!   protocol stays correct even at pathologically small pools (it
//!   just gets slower), isolating performance from correctness.

use super::ExperimentResult;
use switchml_baselines::{run_switchml, SwitchMLScenario};
use switchml_core::config::RtoPolicy;

/// TAT vs retransmission timeout at fixed 0.1% loss.
pub fn ablation_rto(quick: bool) -> ExperimentResult {
    let elems = if quick { 200_000 } else { 2_000_000 };
    let mut result = ExperimentResult::new(
        "ablation_rto",
        "RTO sensitivity at 0.1% loss (8 workers, 10 Gbps)",
        &["rto_ms", "TAT_ms", "retx", "spurious_retx_pct"],
    );
    let mut run_one = |label: String, rto_us: u64, policy: RtoPolicy| {
        let mut sc = SwitchMLScenario::new(8, elems);
        sc.proto.rto_ns = rto_us * 1_000;
        sc.proto.rto_policy = policy;
        sc.link = sc.link.with_loss(0.001);
        let out = run_switchml(&sc).expect("rto ablation run");
        assert!(out.verified);
        // A retransmission is "spurious" if it exceeds the actual
        // number of lost packets (lower bound on necessary retx).
        let losses = out.report.counters.dropped_loss;
        let spurious = out.total_retx.saturating_sub(losses);
        result.row(vec![
            label,
            format!("{:.2}", out.max_tat.0 as f64 / 1e6),
            out.total_retx.to_string(),
            format!(
                "{:.0}%",
                100.0 * spurious as f64 / out.total_retx.max(1) as f64
            ),
        ]);
    };
    for &rto_us in &[100u64, 300, 1_000, 3_000, 10_000] {
        run_one(
            format!("{:.1}", rto_us as f64 / 1000.0),
            rto_us,
            RtoPolicy::Fixed,
        );
    }
    // §6's adaptation, concretely: start aggressive, back off on
    // repeated expiries of the same slot.
    run_one(
        "0.3+backoff".into(),
        300,
        RtoPolicy::ExponentialBackoff { max_ns: 10_000_000 },
    );
    result.note("expected shape: TAT grows roughly linearly with RTO beyond the ~RTT floor (every loss stalls its slot one RTO); aggressive RTOs buy latency with retransmission traffic. The ~86% spurious share is structural: when one worker's packet is lost, the other n−1 workers' slot timers fire too (Algorithm 4 has no per-worker loss knowledge) — the cost §6's 'adapt the retransmission timeout' remark alludes to");
    result
}

/// ATE/s vs worker core count at 100 Gbps.
pub fn ablation_cores(quick: bool) -> ExperimentResult {
    let elems = if quick { 200_000 } else { 2_000_000 };
    let mut result = ExperimentResult::new(
        "ablation_cores",
        "Worker cores vs ATE/s at 100 Gbps (8 workers)",
        &["cores", "ATE_Melem_s", "pct_line_rate"],
    );
    let line = switchml_baselines::cost::switchml_line_rate_ate(100_000_000_000, 32);
    for &cores in &[1usize, 2, 4, 8, 16] {
        let mut sc = SwitchMLScenario::new(8, elems).at_100g();
        sc.n_cores = cores;
        let out = run_switchml(&sc).expect("core ablation run");
        assert!(out.verified);
        result.row(vec![
            cores.to_string(),
            format!("{:.0}", out.ate_per_sec / 1e6),
            format!("{:.0}%", 100.0 * out.ate_per_sec / line),
        ]);
    }
    result.note("expected shape: throughput scales with cores until the wire (not the host) binds; the paper's 4-core 100 Gbps numbers were a self-described lower bound");
    result
}

/// Correctness/performance isolation at tiny pools.
pub fn ablation_pool_floor(quick: bool) -> ExperimentResult {
    let elems = if quick { 50_000 } else { 500_000 };
    let mut result = ExperimentResult::new(
        "ablation_pool",
        "Pathologically small pools: still correct, just slow (8 workers, 10 Gbps, 0.1% loss)",
        &["pool_size", "TAT_ms", "verified"],
    );
    for &s in &[1usize, 2, 4, 16, 128] {
        let mut sc = SwitchMLScenario::new(8, elems);
        sc.proto.pool_size = s;
        sc.link = sc.link.with_loss(0.001);
        let out = run_switchml(&sc).expect("pool ablation run");
        result.row(vec![
            s.to_string(),
            format!("{:.2}", out.max_tat.0 as f64 / 1e6),
            out.verified.to_string(),
        ]);
    }
    result.note("expected shape: correctness is invariant in s (the §3.5 invariants never depend on pool size); only throughput degrades when s·b < BDP");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_floor_stays_correct_even_at_one_slot() {
        let r = ablation_pool_floor(true);
        assert!(r.rows.iter().all(|row| row[2] == "true"));
        // TAT at s=1 must be much worse than at s=128.
        let t1: f64 = r.rows[0][1].parse().unwrap();
        let t128: f64 = r.rows.last().unwrap()[1].parse().unwrap();
        assert!(t1 > 5.0 * t128, "s=1 {t1} vs s=128 {t128}");
    }
}
