//! Measured reducer profiles.
//!
//! The training-throughput experiments (Table 1, Figure 3) need a
//! `(latency, sustained ATE/s)` characterization of each all-reduce
//! strategy. Rather than assuming numbers, we *measure* them on the
//! netsim substrate: one large run fixes the sustained rate, one small
//! run backs out the fixed per-tensor latency — the same calibration
//! one would do on a real testbed with a microbenchmark.

use switchml_baselines::{run_ring, run_switchml, RingScenario, SwitchMLScenario};
use switchml_dnn::ReducerProfile;
use switchml_netsim::time::Nanos;

/// Communication strategies the trainer compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    SwitchML,
    GlooRing,
    NcclRing,
}

impl Strategy {
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::SwitchML => "SwitchML",
            Strategy::GlooRing => "Gloo",
            Strategy::NcclRing => "NCCL",
        }
    }
}

fn switchml_scenario(n: usize, elems: usize, bandwidth_bps: u64) -> SwitchMLScenario {
    let mut sc = SwitchMLScenario::new(n, elems);
    if bandwidth_bps >= 100_000_000_000 {
        sc = sc.at_100g();
    } else {
        sc.link.bandwidth_bps = bandwidth_bps;
    }
    sc
}

fn ring_scenario(n: usize, elems: usize, bandwidth_bps: u64, nccl: bool) -> RingScenario {
    let mut sc = if nccl {
        RingScenario::nccl(n, elems)
    } else {
        RingScenario::gloo(n, elems)
    };
    sc.link.bandwidth_bps = bandwidth_bps;
    sc
}

/// Measure one strategy's reducer profile at a given scale.
pub fn measure_profile(
    strategy: Strategy,
    n_workers: usize,
    bandwidth_bps: u64,
    quick: bool,
) -> ReducerProfile {
    let big = if quick { 200_000 } else { 2_000_000 };
    let small = big / 20;

    let run = |elems: usize| -> (f64, f64) {
        let out = match strategy {
            Strategy::SwitchML => run_switchml(&switchml_scenario(n_workers, elems, bandwidth_bps))
                .expect("calibration run failed"),
            Strategy::GlooRing => run_ring(&ring_scenario(n_workers, elems, bandwidth_bps, false))
                .expect("calibration run failed"),
            Strategy::NcclRing => run_ring(&ring_scenario(n_workers, elems, bandwidth_bps, true))
                .expect("calibration run failed"),
        };
        assert!(out.verified, "calibration run produced wrong sums");
        (out.mean_tat_ns, elems as f64)
    };

    let (t_big, e_big) = run(big);
    let (t_small, e_small) = run(small);
    // Two-point fit of t = latency + e / rate.
    let rate = (e_big - e_small) / ((t_big - t_small) / 1e9);
    let latency_ns = (t_small - e_small / rate * 1e9).max(0.0);
    ReducerProfile::new(strategy.name(), rate.max(1.0), latency_ns)
}

/// The simulated end-to-end delay of the default rack (per §3.6: this
/// is what pool-size tuning consumes).
pub fn default_rack_delay() -> Nanos {
    Nanos::from_micros(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switchml_profile_is_sane_at_10g() {
        let p = measure_profile(Strategy::SwitchML, 4, 10_000_000_000, true);
        // Sustained rate near (but below) the 222 M elem/s line rate.
        assert!(p.ate_per_sec > 100e6, "{}", p.ate_per_sec);
        assert!(p.ate_per_sec < 250e6, "{}", p.ate_per_sec);
        assert!(p.latency_ns < 1e6);
    }

    #[test]
    fn gloo_slower_than_switchml() {
        let s = measure_profile(Strategy::SwitchML, 4, 10_000_000_000, true);
        let g = measure_profile(Strategy::GlooRing, 4, 10_000_000_000, true);
        assert!(
            s.ate_per_sec > 1.5 * g.ate_per_sec,
            "switchml {} vs gloo {}",
            s.ate_per_sec,
            g.ate_per_sec
        );
    }

    #[test]
    fn nccl_between_gloo_and_switchml() {
        let g = measure_profile(Strategy::GlooRing, 4, 10_000_000_000, true);
        let n = measure_profile(Strategy::NcclRing, 4, 10_000_000_000, true);
        assert!(n.ate_per_sec > g.ate_per_sec);
    }
}
