//! Extension experiments beyond the paper's numbered figures: the
//! §5.4 RDMA discussion quantified, the §5.5 "Switch resources"
//! paragraph as a table, and a gradient-compression convergence
//! comparison across every numeric path this reproduction implements.

use super::ExperimentResult;
use switchml_baselines::{
    run_ring, run_switchml, run_switchml_hierarchy, HierScenario, RingScenario, SwitchMLScenario,
};
use switchml_core::config::Protocol;
use switchml_core::packet::MTU_K;
use switchml_core::switch::pipeline::PipelineModel;
use switchml_dnn::data::gaussian_blobs;
use switchml_dnn::real_train::{train, Aggregation, TrainConfig};

/// §5.4 "Can SwitchML be faster than RDMA?" — Gloo over TCP vs Gloo
/// over RDMA vs SwitchML at 100 Gbps.
pub fn ext_rdma(quick: bool) -> ExperimentResult {
    let elems = if quick { 200_000 } else { 2_000_000 };
    let mut result = ExperimentResult::new(
        "ext_rdma",
        "RDMA what-if at 100 Gbps (8 workers): Gloo-TCP vs Gloo-RDMA vs SwitchML",
        &["transport", "TAT_ms", "speedup_vs_tcp"],
    );
    let bw = 100_000_000_000;
    let mut tcp = RingScenario::gloo(8, elems);
    tcp.link.bandwidth_bps = bw;
    let t_tcp = run_ring(&tcp).expect("gloo tcp");
    assert!(t_tcp.verified);

    let mut rdma = RingScenario::gloo_rdma(8, elems);
    rdma.link.bandwidth_bps = bw;
    let t_rdma = run_ring(&rdma).expect("gloo rdma");
    assert!(t_rdma.verified);

    let sm = run_switchml(&SwitchMLScenario::new(8, elems).at_100g()).expect("switchml");
    assert!(sm.verified);

    let base = t_tcp.max_tat.0 as f64;
    for (name, tat) in [
        ("Gloo (TCP)", t_tcp.max_tat.0 as f64),
        ("Gloo (RDMA)", t_rdma.max_tat.0 as f64),
        ("SwitchML", sm.max_tat.0 as f64),
    ] {
        result.row(vec![
            name.to_string(),
            format!("{:.2}", tat / 1e6),
            format!("{:.1}x", base / tat),
        ]);
    }
    result.note("paper (§5.4): RDMA gave Gloo a ~4x speedup over TCP at 100 Gbps, yet SwitchML still wins — it moves 2|U| instead of 4(n−1)|U|/n bytes and needs no per-connection reliability state");
    result
}

/// §5.5 "Switch resources": register space, stages, and parse budget
/// across the paper's configurations, via the pipeline model.
pub fn ext_resources(_quick: bool) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ext_resources",
        "Switch resource usage (pipeline model)",
        &[
            "config",
            "pool_KB",
            "bookkeeping_KB",
            "sram_pct",
            "stages",
            "parse_B",
        ],
    );
    let model = PipelineModel::default();
    for (name, pool, k) in [
        ("10 Gbps (s=128, k=32)", 128usize, 32usize),
        ("100 Gbps (s=512, k=32)", 512, 32),
        ("64 workers (s=512, k=32)", 512, 32),
    ] {
        let n = if name.starts_with("64") { 64 } else { 8 };
        let proto = Protocol {
            n_workers: n,
            k,
            pool_size: pool,
            ..Protocol::default()
        };
        let r = model.validate(&proto).expect("paper configs must fit");
        result.row(vec![
            name.to_string(),
            format!("{:.0}", r.pool_bytes as f64 / 1024.0),
            format!("{:.0}", r.bookkeeping_bytes as f64 / 1024.0),
            format!("{:.2}%", r.sram_fraction * 100.0),
            r.stages_used.to_string(),
            r.parse_bytes.to_string(),
        ]);
    }
    // The MTU what-if is rejected by a real pipeline.
    let mtu = Protocol {
        k: MTU_K,
        ..Protocol::default()
    };
    let err = model
        .validate(&mtu)
        .expect_err("MTU must exceed the parse budget");
    result.note(format!(
        "MTU-sized vectors rejected as the paper expects: {err}"
    ));
    result.note("paper: s=128/512 occupy 32/128 KB — 'even at 100 Gbps the memory requirement is << 10% of switch resources'; worker count does not change usage");
    result
}

/// Convergence across every gradient-exchange path implemented:
/// exact float, scaled int32, f16-on-the-wire, and majority-vote
/// signSGD — all through the real protocol.
pub fn ext_compression(quick: bool) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ext_compression",
        "Convergence by gradient-exchange scheme (real training, 4 workers)",
        &["scheme", "wire_bits_per_elem", "accuracy_pct", "diverged"],
    );
    let (tr, te) =
        gaussian_blobs(if quick { 400 } else { 1200 }, 8, 4, 4.0, 99).train_test_split(0.25);
    let base = TrainConfig {
        n_workers: 4,
        epochs: if quick { 4 } else { 12 },
        batch_per_worker: 16,
        lr: 0.1,
        seed: 5,
        agg: Aggregation::Exact,
        hidden: 0,
        byzantine: 0,
    };
    let schemes: Vec<(&str, u32, TrainConfig)> = vec![
        ("exact float (no network)", 32, base.clone()),
        (
            "int32 fixed-point (SwitchML)",
            32,
            TrainConfig {
                agg: Aggregation::Fixed32 { f: 1e6 },
                ..base.clone()
            },
        ),
        (
            "float16 wire (SwitchML)",
            16,
            TrainConfig {
                agg: Aggregation::Float16 { f: 100.0 },
                ..base.clone()
            },
        ),
        (
            "signSGD majority vote",
            1, // conceptually 1 bit/elem (carried as i32 here)
            TrainConfig {
                agg: Aggregation::SignSgd,
                lr: 0.02,
                ..base.clone()
            },
        ),
    ];
    for (name, bits, cfg) in schemes {
        let r = train(&tr, &te, &cfg);
        result.row(vec![
            name.to_string(),
            bits.to_string(),
            format!("{:.1}", r.final_accuracy * 100.0),
            if r.diverged { "yes" } else { "no" }.to_string(),
        ]);
    }
    result.note("expected shape: int32/f16 match exact accuracy (Appendix C's 'essentially lossless'); signSGD trades a little accuracy/speed for 1-bit traffic and Byzantine tolerance (§3.7's cited compression line of work)");
    result
}

/// §6 "Lack of congestion control": the system self-clocks to the
/// slowest worker. TAT vs one straggler's link speed.
pub fn ext_straggler(quick: bool) -> ExperimentResult {
    use switchml_baselines::switchml::{SlotRouter, SwitchMLSwitchNode, SwitchMLWorkerNode};
    use switchml_core::config::Protocol;
    use switchml_core::switch::reliable::ReliableSwitch;
    use switchml_core::worker::stream::TensorStream;
    use switchml_core::worker::Worker;
    use switchml_netsim::prelude::*;

    let elems = if quick { 100_000 } else { 1_000_000 };
    let mut result = ExperimentResult::new(
        "ext_straggler",
        "Self-clocking to the slowest worker (8 workers, 10 Gbps, one straggler)",
        &["straggler_bw", "TAT_ms", "slowdown", "queue_drops"],
    );
    let proto = Protocol {
        n_workers: 8,
        pool_size: 128,
        rto_ns: 20_000_000, // generous: slow, not lossy
        scaling_factor: 1000.0,
        ..Protocol::default()
    };
    let mut base_tat = 0.0f64;
    for &bw in &[
        10_000_000_000u64,
        5_000_000_000,
        2_500_000_000,
        1_000_000_000,
    ] {
        let mut topo = Topology::new();
        let sw = topo.add_node();
        let ws: Vec<NodeId> = (0..8)
            .map(|i| {
                let w = topo.add_node();
                let spec = LinkSpec::clean(
                    if i == 3 { bw } else { 10_000_000_000 },
                    Nanos::from_micros(1),
                );
                topo.add_duplex_link(w, sw, spec);
                w
            })
            .collect();
        let mut sim = Simulator::new(topo, SimConfig::default());
        for (rank, &id) in ws.iter().enumerate() {
            let data = vec![rank as f32 + 1.0; elems];
            let stream = TensorStream::from_f32(&[data], proto.mode, proto.scaling_factor, proto.k)
                .expect("stream");
            let worker = Worker::new(rank as u16, &proto, stream).expect("worker");
            sim.bind(
                id,
                Box::new(SwitchMLWorkerNode::new(
                    worker,
                    SlotRouter::Single(sw),
                    Nanos(90),
                )),
            );
        }
        sim.bind(
            sw,
            Box::new(SwitchMLSwitchNode::new(
                ReliableSwitch::new(&proto).expect("switch"),
                ws.clone(),
                1,
                Nanos::ZERO,
            )),
        );
        let report = sim.run();
        assert!(report.finished, "straggler run must converge");
        let tat = report.last_completion().expect("completed").0 as f64;
        if bw == 10_000_000_000 {
            base_tat = tat;
        }
        result.row(vec![
            format!("{:.1}G", bw as f64 / 1e9),
            format!("{:.2}", tat / 1e6),
            format!("{:.2}x", tat / base_tat),
            report.counters.dropped_queue.to_string(),
        ]);
    }
    result.note("expected shape: TAT tracks the straggler's line rate ~proportionally (self-clocking), with zero capacity drops — the flow control §6 argues makes congestion control unnecessary at rack scale");
    result
}

/// §6 "Extrapolating performance": flat vs hierarchical TAT as worker
/// count grows — "tensor aggregation time does not depend on first
/// order on the number of workers n".
pub fn ext_multirack(quick: bool) -> ExperimentResult {
    let elems = if quick { 100_000 } else { 1_000_000 };
    let mut result = ExperimentResult::new(
        "ext_multirack",
        "Worker-count scaling: flat rack vs 2-level tree (10 Gbps)",
        &["workers", "flat_TAT_ms", "tree_TAT_ms", "tree_racks"],
    );
    for &(n, racks) in &[(8usize, 2usize), (16, 4), (32, 4), (64, 8)] {
        let flat = run_switchml(&SwitchMLScenario::new(n, elems)).expect("flat");
        assert!(flat.verified);
        let hs = HierScenario::new(racks, n / racks, elems);
        let tree = run_switchml_hierarchy(&hs).expect("tree");
        assert!(tree.verified);
        result.row(vec![
            n.to_string(),
            format!("{:.2}", flat.max_tat.0 as f64 / 1e6),
            format!("{:.2}", tree.max_tat.0 as f64 / 1e6),
            racks.to_string(),
        ]);
    }
    result.note("expected shape: TAT ~constant in n for both (the §6 extrapolation claim); the tree adds only one aggregation hop of latency while its uplinks carry d:1-reduced traffic");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_self_clocks_proportionally() {
        let r = ext_straggler(true);
        // Row 1 = half-bandwidth straggler: slowdown ≈ 2×.
        let slow: f64 = r.rows[1][2].trim_end_matches('x').parse().unwrap();
        assert!((1.8..2.2).contains(&slow), "slowdown {slow}");
        // No capacity drops anywhere.
        assert!(r.rows.iter().all(|row| row[3] == "0"));
    }

    #[test]
    fn multirack_tat_constant_in_n() {
        let r = ext_multirack(true);
        let first: f64 = r.rows[0][1].parse().unwrap();
        let last: f64 = r.rows.last().unwrap()[1].parse().unwrap();
        assert!(
            (last / first) < 1.2,
            "TAT must be ~constant in n: {first} vs {last}"
        );
    }

    #[test]
    fn resources_match_paper() {
        let r = ext_resources(true);
        assert_eq!(r.rows[0][1], "32"); // 32 KB at s=128
        assert_eq!(r.rows[1][1], "128"); // 128 KB at s=512
                                         // Worker count row identical to the 8-worker s=512 row.
        assert_eq!(r.rows[1][1..], r.rows[2][1..]);
    }
}
