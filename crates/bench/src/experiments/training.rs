//! Training-throughput experiments: Table 1 and Figure 3.
//!
//! Pipeline: measure each strategy's reducer profile on the netsim
//! substrate (calibration), then drive the §5.2 synchronous-SGD
//! iteration model over the nine-model zoo.

use super::calibrate::{measure_profile, Strategy};
use super::ExperimentResult;
use switchml_dnn::{by_name, ideal_throughput, training_throughput, zoo, ReducerProfile};

const G10: u64 = 10_000_000_000;
const G100: u64 = 100_000_000_000;

/// Per-tensor framework invocation overhead added on top of the
/// measured wire profile. The paper's SwitchML integration enters the
/// synchronous Gloo all-reduce path once per tensor (Appendix B);
/// Horovod/NCCL fuses tensors and amortizes the call. Calibrated on
/// the paper's resnet50 row (161 tensors, 76.8% of ideal).
const FRAMEWORK_LATENCY_SWITCHML_NS: f64 = 1_000_000.0; // 1 ms
const FRAMEWORK_LATENCY_RING_NS: f64 = 300_000.0; // 0.3 ms

fn with_framework_overhead(mut p: ReducerProfile, strategy: Strategy) -> ReducerProfile {
    p.latency_ns += match strategy {
        Strategy::SwitchML => FRAMEWORK_LATENCY_SWITCHML_NS,
        _ => FRAMEWORK_LATENCY_RING_NS,
    };
    p
}

/// Published single-node 8-GPU throughputs (Table 1's "Multi-GPU"
/// column, from the TensorFlow benchmark suite [55]) — a hardware
/// baseline we cannot simulate, quoted for comparison as the paper
/// quotes it.
fn multi_gpu_published(model: &str) -> Option<f64> {
    match model {
        "inception3" => Some(1079.0),
        "resnet50" => Some(1630.0),
        "vgg16" => Some(898.0),
        _ => None,
    }
}

/// Table 1: training throughput (images/s) for inception3, resnet50
/// and vgg16 on 8 workers at 10 Gbps, batch 64.
pub fn table1(quick: bool) -> ExperimentResult {
    let n = 8;
    let batch = 64;
    let mut result = ExperimentResult::new(
        "table1",
        "Training throughput, images/s (8 workers, 10 Gbps, batch 64)",
        &[
            "model",
            "Ideal",
            "MultiGPU[55]",
            "NCCL",
            "SwitchML",
            "SwitchML_pct_ideal",
        ],
    );
    let nccl = with_framework_overhead(
        measure_profile(Strategy::NcclRing, n, G10, quick),
        Strategy::NcclRing,
    );
    let swml = with_framework_overhead(
        measure_profile(Strategy::SwitchML, n, G10, quick),
        Strategy::SwitchML,
    );
    for name in ["inception3", "resnet50", "vgg16"] {
        let model = by_name(name).expect("zoo model");
        let ideal = ideal_throughput(&model, n);
        let t_nccl = training_throughput(&model, n, batch, &nccl).images_per_sec;
        let t_swml = training_throughput(&model, n, batch, &swml).images_per_sec;
        result.row(vec![
            name.to_string(),
            format!("{:.0}", ideal),
            multi_gpu_published(name)
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.0}", t_nccl),
            format!("{:.0}", t_swml),
            format!("{:.1}%", 100.0 * t_swml / ideal),
        ]);
    }
    result.note("paper: SwitchML reaches 95.3% / 76.8% / 38.5% of ideal for inception3 / resnet50 / vgg16; NCCL 70.6% / 49.6% / 17.5%");
    result.note("expected shape: SwitchML ≫ NCCL everywhere; gap largest for vgg16 (network-bound), smallest for inception3 (compute-bound)");
    result
}

/// Figure 3: per-model training speedup of SwitchML over the NCCL
/// baseline at 10 and 100 Gbps.
pub fn fig3_speedups(quick: bool) -> ExperimentResult {
    let n = 8;
    let mut result = ExperimentResult::new(
        "fig3",
        "Training speedup vs NCCL baseline (8 workers)",
        &[
            "model",
            "speedup_10G",
            "speedup_100G",
            "paper_10G",
            "paper_100G",
        ],
    );
    let paper: &[(&str, f64, f64)] = &[
        ("alexnet", 2.2, 2.6),
        ("googlenet", 1.3, 1.4),
        ("inception3", 1.3, 1.5),
        ("inception4", 1.2, 1.2),
        ("resnet50", 1.5, 1.8),
        ("resnet101", 1.8, 1.6),
        ("vgg11", 3.0, 2.8),
        ("vgg16", 2.2, 2.8),
        ("vgg19", 2.7, 2.6),
    ];
    let profiles: Vec<(u64, ReducerProfile, ReducerProfile)> = [G10, G100]
        .iter()
        .map(|&bw| {
            (
                bw,
                with_framework_overhead(
                    measure_profile(Strategy::NcclRing, n, bw, quick),
                    Strategy::NcclRing,
                ),
                with_framework_overhead(
                    measure_profile(Strategy::SwitchML, n, bw, quick),
                    Strategy::SwitchML,
                ),
            )
        })
        .collect();
    for model in zoo::all_models() {
        let batch = model.batch_size;
        let mut speedups = Vec::new();
        for (_, nccl, swml) in &profiles {
            let t_n = training_throughput(&model, n, batch, nccl).images_per_sec;
            let t_s = training_throughput(&model, n, batch, swml).images_per_sec;
            speedups.push(t_s / t_n);
        }
        let (p10, p100) = paper
            .iter()
            .find(|(m, _, _)| *m == model.name)
            .map(|&(_, a, b)| (a, b))
            .expect("paper row");
        result.row(vec![
            model.name.to_string(),
            format!("{:.2}", speedups[0]),
            format!("{:.2}", speedups[1]),
            format!("{p10:.1}"),
            format!("{p100:.1}"),
        ]);
    }
    result.note("expected shape: VGG family and AlexNet (large updates per unit compute) gain 2–3×; Inception/GoogLeNet gain 1.2–1.5×; ordering matches the paper");
    result
}
