//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [all|table1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig10]...
//!           [--quick] [--out <dir>]
//! ```
//!
//! Prints each experiment as an aligned table and, with `--out`,
//! writes machine-readable JSON per experiment.

use std::io::Write;
use switchml_bench::experiments::{self, ALL_IDS};

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut quick = false;
    let mut out_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_dir = args.next(),
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: reproduce [all|{}] [--quick] [--out <dir>]",
            ALL_IDS.join("|")
        );
        std::process::exit(2);
    }
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    for id in &ids {
        let t0 = std::time::Instant::now();
        let Some(result) = experiments::run(id, quick) else {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        };
        println!("{}", result.render());
        println!(
            "  ({} completed in {:.1}s{})\n",
            id,
            t0.elapsed().as_secs_f64(),
            if quick { ", --quick" } else { "" }
        );
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{id}.json");
            let mut f = std::fs::File::create(&path).expect("create json");
            f.write_all(
                serde_json::to_string_pretty(&result)
                    .expect("serialize")
                    .as_bytes(),
            )
            .expect("write json");
        }
    }
}
