//! Hot-path measurement harness: proves the zero-allocation claim and
//! records the numbers behind it.
//!
//! ```text
//! hotpath [--quick] [--smoke] [--udp] [--hierarchy]
//!         [--out <path>] [--udp-out <path>] [--hier-out <path>]
//! ```
//!
//! Measures, in-process:
//!
//! * **codec** — ns/packet for the allocating `Packet::encode` /
//!   `Packet::decode` against `encode_into` / `PacketView::parse`;
//! * **switch hot path** — ns/packet for a steady-state reliable-switch
//!   ingest loop over the borrowed-view path, with a counting global
//!   allocator verifying **zero heap allocations per packet** (the
//!   harness aborts if any allocation sneaks in);
//! * **quantize** — GB/s of the scalar reference loop vs the
//!   chunk-wise kernels;
//! * **threaded ATE/s** — aggregated tensor elements per second through
//!   [`switchml_transport::run_allreduce_sharded`] at 1, 2 and 4
//!   cores. `hardware_threads` is recorded alongside: scaling is only
//!   expected to be monotonic when the host actually has the cores.
//!
//! * **udp burst I/O** — the batched UDP data plane: packets/sec
//!   through `recv_batch` at burst sizes 1/8/32 (drain of a prefilled
//!   loopback socket, allocation-checked), and end-to-end sharded
//!   all-reduce ATE/s over UDP vs the channel fabric at each
//!   (burst, cores) point. Written to `BENCH_udp.json` (override with
//!   `--udp-out`); `--udp` runs *only* this section.
//!
//! * **hierarchy crossover** — flat star vs the two-level leaf/spine
//!   tree over the same reactor data plane, per transport, across a
//!   (racks × workers-per-rack) grid. Records wall/ATE/retransmits for
//!   both shapes and the smallest worker count where hierarchy wins,
//!   per transport (null when it never does — expected for the
//!   in-process channel fabric on a small host). Written to
//!   `BENCH_hierarchy.json` (override with `--hier-out`);
//!   `--hierarchy` runs *only* this section.
//!
//! Writes pretty JSON to `BENCH_hotpath.json` (override with `--out`).
//! `--smoke` runs everything at tiny sizes and skips the JSON write —
//! CI uses it as a release-mode end-to-end check of the sharded runner
//! plus the allocation invariant.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use switchml_core::config::Protocol;
use switchml_core::packet::{encode_update_into, Packet, PacketView, PoolVersion};
use switchml_core::quant::fixed::{dequantize_chunk, dequantize_one, quantize_chunk, quantize_one};
use switchml_core::switch::reliable::ReliableSwitch;
use switchml_core::switch::WireAction;
use switchml_transport::runner::RunConfig;
use switchml_transport::shard::{
    run_allreduce_sharded, sharded_channel_fabric, sharded_fabric_size,
};
use switchml_transport::udp::udp_fabric;
use switchml_transport::{BurstBuf, Port, TxBatch};

/// Counts every heap allocation so steady-state loops can assert they
/// make none.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Mean ns per call of `f`, after a 10% warmup.
fn ns_per_iter<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

const K: usize = 32;

fn codec_section(iters: u64) -> serde_json::Value {
    let pkt = Packet::update(3, PoolVersion::V0, 7, 224, vec![42i32; K]);
    let wire = pkt.encode();
    let mut scratch = Vec::with_capacity(wire.len());

    let encode_alloc = ns_per_iter(iters, || {
        std::hint::black_box(pkt.encode());
    });
    let encode_into = ns_per_iter(iters, || {
        pkt.encode_into(&mut scratch);
        std::hint::black_box(scratch.len());
    });
    let decode_alloc = ns_per_iter(iters, || {
        std::hint::black_box(Packet::decode(&wire).unwrap());
    });
    let view_parse = ns_per_iter(iters, || {
        let v = PacketView::parse(&wire).unwrap();
        std::hint::black_box(v.idx());
    });
    println!(
        "codec k={K}: encode {encode_alloc:.1} -> encode_into {encode_into:.1} ns/pkt, \
         decode {decode_alloc:.1} -> view_parse {view_parse:.1} ns/pkt"
    );
    serde_json::json!({
        "k": K,
        "encode_alloc_ns": encode_alloc,
        "encode_into_ns": encode_into,
        "decode_alloc_ns": decode_alloc,
        "view_parse_ns": view_parse,
    })
}

/// Steady-state switch ingest: generate → parse → aggregate → encode
/// response, all in reused buffers. Returns (ns/packet, allocs/packet);
/// aborts the process if allocs/packet != 0.
fn switch_section(phases: u64) -> serde_json::Value {
    let n = 8usize;
    let proto = Protocol {
        n_workers: n,
        k: K,
        pool_size: 128,
        ..Protocol::default()
    };
    let mut sw = ReliableSwitch::new(&proto).unwrap();
    let mut wire = Vec::new();
    let mut tx = Vec::new();
    let vals = [9i32; K];
    let run_phase = |phase: u64, sw: &mut ReliableSwitch, wire: &mut Vec<u8>, tx: &mut Vec<u8>| {
        let ver = if phase.is_multiple_of(2) {
            PoolVersion::V0
        } else {
            PoolVersion::V1
        };
        for w in 0..n as u16 {
            encode_update_into(w, ver, 0, phase * K as u64, 0, false, &vals, wire);
            let v = PacketView::parse(wire).unwrap();
            let action = sw.on_view(&v, tx).unwrap();
            if w as usize == n - 1 {
                assert!(matches!(action, WireAction::Multicast));
            }
        }
    };

    // Warm up: let every scratch buffer reach its steady-state
    // capacity before counting.
    let mut phase = 0u64;
    for _ in 0..8 {
        run_phase(phase, &mut sw, &mut wire, &mut tx);
        phase += 1;
    }

    let a0 = allocations();
    let t0 = Instant::now();
    for _ in 0..phases {
        run_phase(phase, &mut sw, &mut wire, &mut tx);
        phase += 1;
    }
    let wall = t0.elapsed().as_secs_f64();
    let allocs = allocations() - a0;
    let packets = phases * n as u64;
    let ns_per_packet = wall * 1e9 / packets as f64;
    let allocs_per_packet = allocs as f64 / packets as f64;
    println!(
        "switch hot path: {ns_per_packet:.1} ns/pkt, {allocs} allocations over {packets} packets"
    );
    assert_eq!(
        allocs, 0,
        "switch aggregation hot path must not allocate (got {allocs} over {packets} packets)"
    );
    serde_json::json!({
        "n_workers": n,
        "k": K,
        "packets": packets,
        "ns_per_packet": ns_per_packet,
        "allocs_per_packet": allocs_per_packet,
    })
}

fn quantize_section(elems: usize, reps: u64, smoke: bool) -> serde_json::Value {
    let f = 1e6;
    let src: Vec<f32> = (0..elems).map(|i| (i as f32) * 0.001 - 30.0).collect();
    let mut q = vec![0i32; elems];
    let mut back = vec![0.0f32; elems];
    let bytes = (elems * 4) as f64;
    let backend = switchml_core::simd::active_backend().name();

    // This host is a shared vCPU: a preemption spike mid-measurement
    // can make any single run lie in either direction, so the
    // kernel-beats-scalar invariant gets up to three attempts before
    // the harness gives up.
    let mut attempt = 0;
    let (scalar_q, kernel_q, scalar_d, kernel_d) = loop {
        attempt += 1;
        let scalar_q = ns_per_iter(reps, || {
            for (s, d) in src.iter().zip(q.iter_mut()) {
                *d = quantize_one(*s, f);
            }
            std::hint::black_box(q[0]);
        });
        let kernel_q = ns_per_iter(reps, || {
            quantize_chunk(&src, f, &mut q);
            std::hint::black_box(q[0]);
        });
        let scalar_d = ns_per_iter(reps, || {
            for (s, d) in q.iter().zip(back.iter_mut()) {
                *d = dequantize_one(*s, f);
            }
            std::hint::black_box(back[0]);
        });
        let kernel_d = ns_per_iter(reps, || {
            dequantize_chunk(&q, f, &mut back);
            std::hint::black_box(back[0]);
        });
        // Smoke sizes are too small to measure reliably — report only.
        if smoke || (kernel_q < scalar_q && kernel_d <= scalar_d) {
            break (scalar_q, kernel_q, scalar_d, kernel_d);
        }
        assert!(
            attempt < 3,
            "quantize kernels slower than scalar after {attempt} attempts \
             (backend {backend}): quantize {kernel_q:.1} vs {scalar_q:.1} ns, \
             dequantize {kernel_d:.1} vs {scalar_d:.1} ns"
        );
        println!("quantize attempt {attempt} noisy (kernel ≥ scalar), retrying");
    };
    let gbps = |ns: f64| bytes / ns; // bytes/ns == GB/s
    println!(
        "quantize {elems} elems [{backend}]: scalar {:.2} GB/s -> kernel {:.2} GB/s; \
         dequantize scalar {:.2} GB/s -> kernel {:.2} GB/s",
        gbps(scalar_q),
        gbps(kernel_q),
        gbps(scalar_d),
        gbps(kernel_d)
    );
    serde_json::json!({
        "elems": elems,
        "backend": backend,
        "quantize_scalar_gbps": gbps(scalar_q),
        "quantize_kernel_gbps": gbps(kernel_q),
        "dequantize_scalar_gbps": gbps(scalar_d),
        "dequantize_kernel_gbps": gbps(kernel_d),
    })
}

/// Aggregated tensor elements per second through the sharded threaded
/// runner, per core count.
fn ate_section(elems: usize, cores: &[usize], hw: usize) -> serde_json::Value {
    let n = 2usize;
    let mut rows = Vec::new();
    for &c in cores {
        // Thread-per-engine needs c·(n+2) runnable threads; when that
        // exceeds the hardware they time-slice one CPU and the number
        // measures the scheduler, not the data plane. Record the point
        // as skipped instead of publishing a misleading wall time.
        if c > hw {
            println!("sharded allreduce cores={c}: skipped (host has {hw} hardware threads)");
            rows.push(serde_json::json!({
                "n_cores": c,
                "oversubscribed": true,
                "skipped": true,
            }));
            continue;
        }
        let proto = Protocol {
            n_workers: n,
            k: K,
            pool_size: 128,
            rto_ns: 5_000_000,
            scaling_factor: 10_000.0,
            ..Protocol::default()
        };
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| {
                vec![(0..elems)
                    .map(|i| (w + 1) as f32 + (i % 7) as f32)
                    .collect()]
            })
            .collect();
        let cfg = RunConfig {
            n_cores: c,
            ..RunConfig::default()
        };
        let report =
            run_allreduce_sharded(sharded_channel_fabric(n, c), updates, &proto, &cfg).unwrap();
        let ate = elems as f64 / report.wall.as_secs_f64();
        println!(
            "sharded allreduce n={n} elems={elems} cores={c}: {:.1} ms, {:.2} M ATE/s",
            report.wall.as_secs_f64() * 1e3,
            ate / 1e6
        );
        rows.push(serde_json::json!({
            "n_cores": c,
            "wall_ms": report.wall.as_secs_f64() * 1e3,
            "ate_per_sec": ate,
        }));
    }
    serde_json::Value::Array(rows)
}

/// The decoupling claim, measured: 64 virtual workers on a handful of
/// reactor threads vs thread-per-engine spawning 64 worker threads.
/// The reactor point is the headline; the threaded attempt runs under
/// a tight wall budget and records only whether it finished — on an
/// oversubscribed host it often cannot, which is the point.
fn reactor_scale_section(elems: usize, hw: usize) -> serde_json::Value {
    use switchml_transport::reactor::run_allreduce_reactor;

    let n = 64usize;
    let threads = hw.clamp(1, 4);
    let proto = Protocol {
        n_workers: n,
        k: K,
        pool_size: 128,
        rto_ns: 5_000_000,
        scaling_factor: 100.0,
        ..Protocol::default()
    };
    let mk_updates = || -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|w| vec![(0..elems).map(|i| ((w + i) % 5) as f32).collect()])
            .collect()
    };
    let cfg = RunConfig::default();
    let report = run_allreduce_reactor(
        sharded_channel_fabric(n, 1),
        mk_updates(),
        &proto,
        &cfg,
        threads,
    )
    .expect("reactor run");
    let stats = report.reactor.as_ref().expect("reactor stats");
    let ate = elems as f64 / report.wall.as_secs_f64();
    println!(
        "reactor allreduce n={n} elems={elems} threads={threads}: {:.1} ms, \
         {:.2} M ATE/s, {:.0} engines/thread, {} timer fires",
        report.wall.as_secs_f64() * 1e3,
        ate / 1e6,
        stats.engines_per_thread(),
        stats.timer_fires,
    );

    // Same workload through thread-per-engine: 64 worker threads plus
    // the shard thread on whatever CPUs exist.
    let budget = Duration::from_secs(10);
    let threaded_cfg = RunConfig {
        max_wall: budget,
        ..RunConfig::default()
    };
    let t0 = Instant::now();
    let threaded = run_allreduce_sharded(
        sharded_channel_fabric(n, 1),
        mk_updates(),
        &proto,
        &threaded_cfg,
    );
    let threaded_wall = t0.elapsed();
    let completed = threaded.is_ok();
    println!(
        "threaded allreduce n={n} elems={elems} (65 threads, {budget:?} budget): \
         completed={completed} in {:.1} ms",
        threaded_wall.as_secs_f64() * 1e3
    );

    serde_json::json!({
        "n_workers": n,
        "elems": elems,
        "reactor_threads": threads,
        "engines_per_thread": stats.engines_per_thread(),
        "reactor_wall_ms": report.wall.as_secs_f64() * 1e3,
        "reactor_ate_per_sec": ate,
        "reactor_timer_fires": stats.timer_fires,
        "reactor_polls": stats.polls,
        "threaded_threads": n + 1,
        "threaded_completed": completed,
        "threaded_wall_ms": threaded_wall.as_secs_f64() * 1e3,
    })
}

/// Kernel receive path at each burst size: fill a loopback socket with
/// a fixed flight of datagrams (untimed), then time draining it with
/// `recv_batch` at burst `b`. The flight is resent every round, so the
/// drain measures steady-state `recvmmsg` amortization — and the
/// counting allocator verifies the drain makes **zero** heap
/// allocations per packet.
fn udp_recv_section(rounds: u64, bursts: &[usize]) -> serde_json::Value {
    // Small enough that a flight always fits the default socket buffer
    // (64 datagrams of ~160 B is well under the kernel's skb budget).
    const FLIGHT: usize = 64;
    let vals = [7i32; K];
    let mut wire = Vec::new();
    encode_update_into(0, PoolVersion::V0, 3, 96, 0, false, &vals, &mut wire);

    let mut rows = Vec::new();
    for &b in bursts {
        let mut ports = udp_fabric(2).expect("loopback fabric");
        let mut rx = ports.pop().unwrap(); // endpoint 1
        let mut tx = ports.pop().unwrap(); // endpoint 0
        let mut txb = TxBatch::new(wire.len());
        let mut bufs = BurstBuf::new(b, wire.len());
        let mut drain_allocs = 0u64;
        let mut got = 0u64;
        let mut round_ns: Vec<f64> = Vec::with_capacity(rounds as usize);
        // One untimed warmup round arms the read timeout and grows
        // every reused buffer to steady-state capacity.
        for round in 0..rounds + 1 {
            txb.clear();
            for _ in 0..FLIGHT {
                txb.push(1).extend_from_slice(&wire);
            }
            txb.flush(&mut tx);
            let mut seen = 0usize;
            let a0 = allocations();
            let t0 = Instant::now();
            while seen < FLIGHT {
                let n = rx.recv_batch(&mut bufs, Duration::from_millis(200));
                if n == 0 {
                    break; // kernel dropped part of the flight
                }
                for (_from, frame) in bufs.iter() {
                    std::hint::black_box(frame.len());
                }
                seen += n;
            }
            if round > 0 && seen > 0 {
                round_ns.push(t0.elapsed().as_nanos() as f64 / seen as f64);
                drain_allocs += allocations() - a0;
                got += seen as u64;
            }
        }
        // This host is a shared vCPU: the mean is polluted by multi-µs
        // preemption spikes, so the headline number is the 10th-
        // percentile round — the repeatable steady state of the drain
        // itself. The mean is recorded alongside for honesty.
        round_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean_ns = round_ns.iter().sum::<f64>() / round_ns.len() as f64;
        let p10_ns = round_ns[round_ns.len() / 10];
        let pps = 1e9 / p10_ns;
        let allocs_per_packet = drain_allocs as f64 / got as f64;
        println!(
            "udp recv burst={b}: p10 {p10_ns:.1} ns/pkt ({:.2} M pkt/s), mean {mean_ns:.1} \
             ns/pkt, {drain_allocs} allocations over {got} packets",
            pps / 1e6
        );
        assert_eq!(
            drain_allocs, 0,
            "udp burst receive path must not allocate (burst={b})"
        );
        rows.push(serde_json::json!({
            "burst": b,
            "packets": got,
            "ns_per_packet": p10_ns,
            "ns_per_packet_mean": mean_ns,
            "packets_per_sec": pps,
            "allocs_per_packet": allocs_per_packet,
        }));
    }
    serde_json::Value::Array(rows)
}

/// Full sharded all-reduce over UDP loopback vs the channel fabric at
/// each (burst, cores) point — end-to-end ATE/s for the same protocol
/// over real sockets, plus kernel send-error counts from the port
/// stats.
fn udp_allreduce_section(elems: usize, cores: &[usize], bursts: &[usize]) -> serde_json::Value {
    let n = 2usize;
    let mut rows = Vec::new();
    for &c in cores {
        for &b in bursts {
            for transport in ["channel", "udp"] {
                let proto = Protocol {
                    n_workers: n,
                    k: K,
                    pool_size: 128,
                    rto_ns: 5_000_000,
                    scaling_factor: 10_000.0,
                    ..Protocol::default()
                };
                let updates: Vec<Vec<Vec<f32>>> = (0..n)
                    .map(|w| {
                        vec![(0..elems)
                            .map(|i| (w + 1) as f32 + (i % 7) as f32)
                            .collect()]
                    })
                    .collect();
                let cfg = RunConfig {
                    n_cores: c,
                    burst: b,
                    ..RunConfig::default()
                };
                let report = match transport {
                    "udp" => {
                        let ports = udp_fabric(sharded_fabric_size(n, c)).expect("udp fabric");
                        run_allreduce_sharded(ports, updates, &proto, &cfg)
                    }
                    _ => run_allreduce_sharded(sharded_channel_fabric(n, c), updates, &proto, &cfg),
                }
                .unwrap();
                let ate = elems as f64 / report.wall.as_secs_f64();
                println!(
                    "allreduce {transport} n={n} elems={elems} cores={c} burst={b}: \
                     {:.1} ms, {:.2} M ATE/s, {} send errors",
                    report.wall.as_secs_f64() * 1e3,
                    ate / 1e6,
                    report.transport_stats.send_errors
                );
                rows.push(serde_json::json!({
                    "transport": transport,
                    "burst": b,
                    "n_cores": c,
                    "wall_ms": report.wall.as_secs_f64() * 1e3,
                    "ate_per_sec": ate,
                    "send_errors": report.transport_stats.send_errors,
                }));
            }
        }
    }
    serde_json::Value::Array(rows)
}

/// Flat star vs two-level hierarchy on the same workload, per
/// transport, across a (racks × workers-per-rack) grid — the §6
/// crossover, measured. The flat star funnels all `n` workers into one
/// switch socket; the hierarchy bounds per-socket fan-in to
/// `max(workers_per_rack, racks)`. On loopback UDP the flat star's
/// incast overruns the switch socket's receive buffer as `n` grows and
/// every dropped burst costs an RTO, so hierarchy wins past a fan-in
/// threshold; on the in-process channel fabric (no socket buffer to
/// overrun, one CPU to share) the hierarchy's extra hop is pure
/// overhead and flat is expected to keep winning — both numbers are
/// recorded as measured.
fn hierarchy_section(grid: &[(usize, usize)], elems: usize, threads: usize) -> serde_json::Value {
    use switchml_transport::hier::{hier_fabric_size, run_allreduce_hier, HierConfig};
    use switchml_transport::reactor::run_allreduce_reactor;
    use switchml_transport::runner::RunReport;
    use switchml_transport::shard::sharded_channel_fabric;

    let mut rows = Vec::new();
    let mut crossover: Vec<(String, Vec<usize>)> =
        vec![("channel".into(), Vec::new()), ("udp".into(), Vec::new())];
    for &(racks, wpr) in grid {
        let n = racks * wpr;
        let proto = Protocol {
            n_workers: n,
            k: K,
            pool_size: 128,
            rto_ns: 5_000_000,
            // Coarse scaling keeps 64-worker sums far inside the
            // Fixed32 range; both sides quantize identically.
            scaling_factor: 100.0,
            ..Protocol::default()
        };
        let mk_updates = || -> Vec<Vec<Vec<f32>>> {
            (0..n)
                .map(|w| vec![(0..elems).map(|i| ((w + i) % 5) as f32).collect()])
                .collect()
        };
        let cfg = RunConfig {
            max_wall: Duration::from_secs(120),
            ..RunConfig::default()
        };
        let hc = HierConfig {
            n_threads: threads,
            ..HierConfig::new(racks, wpr)
        };
        for transport in ["channel", "udp"] {
            let (flat, hier): (RunReport, RunReport) = match transport {
                "udp" => {
                    let flat_ports =
                        udp_fabric(sharded_fabric_size(n, 1)).expect("udp flat fabric");
                    let flat =
                        run_allreduce_reactor(flat_ports, mk_updates(), &proto, &cfg, threads)
                            .expect("flat udp run");
                    let hier_ports =
                        udp_fabric(hier_fabric_size(racks, wpr)).expect("udp hier fabric");
                    let hier = run_allreduce_hier(hier_ports, mk_updates(), &proto, &cfg, &hc)
                        .expect("hier udp run");
                    (flat, hier)
                }
                _ => {
                    let flat = run_allreduce_reactor(
                        sharded_channel_fabric(n, 1),
                        mk_updates(),
                        &proto,
                        &cfg,
                        threads,
                    )
                    .expect("flat channel run");
                    let hier = run_allreduce_hier(
                        switchml_transport::channel::channel_fabric(hier_fabric_size(racks, wpr)),
                        mk_updates(),
                        &proto,
                        &cfg,
                        &hc,
                    )
                    .expect("hier channel run");
                    (flat, hier)
                }
            };
            assert_eq!(
                flat.results, hier.results,
                "flat and hierarchical {transport} runs must agree bit-for-bit \
                 ({racks}x{wpr})"
            );
            let flat_ate = elems as f64 / flat.wall.as_secs_f64();
            let hier_ate = elems as f64 / hier.wall.as_secs_f64();
            let flat_retx: u64 = flat.worker_stats.iter().map(|s| s.retx).sum();
            let hr = hier.hier.as_ref().expect("hier counters");
            let hier_retx: u64 = hier.worker_stats.iter().map(|s| s.retx).sum::<u64>()
                + hr.leaf_up_stats.iter().map(|s| s.retx).sum::<u64>();
            let hier_wins = hier_ate > flat_ate;
            if hier_wins {
                if let Some(entry) = crossover.iter_mut().find(|(t, _)| t == transport) {
                    entry.1.push(n);
                }
            }
            println!(
                "hierarchy {transport} {racks}x{wpr} (n={n}): flat {:.1} ms ({:.2} M ATE/s, \
                 {flat_retx} retx) vs hier {:.1} ms ({:.2} M ATE/s, {hier_retx} retx) -> {}",
                flat.wall.as_secs_f64() * 1e3,
                flat_ate / 1e6,
                hier.wall.as_secs_f64() * 1e3,
                hier_ate / 1e6,
                if hier_wins { "HIERARCHY" } else { "flat" },
            );
            rows.push(serde_json::json!({
                "transport": transport,
                "racks": racks,
                "workers_per_rack": wpr,
                "workers": n,
                "flat_fan_in": n,
                "hier_fan_in": wpr.max(racks),
                "flat_wall_ms": flat.wall.as_secs_f64() * 1e3,
                "flat_ate_per_sec": flat_ate,
                "flat_retx": flat_retx,
                "hier_wall_ms": hier.wall.as_secs_f64() * 1e3,
                "hier_ate_per_sec": hier_ate,
                "hier_retx": hier_retx,
                "hier_speedup": flat.wall.as_secs_f64() / hier.wall.as_secs_f64(),
                "hier_wins": hier_wins,
            }));
        }
    }
    // Single runs on a shared host are not monotonic in n, so record
    // every winning point, not just the first: a lone early win is
    // visibly noise, a cluster of wins at high fan-in is the signal.
    let crossover_json: Vec<serde_json::Value> = crossover
        .iter()
        .map(|(t, wins)| {
            let first = match wins.first() {
                Some(&n) => serde_json::json!(n as u64),
                None => serde_json::Value::Null,
            };
            let all: Vec<serde_json::Value> =
                wins.iter().map(|&n| serde_json::json!(n as u64)).collect();
            serde_json::json!({
                "transport": t,
                "first_win_at_workers": first,
                "wins_at_workers": serde_json::Value::Array(all),
            })
        })
        .collect();
    serde_json::json!({
        "elems": elems,
        "reactor_threads": threads,
        "grid": serde_json::Value::Array(rows),
        "crossover": serde_json::Value::Array(crossover_json),
    })
}

fn main() {
    let mut quick = false;
    let mut smoke = false;
    let mut udp_only = false;
    let mut hierarchy_only = false;
    let mut out = String::from("BENCH_hotpath.json");
    let mut udp_out = String::from("BENCH_udp.json");
    let mut hier_out = String::from("BENCH_hierarchy.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--smoke" => smoke = true,
            "--udp" => udp_only = true,
            "--hierarchy" => hierarchy_only = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--udp-out" => udp_out = args.next().expect("--udp-out needs a path"),
            "--hier-out" => hier_out = args.next().expect("--hier-out needs a path"),
            other => {
                eprintln!(
                    "usage: hotpath [--quick] [--smoke] [--udp] [--hierarchy] [--out <path>] \
                     [--udp-out <path>] [--hier-out <path>], got {other:?}"
                );
                std::process::exit(2);
            }
        }
    }
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("hardware threads: {hw}");

    if hierarchy_only {
        let (grid, hier_elems): (&[(usize, usize)], usize) = if smoke {
            (&[(2, 2)], 1_024)
        } else if quick {
            (&[(2, 2), (2, 4), (4, 4)], 8_192)
        } else {
            (&[(2, 2), (2, 4), (4, 4), (4, 8), (8, 8)], 16_384)
        };
        let section = hierarchy_section(grid, hier_elems, 2);
        if smoke {
            println!("hierarchy smoke OK: flat and tree agree bit-for-bit on both transports");
            return;
        }
        let doc = serde_json::json!({
            "bench": "hierarchy",
            "quick": quick,
            "hardware_threads": hw,
            "hierarchy": section,
            "note": "The crossover driver is UDP incast: the flat star funnels all n workers \
                     into one switch socket, so drops (and 5 ms RTOs) grow with n, while the \
                     tree caps per-socket fan-in at max(workers_per_rack, racks). The channel \
                     fabric has no socket buffer to overrun, so on a host with few cores the \
                     extra hop is pure overhead and flat is expected to keep winning there; \
                     both are recorded as measured.",
        });
        std::fs::write(
            &hier_out,
            serde_json::to_string_pretty(&doc).unwrap() + "\n",
        )
        .expect("write JSON");
        println!("wrote {hier_out}");
        return;
    }

    let (codec_iters, switch_phases, quant_elems, quant_reps, ate_elems): (
        u64,
        u64,
        usize,
        u64,
        usize,
    ) = if smoke {
        (2_000, 1_000, 4 * 1024, 20, 20_000)
    } else if quick {
        (50_000, 20_000, 64 * 1024, 100, 100_000)
    } else {
        (500_000, 200_000, 1024 * 1024, 200, 400_000)
    };

    if !udp_only {
        let codec = codec_section(codec_iters);
        let switch = switch_section(switch_phases);
        let quant = quantize_section(quant_elems, quant_reps, smoke);
        let ate = ate_section(ate_elems, &[1, 2, 4], hw);
        let reactor = reactor_scale_section(if smoke { 64 } else { 2048 }, hw);

        if smoke {
            println!("smoke OK: sharded runner correct and hot path allocation-free");
            return;
        }
        let doc = serde_json::json!({
            "bench": "hotpath",
            "quick": quick,
            "hardware_threads": hw,
            "codec": codec,
            "switch_hot_path": switch,
            "quantize": quant,
            "threaded_ate": ate,
            "reactor_scale": reactor,
            "note": "ATE/s scaling with n_cores is hardware-bound: points with n_cores above \
                     hardware_threads are recorded as oversubscribed+skipped rather than \
                     publishing scheduler noise.",
        });
        std::fs::write(&out, serde_json::to_string_pretty(&doc).unwrap() + "\n")
            .expect("write JSON");
        println!("wrote {out}");
    }

    // UDP burst data plane: receive-path syscall amortization plus the
    // sharded all-reduce end to end over real sockets.
    let (recv_rounds, udp_elems, udp_cores, udp_bursts): (u64, usize, &[usize], &[usize]) = if smoke
    {
        (50, 8_000, &[1], &[1, 32])
    } else if quick {
        (400, 40_000, &[1, 2], &[1, 8, 32])
    } else {
        (2_000, 200_000, &[1, 2], &[1, 8, 32])
    };
    let recv = udp_recv_section(recv_rounds, udp_bursts);
    let allreduce = udp_allreduce_section(udp_elems, udp_cores, udp_bursts);
    let udp_doc = serde_json::json!({
        "bench": "udp",
        "quick": quick || smoke,
        "hardware_threads": hw,
        "recv_path": recv,
        "allreduce": allreduce,
        "note": "recv_path times only the recv_batch drain of a prefilled socket, so it \
                 isolates per-packet syscall cost; allreduce is end-to-end wall clock and \
                 inherits the hardware-thread caveat from BENCH_hotpath.json.",
    });
    std::fs::write(
        &udp_out,
        serde_json::to_string_pretty(&udp_doc).unwrap() + "\n",
    )
    .expect("write JSON");
    println!("wrote {udp_out}");
}
