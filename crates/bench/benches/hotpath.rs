//! Packet-codec and kernel hot-path microbenchmarks: the allocating
//! legacy paths (`Packet::encode` / `Packet::decode` / scalar
//! quantize) against their zero-allocation replacements
//! (`encode_into` / `PacketView::parse` / `quantize_chunk`), plus the
//! full switch ingest round through the borrowed-view path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use switchml_core::config::Protocol;
use switchml_core::packet::{Packet, PacketView, PoolVersion};
use switchml_core::quant::fixed::{quantize_chunk, quantize_one};
use switchml_core::switch::reliable::ReliableSwitch;

const K: usize = 32;

fn update(w: u16, phase: u64) -> Packet {
    let ver = if phase.is_multiple_of(2) {
        PoolVersion::V0
    } else {
        PoolVersion::V1
    };
    Packet::update(w, ver, 0, phase * K as u64, vec![7i32; K])
}

fn bench_codec(c: &mut Criterion) {
    let pkt = update(3, 0);
    let wire = pkt.encode();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(1));

    group.bench_function("encode_alloc_k32", |b| {
        b.iter(|| black_box(black_box(&pkt).encode()))
    });
    let mut scratch = Vec::with_capacity(wire.len());
    group.bench_function("encode_into_k32", |b| {
        b.iter(|| {
            black_box(&pkt).encode_into(&mut scratch);
            black_box(scratch.len())
        })
    });
    group.bench_function("decode_alloc_k32", |b| {
        b.iter(|| black_box(Packet::decode(black_box(&wire)).unwrap()))
    });
    group.bench_function("view_parse_k32", |b| {
        b.iter(|| {
            let v = PacketView::parse(black_box(&wire)).unwrap();
            black_box(v.idx())
        })
    });
    group.finish();
}

/// One full aggregation round (n update packets → one result) through
/// the borrowed-view switch path, wire bytes in, wire bytes out.
fn bench_switch_view(c: &mut Criterion) {
    let n = 8;
    let proto = Protocol {
        n_workers: n,
        k: K,
        pool_size: 128,
        ..Protocol::default()
    };
    let mut sw = ReliableSwitch::new(&proto).unwrap();
    let mut tx = Vec::new();
    let mut phase = 0u64;
    let mut group = c.benchmark_group("switch");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("on_view_round_n8_k32", |b| {
        b.iter(|| {
            for w in 0..n as u16 {
                let wire = update(w, phase).encode();
                let v = PacketView::parse(&wire).unwrap();
                black_box(sw.on_view(&v, &mut tx).unwrap());
            }
            phase += 1;
        })
    });
    group.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let elems = 64 * 1024;
    let src: Vec<f32> = (0..elems).map(|i| (i as f32) * 0.001 - 30.0).collect();
    let mut dst = vec![0i32; elems];
    let f = 1e6;
    let mut group = c.benchmark_group("quantize");
    group.throughput(Throughput::Bytes((elems * 4) as u64));
    group.bench_function("scalar_64k", |b| {
        b.iter(|| {
            for (s, d) in src.iter().zip(dst.iter_mut()) {
                *d = quantize_one(*s, f);
            }
            black_box(dst[0])
        })
    });
    group.bench_function("chunk_kernel_64k", |b| {
        b.iter(|| {
            quantize_chunk(&src, f, &mut dst);
            black_box(dst[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_switch_view, bench_quantize);
criterion_main!(benches);
