//! Switch dataplane throughput: packets per second through Algorithm 1
//! and Algorithm 3 state machines (the software analog of the paper's
//! line-rate requirement).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use switchml_core::bitmap::WorkerBitmap;
use switchml_core::config::Protocol;
use switchml_core::packet::{Packet, PoolVersion};
use switchml_core::switch::basic::BasicSwitch;
use switchml_core::switch::reliable::ReliableSwitch;

fn proto(n: usize) -> Protocol {
    Protocol {
        n_workers: n,
        k: 32,
        pool_size: 128,
        ..Protocol::default()
    }
}

/// One full aggregation round: n updates into one slot → multicast.
fn bench_switches(c: &mut Criterion) {
    let n = 8;
    let mut group = c.benchmark_group("switch");
    group.throughput(Throughput::Elements(n as u64)); // packets per round

    let mut basic = BasicSwitch::new(&proto(n)).unwrap();
    group.bench_function("basic_round_n8_k32", |b| {
        b.iter(|| {
            for w in 0..n as u16 {
                let p = Packet::update(w, PoolVersion::V0, 0, 0, vec![1i32; 32]);
                black_box(basic.on_packet(p).unwrap());
            }
        })
    });

    let mut reliable = ReliableSwitch::new(&proto(n)).unwrap();
    let mut phase = 0u64;
    group.bench_function("reliable_round_n8_k32", |b| {
        b.iter(|| {
            let ver = if phase.is_multiple_of(2) {
                PoolVersion::V0
            } else {
                PoolVersion::V1
            };
            for w in 0..n as u16 {
                let p = Packet::update(w, ver, 0, phase * 32, vec![1i32; 32]);
                black_box(reliable.on_packet(p).unwrap());
            }
            phase += 1;
        })
    });
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut bm = WorkerBitmap::empty();
    c.bench_function("bitmap_set_clear_count", |b| {
        b.iter(|| {
            for w in 0..64 {
                bm.set(black_box(w));
            }
            let n = bm.count();
            bm.reset();
            black_box(n)
        })
    });
}

criterion_group!(benches, bench_switches, bench_bitmap);
criterion_main!(benches);
