//! Hot-path microbenchmarks for the numeric machinery (§3.7, Fig. 8):
//! scaling + type conversion must be negligible next to wire time.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use switchml_core::checksum::crc32;
use switchml_core::packet::{Packet, Payload, PoolVersion};
use switchml_core::quant::f16::{f16_slice_to_f32, f32_slice_to_f16};
use switchml_core::quant::{dequantize, quantize, saturating_add_into};

fn bench_quantize(c: &mut Criterion) {
    let src: Vec<f32> = (0..1_000_000).map(|i| (i as f32).sin() * 20.0).collect();
    let mut dst = Vec::with_capacity(src.len());
    let mut group = c.benchmark_group("quantize");
    group.throughput(Throughput::Elements(src.len() as u64));
    group.bench_function("f32_to_i32_1M", |b| {
        b.iter(|| quantize(black_box(&src), 1e6, &mut dst))
    });
    let q: Vec<i32> = src.iter().map(|&x| (x * 1e6) as i32).collect();
    let mut back = Vec::with_capacity(q.len());
    group.bench_function("i32_to_f32_1M", |b| {
        b.iter(|| dequantize(black_box(&q), 1e6, &mut back))
    });
    group.finish();
}

fn bench_f16(c: &mut Criterion) {
    let src: Vec<f32> = (0..1_000_000).map(|i| (i as f32).cos() * 100.0).collect();
    let mut h = Vec::with_capacity(src.len());
    let mut group = c.benchmark_group("f16");
    group.throughput(Throughput::Elements(src.len() as u64));
    group.bench_function("f32_to_f16_1M", |b| {
        b.iter(|| f32_slice_to_f16(black_box(&src), &mut h))
    });
    f32_slice_to_f16(&src, &mut h);
    let mut back = Vec::with_capacity(h.len());
    group.bench_function("f16_to_f32_1M", |b| {
        b.iter(|| f16_slice_to_f32(black_box(&h), &mut back))
    });
    group.finish();
}

fn bench_aggregation_op(c: &mut Criterion) {
    let mut acc = vec![1i32; 1_000_000];
    let v = vec![2i32; 1_000_000];
    let mut group = c.benchmark_group("aggregate");
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("saturating_add_1M", |b| {
        b.iter(|| saturating_add_into(black_box(&mut acc), black_box(&v)))
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let pkt = Packet {
        kind: switchml_core::packet::PacketKind::Update,
        wid: 3,
        ver: PoolVersion::V1,
        idx: 17,
        off: 4096,
        job: 0,
        epoch: 0,
        retransmission: false,
        payload: Payload::I32((0..32).collect()),
    };
    let bytes = pkt.encode();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_k32", |b| b.iter(|| black_box(&pkt).encode()));
    group.bench_function("decode_k32", |b| {
        b.iter(|| Packet::decode(black_box(&bytes)).unwrap())
    });
    let frame: Vec<u8> = (0..180).map(|i| i as u8).collect();
    group.bench_function("crc32_180B", |b| b.iter(|| crc32(black_box(&frame))));
    group.finish();
}

criterion_group!(
    benches,
    bench_quantize,
    bench_f16,
    bench_aggregation_op,
    bench_codec
);
criterion_main!(benches);
