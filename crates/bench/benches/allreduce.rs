//! End-to-end all-reduce benchmarks: the in-process protocol harness
//! and the netsim-driven SwitchML/ring runners (simulator throughput,
//! which bounds how big the reproduction experiments can go).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use switchml_baselines::{run_ring, run_switchml, RingScenario, SwitchMLScenario};
use switchml_core::agg::allreduce;
use switchml_core::config::Protocol;

fn bench_inprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("inprocess_allreduce");
    for &n in &[2usize, 8] {
        let elems = 50_000;
        let updates: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|w| vec![(0..elems).map(|i| (w + i) as f32 * 0.01).collect()])
            .collect();
        let proto = Protocol {
            n_workers: n,
            pool_size: 64,
            ..Protocol::default()
        };
        group.throughput(Throughput::Elements(elems as u64));
        group.bench_with_input(BenchmarkId::new("workers", n), &n, |b, _| {
            b.iter(|| black_box(allreduce(&updates, &proto).unwrap()))
        });
    }
    group.finish();
}

fn bench_netsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.sample_size(10);
    let elems = 100_000;
    group.throughput(Throughput::Elements(elems as u64));
    group.bench_function("switchml_8w_10g_100k", |b| {
        b.iter(|| black_box(run_switchml(&SwitchMLScenario::new(8, elems)).unwrap()))
    });
    group.bench_function("ring_8w_10g_100k", |b| {
        let mut sc = RingScenario::gloo(8, elems);
        sc.host_cost = switchml_netsim::time::Nanos(500);
        b.iter(|| black_box(run_ring(&sc).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_inprocess, bench_netsim);
criterion_main!(benches);
