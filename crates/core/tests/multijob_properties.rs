//! Property-based tests of the multi-tenant admission ledger.
//!
//! A churning job population — arrivals, departures, crashes (evict),
//! preemption-driven repartitions (reset) — must never overdraw the
//! modeled register SRAM and must never strand a slot: every byte and
//! every physical slot is owned by exactly one live job, and when the
//! last job leaves, the ledger reads zero.

use proptest::prelude::*;
use switchml_core::config::Protocol;
use switchml_core::switch::multijob::MultiJobSwitch;
use switchml_core::switch::pipeline::PipelineModel;

fn proto(n: usize, s: usize) -> Protocol {
    Protocol {
        n_workers: n,
        k: 32,
        pool_size: s,
        ..Protocol::default()
    }
}

/// A small SRAM budget so random sequences actually hit the admission
/// limit instead of always fitting.
fn tight_model() -> PipelineModel {
    PipelineModel {
        register_sram_bytes: 600 * 1024,
        ..PipelineModel::default()
    }
}

/// The cost the pipeline model charges for one job, recomputed
/// independently of the ledger.
fn job_cost(model: &PipelineModel, p: &Protocol) -> usize {
    let r = model.validate(p).expect("generated protos are valid");
    r.pool_bytes + r.bookkeeping_bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random arrival / departure / crash / preemption sequences:
    /// after every step the committed-bytes ledger equals the
    /// independently recomputed sum over live jobs, never exceeds the
    /// SRAM budget, and the slot partition stays disjoint. After
    /// evicting every survivor the ledger reads zero and the partition
    /// is empty — no orphaned bytes, no orphaned slots.
    #[test]
    fn churn_never_overdraws_or_strands(
        ops in prop::collection::vec(
            (0u8..3, 0u8..8, 1u32..5), 1..60),
    ) {
        let model = tight_model();
        let budget = model.register_sram_bytes;
        let mut sw = MultiJobSwitch::new(model.clone());
        // Shadow model: job -> proto it currently runs under.
        let mut live: std::collections::BTreeMap<u8, Protocol> =
            Default::default();

        for (op, job, size) in ops {
            let p = proto(2 + (job as usize % 3), 64 * size as usize);
            match op {
                // Arrival.
                0 => match sw.admit(job, &p) {
                    Ok(()) => { live.insert(job, p); }
                    Err(_) => {
                        // Rejection must mean double admission or a
                        // genuine budget shortfall, never a spurious
                        // failure.
                        let over = sw.committed_bytes() + job_cost(&model, &p) > budget;
                        prop_assert!(live.contains_key(&job) || over);
                    }
                },
                // Departure / crash.
                1 => {
                    let r = sw.evict(job);
                    prop_assert_eq!(r.is_ok(), live.remove(&job).is_some());
                }
                // Preemption-driven repartition (shrink or grow).
                _ => match sw.reset_job(job, &p) {
                    Ok(()) => {
                        prop_assert!(live.contains_key(&job));
                        live.insert(job, p);
                    }
                    Err(_) => {
                        let known = live.contains_key(&job);
                        let over = known && {
                            let old = job_cost(&model, &live[&job]);
                            sw.committed_bytes() - old + job_cost(&model, &p) > budget
                        };
                        prop_assert!(!known || over);
                    }
                },
            }

            // Ledger invariants, re-derived from the shadow model.
            let expected: usize = live.values().map(|p| job_cost(&model, p)).sum();
            prop_assert_eq!(sw.committed_bytes(), expected);
            prop_assert!(sw.committed_bytes() <= budget);
            prop_assert_eq!(sw.job_count(), live.len());
            prop_assert!(sw.partition_is_disjoint());
            // Every live job owns exactly its proto's slot count.
            for (&j, p) in &live {
                let range = sw.slot_range(j);
                prop_assert!(range.is_some());
                prop_assert_eq!(range.unwrap().len as usize, p.pool_size);
            }
        }

        // Teardown: nothing may be stranded.
        for j in sw.job_ids() {
            sw.evict(j).unwrap();
        }
        prop_assert_eq!(sw.committed_bytes(), 0);
        prop_assert_eq!(sw.job_count(), 0);
        prop_assert!(sw.partition().is_empty());
    }
}
