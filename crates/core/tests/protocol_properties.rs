//! Property-based tests of the core protocol invariants.
//!
//! These attack the switch and worker state machines directly (below
//! the harness level): arbitrary packet interleavings, duplicate
//! storms, and randomized slot schedules must never break the §3.5
//! invariants.

use proptest::prelude::*;
use switchml_core::config::Protocol;
use switchml_core::packet::{Packet, PacketKind, Payload, PoolVersion};
use switchml_core::quant::f16::{f16_to_f32, f32_to_f16};
use switchml_core::switch::basic::BasicSwitch;
use switchml_core::switch::reliable::ReliableSwitch;
use switchml_core::switch::SwitchAction;
use switchml_core::worker::engine::{EngineConfig, ResultOutcome, SlotEngine};

fn proto(n: usize, k: usize, s: usize) -> Protocol {
    Protocol {
        n_workers: n,
        k,
        pool_size: s,
        ..Protocol::default()
    }
}

fn upd(wid: u16, ver: PoolVersion, idx: u32, off: u64, v: Vec<i32>) -> Packet {
    Packet {
        kind: PacketKind::Update,
        wid,
        ver,
        idx,
        off,
        job: 0,
        epoch: 0,
        retransmission: false,
        payload: Payload::I32(v),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Algorithm 1: the aggregate is independent of arrival order
    /// (commutativity/associativity, the property §3.3 relies on).
    #[test]
    fn basic_switch_order_independent(
        values in prop::collection::vec(-1000i32..1000, 2..8),
        perm_seed in any::<u64>(),
    ) {
        let n = values.len();
        let p = proto(n, 1, 1);
        // Identity order.
        let mut sw1 = BasicSwitch::new(&p).unwrap();
        let mut out1 = None;
        for (w, &v) in values.iter().enumerate() {
            if let SwitchAction::Multicast(r) =
                sw1.on_packet(upd(w as u16, PoolVersion::V0, 0, 0, vec![v])).unwrap()
            {
                out1 = Some(r.payload);
            }
        }
        // Pseudo-random permutation.
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = perm_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut sw2 = BasicSwitch::new(&p).unwrap();
        let mut out2 = None;
        for &w in &order {
            if let SwitchAction::Multicast(r) =
                sw2.on_packet(upd(w as u16, PoolVersion::V0, 0, 0, vec![values[w]])).unwrap()
            {
                out2 = Some(r.payload);
            }
        }
        prop_assert_eq!(out1, out2);
    }

    /// Algorithm 3: duplicate storms never change the aggregate and
    /// always produce a sensible response (drop before completion,
    /// unicast result after).
    #[test]
    fn reliable_switch_idempotent_under_duplicates(
        n in 2usize..6,
        dup_pattern in prop::collection::vec((0u16..6, 0usize..10), 0..40),
    ) {
        let p = proto(n, 1, 1);
        let mut sw = ReliableSwitch::new(&p).unwrap();
        let mut result = None;
        let mut sent = vec![0usize; n];
        // First transmissions interleaved with arbitrary duplicates.
        for (w, s) in sent.iter_mut().enumerate().take(n) {
            sw.on_packet(upd(w as u16, PoolVersion::V0, 0, 0, vec![w as i32 + 1])).ok();
            *s += 1;
            for &(dw, _) in dup_pattern.iter().filter(|&&(dw, _)| (dw as usize) <= w) {
                let dw = dw as usize % (w + 1);
                match sw.on_packet(upd(dw as u16, PoolVersion::V0, 0, 0, vec![dw as i32 + 1])).unwrap() {
                    SwitchAction::Multicast(_) => prop_assert!(false, "dup completed a slot"),
                    SwitchAction::Unicast(_, r) => {
                        // Only legal once aggregation completed.
                        prop_assert!(result.is_some() || w == n - 1);
                        if let Payload::I32(v) = &r.payload {
                            prop_assert_eq!(v[0], (1..=n as i32).sum::<i32>());
                        }
                    }
                    SwitchAction::Drop => {}
                }
            }
        }
        // The last first-transmission must have completed the slot —
        // find it by replaying a known-missing worker if needed.
        let expected: i32 = (1..=n as i32).sum();
        match sw.on_packet(upd(0, PoolVersion::V0, 0, 0, vec![1])).unwrap() {
            SwitchAction::Unicast(_, r) => {
                prop_assert_eq!(r.payload, Payload::I32(vec![expected]));
                result = Some(());
            }
            other => prop_assert!(false, "expected cached result, got {:?}", other),
        }
        prop_assert!(result.is_some());
    }

    /// The worker engine visits every chunk exactly once, regardless
    /// of pool size / chunk count / shard geometry.
    #[test]
    fn engine_covers_chunks_exactly_once(
        n_slots in 1usize..20,
        n_chunks in 0u64..200,
        chunk_base in 0u64..50,
        slot_base in 0u32..10,
    ) {
        let mut e = SlotEngine::new(EngineConfig {
            wid: 0,
            k: 4,
            slot_base,
            n_slots,
            chunk_base,
            n_chunks,
            rto: None,
            rto_policy: switchml_core::config::RtoPolicy::Fixed,
        }).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut inflight = e.start(0);
        for d in &inflight {
            prop_assert!(seen.insert(d.off), "duplicate initial offset");
        }
        while let Some(d) = inflight.pop() {
            match e.on_result(d.slot, d.ver, d.off, 0).unwrap() {
                ResultOutcome::Accepted { next: Some(nd), .. } => {
                    prop_assert!(seen.insert(nd.off), "offset {} revisited", nd.off);
                    inflight.push(nd);
                }
                ResultOutcome::Accepted { next: None, .. } => {}
                ResultOutcome::Stale => prop_assert!(false, "stale in lossless run"),
            }
        }
        prop_assert!(e.is_done());
        prop_assert_eq!(seen.len() as u64, n_chunks);
        // All offsets fall in the engine's chunk range and are aligned.
        for off in seen {
            prop_assert_eq!(off % 4, 0);
            let chunk = off / 4;
            prop_assert!(chunk >= chunk_base && chunk < chunk_base + n_chunks);
        }
    }

    /// Exactly-once, forever: once a slot has been reused, duplicate
    /// result packets carrying the slot's *previous* (ver, off)
    /// descriptors must be ignored as stale — at any later point in
    /// the run, and after completion — without perturbing progress,
    /// the accept count, or the done state. This is the worker half of
    /// the §3.5 no-double-add argument: the switch's `seen` bitmap
    /// dedupes updates, the engine's (ver, off) match dedupes results.
    #[test]
    fn duplicate_results_after_slot_reuse_are_stale(
        n_slots in 1usize..6,
        n_chunks in 1u64..40,
        dup_seed in any::<u64>(),
    ) {
        let mut e = SlotEngine::new(EngineConfig {
            wid: 0,
            k: 4,
            slot_base: 0,
            n_slots,
            chunk_base: 0,
            n_chunks,
            rto: None,
            rto_policy: switchml_core::config::RtoPolicy::Fixed,
        }).unwrap();
        let mut inflight = e.start(0);
        let mut history: Vec<(u32, PoolVersion, u64)> = Vec::new();
        let mut state = dup_seed | 1;
        while let Some(d) = inflight.pop() {
            history.push((d.slot, d.ver, d.off));
            match e.on_result(d.slot, d.ver, d.off, 0).unwrap() {
                ResultOutcome::Accepted { next: Some(nd), .. } => inflight.push(nd),
                ResultOutcome::Accepted { next: None, .. } => {}
                ResultOutcome::Stale => prop_assert!(false, "fresh result marked stale"),
            }
            // Replay a pseudo-randomly chosen already-accepted result:
            // its slot has moved on (new chunk, flipped version), so
            // the duplicate must be stale and must not change state.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (slot, ver, off) = history[(state >> 33) as usize % history.len()];
            let before = e.stats();
            let done_before = e.is_done();
            prop_assert_eq!(
                e.on_result(slot, ver, off, 0).unwrap(),
                ResultOutcome::Stale,
                "replayed descriptor (slot {}, off {}) was accepted twice", slot, off
            );
            prop_assert_eq!(e.stats().results, before.results);
            prop_assert_eq!(e.stats().stale, before.stale + 1);
            prop_assert_eq!(e.is_done(), done_before);
        }
        prop_assert!(e.is_done());
        prop_assert_eq!(e.stats().results, n_chunks);
        // After completion every historical descriptor — the whole
        // run's worth of potential network duplicates — stays stale.
        for (slot, ver, off) in history {
            prop_assert_eq!(e.on_result(slot, ver, off, 0).unwrap(), ResultOutcome::Stale);
            prop_assert!(e.is_done());
        }
        prop_assert_eq!(e.stats().results, n_chunks);
    }

    /// f16 roundtrip precision: |x − f16(x)| ≤ 2^-11 · |x| for normal
    /// values (half-precision relative error bound).
    #[test]
    fn f16_relative_error_bound(x in -60000.0f32..60000.0) {
        prop_assume!(x.abs() >= 6.2e-5); // skip subnormals
        let back = f16_to_f32(f32_to_f16(x));
        let rel = ((back - x) / x).abs();
        prop_assert!(rel <= 1.0 / 2048.0 + 1e-7, "x={x} back={back} rel={rel}");
    }

    /// f16 conversion is monotone (order-preserving), which the
    /// switch-side compare-free pipeline implicitly relies on.
    #[test]
    fn f16_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let flo = f16_to_f32(f32_to_f16(lo));
        let fhi = f16_to_f32(f32_to_f16(hi));
        prop_assert!(flo <= fhi, "{lo}→{flo} vs {hi}→{fhi}");
    }

    /// Theorem 2's bound is safe for arbitrary (n, B) and tight within
    /// 2%: nudging f up by 2% overflows.
    #[test]
    fn theorem2_safe_and_tight(n in 1usize..256, b in 0.001f64..1e6) {
        use switchml_core::quant::{check_no_overflow, max_safe_factor};
        let f = max_safe_factor(n, b);
        prop_assert!(check_no_overflow(n, b, f).is_ok());
        prop_assert!(check_no_overflow(n, b, f * 1.02).is_err());
    }
}
