//! Property-based tests of the Appendix B tensor stream manager.

use proptest::prelude::*;
use switchml_core::config::NumericMode;
use switchml_core::packet::Payload;
use switchml_core::worker::stream::TensorStream;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Round-tripping every chunk through quantize → (identity
    /// aggregate) → dequantize reconstructs each tensor within 1/f,
    /// for arbitrary tensor shape mixes and chunk sizes.
    #[test]
    fn roundtrip_arbitrary_shapes(
        shapes in prop::collection::vec(0usize..40, 1..8),
        k in 1usize..12,
        fexp in 2i32..7,
    ) {
        let f = 10f64.powi(fexp);
        let tensors: Vec<Vec<f32>> = shapes
            .iter()
            .enumerate()
            .map(|(t, &len)| (0..len).map(|i| ((t * 31 + i) % 17) as f32 * 0.3 - 2.0).collect())
            .collect();
        let mut s = TensorStream::from_f32(&tensors, NumericMode::Fixed32, f, k).unwrap();
        let total = s.total_elems();
        prop_assert_eq!(total, shapes.iter().sum::<usize>());
        prop_assert_eq!(s.total_chunks(), (total.div_ceil(k)) as u64);
        for c in 0..s.total_chunks() {
            let off = c * k as u64;
            let p = s.payload_chunk(off).unwrap();
            prop_assert_eq!(p.len(), k);
            s.write_result(off, &p).unwrap();
        }
        prop_assert!(s.is_complete());
        let out = s.result_tensors_f32(1).unwrap();
        prop_assert_eq!(out.len(), tensors.len());
        for (t, tensor) in tensors.iter().enumerate() {
            prop_assert_eq!(out[t].len(), tensor.len());
            for (i, &x) in tensor.iter().enumerate() {
                prop_assert!(
                    (out[t][i] - x).abs() <= (1.0 / f) as f32 + 1e-6,
                    "tensor {} elem {}: {} vs {}", t, i, out[t][i], x
                );
            }
        }
    }

    /// Writing results in any order, with duplicates, still completes
    /// exactly once per chunk and steers values correctly.
    #[test]
    fn out_of_order_and_duplicate_writes(
        elems in 1usize..60,
        k in 1usize..8,
        order_seed in any::<u64>(),
        dup_every in 1u64..5,
    ) {
        let tensor: Vec<f32> = (0..elems).map(|i| i as f32 * 0.5).collect();
        let mut s = TensorStream::from_f32(std::slice::from_ref(&tensor), NumericMode::Fixed32, 100.0, k)
            .unwrap();
        let n_chunks = s.total_chunks();
        // Pseudo-random chunk order.
        let mut order: Vec<u64> = (0..n_chunks).collect();
        let mut state = order_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for (j, &c) in order.iter().enumerate() {
            let off = c * k as u64;
            let p = s.payload_chunk(off).unwrap();
            s.write_result(off, &p).unwrap();
            if (j as u64).is_multiple_of(dup_every) {
                s.write_result(off, &p).unwrap(); // duplicate
            }
        }
        prop_assert_eq!(s.done_chunks(), n_chunks);
        let out = s.result_tensors_f32(1).unwrap();
        for (i, &x) in tensor.iter().enumerate() {
            prop_assert!((out[0][i] - x).abs() <= 0.011);
        }
    }

    /// The f16 wire payload stays within half-precision error of the
    /// scaled values, chunk by chunk.
    #[test]
    fn f16_chunks_bounded_error(
        elems in 1usize..50,
        k in 1usize..8,
    ) {
        let f = 64.0;
        let tensor: Vec<f32> = (0..elems).map(|i| (i as f32 - 25.0) * 0.1).collect();
        let s = TensorStream::from_f32(std::slice::from_ref(&tensor), NumericMode::Float16, f, k).unwrap();
        for c in 0..s.total_chunks() {
            let off = c * k as u64;
            match s.payload_chunk(off).unwrap() {
                Payload::F16(bits) => {
                    for (i, &h) in bits.iter().enumerate() {
                        let idx = off as usize + i;
                        if idx < elems {
                            let want = tensor[idx] as f64 * f;
                            let got = switchml_core::quant::f16::f16_to_f32(h) as f64;
                            let tol = want.abs() / 1024.0 + 1e-3;
                            prop_assert!((got - want).abs() <= tol,
                                "elem {}: {} vs {}", idx, got, want);
                        }
                    }
                }
                other => prop_assert!(false, "wrong payload type {:?}", other),
            }
        }
    }

    /// Native i32 streams round-trip exactly (no quantization at all).
    #[test]
    fn i32_stream_exact(
        tensors in prop::collection::vec(
            prop::collection::vec(any::<i32>(), 0..30), 1..5),
        k in 1usize..8,
    ) {
        let mut s = TensorStream::from_i32(&tensors, k).unwrap();
        for c in 0..s.total_chunks() {
            let off = c * k as u64;
            let p = s.payload_chunk(off).unwrap();
            s.write_result(off, &p).unwrap();
        }
        prop_assert!(s.is_complete());
        prop_assert_eq!(s.result_tensors_i32().unwrap(), tensors);
    }
}
