//! Explicit SIMD kernels with one-time runtime dispatch.
//!
//! The paper implements quantization with SSE/AVX and measures
//! negligible overhead (§3.7, Figure 8); the Tofino aggregates 32-bit
//! integers at line rate. This module is the software analogue: hand-
//! written `std::arch` AVX2 kernels (NEON on aarch64) for the three
//! hot loops —
//!
//! * float ↔ fixed-point conversion (`quantize` / `dequantize`),
//! * the switch's slot-register accumulation (`saturating_add` /
//!   `wrapping_add`),
//! * big-endian wire-word load/accumulate/store (`be_*`), the
//!   `htonl`/`ntohl` byteswap of Appendix B —
//!
//! with the autovectorized scalar loops as the universal fallback.
//!
//! ## Dispatch
//!
//! The backend is selected **once** per process ([`active_backend`]):
//! `is_x86_feature_detected!("avx2")` on x86-64, unconditionally NEON
//! on aarch64, scalar everywhere else. Setting `SWITCHML_FORCE_SCALAR=1`
//! in the environment pins the scalar arm, which CI uses to keep both
//! arms green.
//!
//! ## Bit parity is a correctness requirement, not a nicety
//!
//! The differential oracles in this workspace (checker, chaos harness,
//! sharded-vs-sequential tests) assert **bit-identical** final tensors
//! across runners and transports. Those oracles only compose if every
//! backend of every kernel is bit-identical to the scalar reference on
//! every input — including NaN, ±∞, saturating magnitudes and ragged
//! tail lengths. The property tests at the bottom of this file hold
//! each backend to exactly that bar, mirroring the ρ-parity
//! methodology of `quant::fixed`.

use std::sync::OnceLock;

/// Unroll width of the scalar chunk kernels. Eight f64 lanes span two
/// AVX2 registers (or four NEON ones) — wide enough for LLVM to emit
/// packed conversions, small enough that the `k = 32` per-packet case
/// is exactly four iterations.
pub(crate) const LANES: usize = 8;

/// The instruction-set backend the kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Autovectorized portable loops — the universal fallback and the
    /// reference every other backend must match bit-for-bit.
    Scalar,
    /// Hand-written `std::arch::x86_64` AVX2 kernels.
    Avx2,
    /// Hand-written `std::arch::aarch64` NEON kernels.
    Neon,
}

impl Backend {
    /// Stable lowercase name, for benchmarks and reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

fn detect_backend() -> Backend {
    if std::env::var("SWITCHML_FORCE_SCALAR").is_ok_and(|v| v == "1") {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Backend::Avx2;
    }
    #[cfg(target_arch = "aarch64")]
    return Backend::Neon;
    #[allow(unreachable_code)]
    Backend::Scalar
}

/// The backend selected for this process. Detection (CPUID + the
/// `SWITCHML_FORCE_SCALAR` override) runs once; every later call is an
/// atomic load.
pub fn active_backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(detect_backend)
}

// ---------------------------------------------------------------------
// Scalar reference kernels (the universal fallback).
//
// These are the previously hand-unrolled autovectorizable loops from
// `quant::fixed` / `packet`; they define the semantics every SIMD
// backend must reproduce bit-for-bit.
// ---------------------------------------------------------------------

/// Branch-free ρ: round half away from zero, saturate to `i32`,
/// NaN → 0. Rust's float→int `as` cast saturates and maps NaN to 0,
/// so the operator lowers to `round` + a clamped conversion.
#[inline(always)]
fn rho_scalar(x: f64) -> i32 {
    x.round() as i32
}

pub(crate) fn quantize_scalar(src: &[f32], f: f64, dst: &mut [i32]) {
    let split = src.len() - src.len() % LANES;
    let (s_body, s_tail) = src.split_at(split);
    let (d_body, d_tail) = dst.split_at_mut(split);
    for (s, d) in s_body
        .chunks_exact(LANES)
        .zip(d_body.chunks_exact_mut(LANES))
    {
        for i in 0..LANES {
            d[i] = rho_scalar(s[i] as f64 * f);
        }
    }
    for (d, &s) in d_tail.iter_mut().zip(s_tail) {
        *d = rho_scalar(s as f64 * f);
    }
}

pub(crate) fn dequantize_scalar(src: &[i32], f: f64, dst: &mut [f32]) {
    let split = src.len() - src.len() % LANES;
    let (s_body, s_tail) = src.split_at(split);
    let (d_body, d_tail) = dst.split_at_mut(split);
    for (s, d) in s_body
        .chunks_exact(LANES)
        .zip(d_body.chunks_exact_mut(LANES))
    {
        for i in 0..LANES {
            d[i] = (s[i] as f64 / f) as f32;
        }
    }
    for (d, &s) in d_tail.iter_mut().zip(s_tail) {
        *d = (s as f64 / f) as f32;
    }
}

pub(crate) fn saturating_add_scalar(acc: &mut [i32], v: &[i32]) {
    for (a, &b) in acc.iter_mut().zip(v) {
        *a = a.saturating_add(b);
    }
}

pub(crate) fn wrapping_add_scalar(acc: &mut [i32], v: &[i32]) {
    for (a, &b) in acc.iter_mut().zip(v) {
        *a = a.wrapping_add(b);
    }
}

pub(crate) fn be_load_scalar(bytes: &[u8], dst: &mut [i32]) {
    for (d, c) in dst.iter_mut().zip(bytes.chunks_exact(4)) {
        *d = i32::from_be_bytes([c[0], c[1], c[2], c[3]]);
    }
}

pub(crate) fn be_saturating_add_scalar(bytes: &[u8], acc: &mut [i32]) {
    for (a, c) in acc.iter_mut().zip(bytes.chunks_exact(4)) {
        *a = a.saturating_add(i32::from_be_bytes([c[0], c[1], c[2], c[3]]));
    }
}

pub(crate) fn be_wrapping_add_scalar(bytes: &[u8], acc: &mut [i32]) {
    for (a, c) in acc.iter_mut().zip(bytes.chunks_exact(4)) {
        *a = a.wrapping_add(i32::from_be_bytes([c[0], c[1], c[2], c[3]]));
    }
}

pub(crate) fn be_store_extend_scalar(values: &[i32], out: &mut Vec<u8>) {
    for &v in values {
        out.extend_from_slice(&v.to_be_bytes());
    }
}

// ---------------------------------------------------------------------
// AVX2 kernels.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// ρ over four f64 lanes: round half away from zero, with NaN
    /// lanes pre-squashed to +0.0 (ρ(NaN) = 0 = ρ(0.0), so squashing
    /// first is exact and saves a post-conversion mask).
    ///
    /// `f64::round` is a libm call LLVM cannot vectorize — the whole
    /// reason the autovectorized quantize loop crawls. Half-away
    /// rounding is emulated exactly: `t = trunc(v)`; `v - t` is the
    /// fractional part, computed exactly (both are multiples of
    /// `ulp(v)`, so IEEE subtraction is error-free); if `|v - t| ≥
    /// 0.5`, step `t` one unit away from zero.
    #[inline(always)]
    unsafe fn round_away_pd(v: __m256d) -> __m256d {
        let sign_mask = _mm256_set1_pd(-0.0);
        // NaN → +0.0 (ordered-compare mask is 0 exactly on NaN lanes).
        let v = _mm256_and_pd(v, _mm256_cmp_pd(v, v, _CMP_ORD_Q));
        let t = _mm256_round_pd(v, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
        let frac = _mm256_sub_pd(v, t);
        let absfrac = _mm256_andnot_pd(sign_mask, frac);
        let ge_half = _mm256_cmp_pd(absfrac, _mm256_set1_pd(0.5), _CMP_GE_OQ);
        // copysign(1.0, v), applied only where |frac| ≥ 0.5. ±∞ lanes
        // produce frac = NaN, the compare is false, and ±∞ passes
        // through to the clamp — same as `f64::round`.
        let one_signed = _mm256_or_pd(_mm256_set1_pd(1.0), _mm256_and_pd(v, sign_mask));
        _mm256_add_pd(t, _mm256_and_pd(ge_half, one_signed))
    }

    /// Saturating f64 → i32 over four lanes. Inputs are integral (or
    /// ±∞); both bounds are exactly representable as f64, so the clamp
    /// + truncating conversion is exact.
    #[inline(always)]
    unsafe fn cvt_sat_epi32(r: __m256d) -> __m128i {
        let lo = _mm256_set1_pd(i32::MIN as f64);
        let hi = _mm256_set1_pd(i32::MAX as f64);
        _mm256_cvttpd_epi32(_mm256_min_pd(_mm256_max_pd(r, lo), hi))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn quantize(src: &[f32], f: f64, dst: &mut [i32]) {
        let n = src.len();
        let fv = _mm256_set1_pd(f);
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(src.as_ptr().add(i));
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1));
            let qlo = cvt_sat_epi32(round_away_pd(_mm256_mul_pd(lo, fv)));
            let qhi = cvt_sat_epi32(round_away_pd(_mm256_mul_pd(hi, fv)));
            let q = _mm256_set_m128i(qhi, qlo);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, q);
            i += 8;
        }
        super::quantize_scalar(&src[i..], f, &mut dst[i..]);
    }

    /// Dequantize on AVX2 hosts.
    ///
    /// Deliberately the unrolled scalar kernel: `(q as f64 / f) as
    /// f32` is one exact conversion, one IEEE division and one IEEE
    /// demotion per lane, which LLVM already vectorizes — and the f64
    /// divider has the *same per-element throughput* at xmm and ymm
    /// width on Intel, so a hand-rolled `_mm256_div_pd` loop only adds
    /// shuffle glue around the real bottleneck (measured ~25% slower
    /// than the autovectorized loop on Skylake-SP). The hand-written
    /// AVX2 path is reserved for quantize, where `f64::round` blocks
    /// autovectorization entirely.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dequantize(src: &[i32], f: f64, dst: &mut [f32]) {
        super::dequantize_scalar(src, f, dst);
    }

    /// Saturating i32 add over eight lanes. AVX2 has no 32-bit
    /// saturating add, so overflow is detected from the sign algebra
    /// (`(~(a ^ b)) & (a ^ sum)` has the sign bit set iff the operands
    /// agree in sign and the wrapped sum does not) and overflowing
    /// lanes are blended with the sign-appropriate saturation value.
    #[inline(always)]
    unsafe fn sat_add_epi32(a: __m256i, b: __m256i) -> __m256i {
        let sum = _mm256_add_epi32(a, b);
        let ovf = _mm256_andnot_si256(_mm256_xor_si256(a, b), _mm256_xor_si256(a, sum));
        let ovf_mask = _mm256_srai_epi32(ovf, 31);
        // a ≥ 0 → 0x7FFF_FFFF (MAX); a < 0 → 0x8000_0000 (MIN).
        let sat = _mm256_xor_si256(_mm256_srai_epi32(a, 31), _mm256_set1_epi32(i32::MAX));
        _mm256_blendv_epi8(sum, sat, ovf_mask)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn saturating_add(acc: &mut [i32], v: &[i32]) {
        let n = acc.len();
        let mut i = 0;
        while i + 8 <= n {
            let a = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            let b = _mm256_loadu_si256(v.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(acc.as_mut_ptr().add(i) as *mut __m256i, sat_add_epi32(a, b));
            i += 8;
        }
        super::saturating_add_scalar(&mut acc[i..], &v[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn wrapping_add(acc: &mut [i32], v: &[i32]) {
        let n = acc.len();
        let mut i = 0;
        while i + 8 <= n {
            let a = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            let b = _mm256_loadu_si256(v.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                acc.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_add_epi32(a, b),
            );
            i += 8;
        }
        super::wrapping_add_scalar(&mut acc[i..], &v[i..]);
    }

    /// Per-lane byteswap of eight big-endian wire words (the vector
    /// `ntohl`): a single `pshufb` with a 3-2-1-0 pattern in each
    /// 32-bit lane.
    #[inline(always)]
    unsafe fn bswap_epi32(x: __m256i) -> __m256i {
        #[rustfmt::skip]
        let mask = _mm256_setr_epi8(
            3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
            3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
        );
        _mm256_shuffle_epi8(x, mask)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn be_load(bytes: &[u8], dst: &mut [i32]) {
        let n = dst.len().min(bytes.len() / 4);
        let mut i = 0;
        while i + 8 <= n {
            let raw = _mm256_loadu_si256(bytes.as_ptr().add(4 * i) as *const __m256i);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, bswap_epi32(raw));
            i += 8;
        }
        super::be_load_scalar(&bytes[4 * i..], &mut dst[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn be_saturating_add(bytes: &[u8], acc: &mut [i32]) {
        let n = acc.len().min(bytes.len() / 4);
        let mut i = 0;
        while i + 8 <= n {
            let raw = _mm256_loadu_si256(bytes.as_ptr().add(4 * i) as *const __m256i);
            let a = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                acc.as_mut_ptr().add(i) as *mut __m256i,
                sat_add_epi32(a, bswap_epi32(raw)),
            );
            i += 8;
        }
        super::be_saturating_add_scalar(&bytes[4 * i..], &mut acc[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn be_wrapping_add(bytes: &[u8], acc: &mut [i32]) {
        let n = acc.len().min(bytes.len() / 4);
        let mut i = 0;
        while i + 8 <= n {
            let raw = _mm256_loadu_si256(bytes.as_ptr().add(4 * i) as *const __m256i);
            let a = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                acc.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_add_epi32(a, bswap_epi32(raw)),
            );
            i += 8;
        }
        super::be_wrapping_add_scalar(&bytes[4 * i..], &mut acc[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn be_store_extend(values: &[i32], out: &mut Vec<u8>) {
        let n = values.len();
        out.reserve(4 * n);
        let mut i = 0;
        let mut tmp = [0u8; 32];
        while i + 8 <= n {
            let x = _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, bswap_epi32(x));
            out.extend_from_slice(&tmp);
            i += 8;
        }
        super::be_store_extend_scalar(&values[i..], out);
    }
}

// ---------------------------------------------------------------------
// NEON kernels (aarch64). Cheap wins only: the ISA has native
// round-half-away (FRINTA), saturating converts/adds and a lane
// byteswap, so each kernel is a direct transliteration.
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    /// ρ over two f64 lanes: FRINTA rounds half away from zero
    /// natively; FCVTZS saturates and maps NaN → 0 natively.
    #[inline(always)]
    unsafe fn rho_f64x2(v: float64x2_t) -> int64x2_t {
        vcvtq_s64_f64(vrndaq_f64(v))
    }

    /// Saturating i64 → i32 narrow of two ρ results.
    #[inline(always)]
    unsafe fn narrow_sat(lo: int64x2_t, hi: int64x2_t) -> int32x4_t {
        vcombine_s32(vqmovn_s64(lo), vqmovn_s64(hi))
    }

    pub unsafe fn quantize(src: &[f32], f: f64, dst: &mut [i32]) {
        let n = src.len();
        let fv = vdupq_n_f64(f);
        let mut i = 0;
        while i + 4 <= n {
            let x = vld1q_f32(src.as_ptr().add(i));
            let lo = vmulq_f64(vcvt_f64_f32(vget_low_f32(x)), fv);
            let hi = vmulq_f64(vcvt_f64_f32(vget_high_f32(x)), fv);
            let q = narrow_sat(rho_f64x2(lo), rho_f64x2(hi));
            vst1q_s32(dst.as_mut_ptr().add(i), q);
            i += 4;
        }
        super::quantize_scalar(&src[i..], f, &mut dst[i..]);
    }

    pub unsafe fn dequantize(src: &[i32], f: f64, dst: &mut [f32]) {
        let n = src.len();
        let fv = vdupq_n_f64(f);
        let mut i = 0;
        while i + 4 <= n {
            let q = vld1q_s32(src.as_ptr().add(i));
            let lo = vdivq_f64(vcvtq_f64_s64(vmovl_s32(vget_low_s32(q))), fv);
            let hi = vdivq_f64(vcvtq_f64_s64(vmovl_s32(vget_high_s32(q))), fv);
            let out = vcombine_f32(vcvt_f32_f64(lo), vcvt_f32_f64(hi));
            vst1q_f32(dst.as_mut_ptr().add(i), out);
            i += 4;
        }
        super::dequantize_scalar(&src[i..], f, &mut dst[i..]);
    }

    pub unsafe fn saturating_add(acc: &mut [i32], v: &[i32]) {
        let n = acc.len();
        let mut i = 0;
        while i + 4 <= n {
            let a = vld1q_s32(acc.as_ptr().add(i));
            let b = vld1q_s32(v.as_ptr().add(i));
            vst1q_s32(acc.as_mut_ptr().add(i), vqaddq_s32(a, b));
            i += 4;
        }
        super::saturating_add_scalar(&mut acc[i..], &v[i..]);
    }

    pub unsafe fn wrapping_add(acc: &mut [i32], v: &[i32]) {
        let n = acc.len();
        let mut i = 0;
        while i + 4 <= n {
            let a = vld1q_s32(acc.as_ptr().add(i));
            let b = vld1q_s32(v.as_ptr().add(i));
            vst1q_s32(acc.as_mut_ptr().add(i), vaddq_s32(a, b));
            i += 4;
        }
        super::wrapping_add_scalar(&mut acc[i..], &v[i..]);
    }

    #[inline(always)]
    unsafe fn be_load_s32x4(bytes: *const u8) -> int32x4_t {
        vreinterpretq_s32_u8(vrev32q_u8(vld1q_u8(bytes)))
    }

    pub unsafe fn be_load(bytes: &[u8], dst: &mut [i32]) {
        let n = dst.len().min(bytes.len() / 4);
        let mut i = 0;
        while i + 4 <= n {
            vst1q_s32(
                dst.as_mut_ptr().add(i),
                be_load_s32x4(bytes.as_ptr().add(4 * i)),
            );
            i += 4;
        }
        super::be_load_scalar(&bytes[4 * i..], &mut dst[i..]);
    }

    pub unsafe fn be_saturating_add(bytes: &[u8], acc: &mut [i32]) {
        let n = acc.len().min(bytes.len() / 4);
        let mut i = 0;
        while i + 4 <= n {
            let a = vld1q_s32(acc.as_ptr().add(i));
            let b = be_load_s32x4(bytes.as_ptr().add(4 * i));
            vst1q_s32(acc.as_mut_ptr().add(i), vqaddq_s32(a, b));
            i += 4;
        }
        super::be_saturating_add_scalar(&bytes[4 * i..], &mut acc[i..]);
    }

    pub unsafe fn be_wrapping_add(bytes: &[u8], acc: &mut [i32]) {
        let n = acc.len().min(bytes.len() / 4);
        let mut i = 0;
        while i + 4 <= n {
            let a = vld1q_s32(acc.as_ptr().add(i));
            let b = be_load_s32x4(bytes.as_ptr().add(4 * i));
            vst1q_s32(acc.as_mut_ptr().add(i), vaddq_s32(a, b));
            i += 4;
        }
        super::be_wrapping_add_scalar(&bytes[4 * i..], &mut acc[i..]);
    }

    pub unsafe fn be_store_extend(values: &[i32], out: &mut Vec<u8>) {
        let n = values.len();
        out.reserve(4 * n);
        let mut i = 0;
        let mut tmp = [0u8; 16];
        while i + 4 <= n {
            let x = vld1q_s32(values.as_ptr().add(i));
            vst1q_u8(tmp.as_mut_ptr(), vrev32q_u8(vreinterpretq_u8_s32(x)));
            out.extend_from_slice(&tmp);
            i += 4;
        }
        super::be_store_extend_scalar(&values[i..], out);
    }
}

// ---------------------------------------------------------------------
// Dispatched entry points.
// ---------------------------------------------------------------------

/// `dst[i] = ρ(f · src[i])`. Slices must have equal length.
pub fn quantize(src: &[f32], f: f64, dst: &mut [i32]) {
    assert_eq!(src.len(), dst.len());
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backend is only selected after
        // `is_x86_feature_detected!("avx2")` succeeds.
        Backend::Avx2 => unsafe { avx2::quantize(src, f, dst) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::quantize(src, f, dst) },
        _ => quantize_scalar(src, f, dst),
    }
}

/// `dst[i] = (src[i] as f64 / f) as f32`. Slices must have equal length.
pub fn dequantize(src: &[i32], f: f64, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: backend selection implies AVX2 is present.
        Backend::Avx2 => unsafe { avx2::dequantize(src, f, dst) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::dequantize(src, f, dst) },
        _ => dequantize_scalar(src, f, dst),
    }
}

/// `acc[i] = acc[i] ⊕ v[i]` with saturating i32 addition.
pub fn saturating_add(acc: &mut [i32], v: &[i32]) {
    debug_assert_eq!(acc.len(), v.len());
    let n = acc.len().min(v.len());
    let (acc, v) = (&mut acc[..n], &v[..n]);
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: backend selection implies AVX2 is present.
        Backend::Avx2 => unsafe { avx2::saturating_add(acc, v) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::saturating_add(acc, v) },
        _ => saturating_add_scalar(acc, v),
    }
}

/// `acc[i] = acc[i] + v[i]` mod 2³².
pub fn wrapping_add(acc: &mut [i32], v: &[i32]) {
    debug_assert_eq!(acc.len(), v.len());
    let n = acc.len().min(v.len());
    let (acc, v) = (&mut acc[..n], &v[..n]);
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: backend selection implies AVX2 is present.
        Backend::Avx2 => unsafe { avx2::wrapping_add(acc, v) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::wrapping_add(acc, v) },
        _ => wrapping_add_scalar(acc, v),
    }
}

/// Load big-endian wire words: `dst[i] = ntohl(bytes[4i..4i+4])`,
/// over `min(dst.len(), bytes.len() / 4)` elements.
pub fn be_load(bytes: &[u8], dst: &mut [i32]) {
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: backend selection implies AVX2 is present.
        Backend::Avx2 => unsafe { avx2::be_load(bytes, dst) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::be_load(bytes, dst) },
        _ => be_load_scalar(bytes, dst),
    }
}

/// Fold big-endian wire words into `acc` with saturating addition —
/// the switch's slot-register accumulation straight off the wire.
pub fn be_saturating_add(bytes: &[u8], acc: &mut [i32]) {
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: backend selection implies AVX2 is present.
        Backend::Avx2 => unsafe { avx2::be_saturating_add(bytes, acc) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::be_saturating_add(bytes, acc) },
        _ => be_saturating_add_scalar(bytes, acc),
    }
}

/// Fold big-endian wire words into `acc` with wrapping addition.
pub fn be_wrapping_add(bytes: &[u8], acc: &mut [i32]) {
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: backend selection implies AVX2 is present.
        Backend::Avx2 => unsafe { avx2::be_wrapping_add(bytes, acc) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::be_wrapping_add(bytes, acc) },
        _ => be_wrapping_add_scalar(bytes, acc),
    }
}

/// Append `values` to `out` as big-endian wire words (the vector
/// `htonl` of the encode path).
pub fn be_store_extend(values: &[i32], out: &mut Vec<u8>) {
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: backend selection implies AVX2 is present.
        Backend::Avx2 => unsafe { avx2::be_store_extend(values, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::be_store_extend(values, out) },
        _ => be_store_extend_scalar(values, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Run `f` against every backend available on this host: the
    /// dispatched arm (whatever `active_backend()` picked, which CI
    /// also pins to scalar via `SWITCHML_FORCE_SCALAR=1`), the scalar
    /// reference, and — explicitly — the AVX2 kernels when the CPU has
    /// them, so a single test run covers both dispatch arms.
    fn backends() -> Vec<Backend> {
        let mut v = vec![active_backend(), Backend::Scalar];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            v.push(Backend::Avx2);
        }
        v.dedup();
        v
    }

    fn quantize_with(b: Backend, src: &[f32], f: f64, dst: &mut [i32]) {
        match b {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: only called when AVX2 was detected.
            Backend::Avx2 => unsafe { avx2::quantize(src, f, dst) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::quantize(src, f, dst) },
            _ => quantize_scalar(src, f, dst),
        }
    }

    fn dequantize_with(b: Backend, src: &[i32], f: f64, dst: &mut [f32]) {
        match b {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: only called when AVX2 was detected.
            Backend::Avx2 => unsafe { avx2::dequantize(src, f, dst) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::dequantize(src, f, dst) },
            _ => dequantize_scalar(src, f, dst),
        }
    }

    fn sat_add_with(b: Backend, acc: &mut [i32], v: &[i32]) {
        match b {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: only called when AVX2 was detected.
            Backend::Avx2 => unsafe { avx2::saturating_add(acc, v) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::saturating_add(acc, v) },
            _ => saturating_add_scalar(acc, v),
        }
    }

    fn wrap_add_with(b: Backend, acc: &mut [i32], v: &[i32]) {
        match b {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: only called when AVX2 was detected.
            Backend::Avx2 => unsafe { avx2::wrapping_add(acc, v) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::wrapping_add(acc, v) },
            _ => wrapping_add_scalar(acc, v),
        }
    }

    fn be_load_with(b: Backend, bytes: &[u8], dst: &mut [i32]) {
        match b {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: only called when AVX2 was detected.
            Backend::Avx2 => unsafe { avx2::be_load(bytes, dst) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::be_load(bytes, dst) },
            _ => be_load_scalar(bytes, dst),
        }
    }

    fn be_sat_with(b: Backend, bytes: &[u8], acc: &mut [i32]) {
        match b {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: only called when AVX2 was detected.
            Backend::Avx2 => unsafe { avx2::be_saturating_add(bytes, acc) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::be_saturating_add(bytes, acc) },
            _ => be_saturating_add_scalar(bytes, acc),
        }
    }

    fn be_wrap_with(b: Backend, bytes: &[u8], acc: &mut [i32]) {
        match b {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: only called when AVX2 was detected.
            Backend::Avx2 => unsafe { avx2::be_wrapping_add(bytes, acc) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::be_wrapping_add(bytes, acc) },
            _ => be_wrapping_add_scalar(bytes, acc),
        }
    }

    fn be_store_with(b: Backend, values: &[i32], out: &mut Vec<u8>) {
        match b {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: only called when AVX2 was detected.
            Backend::Avx2 => unsafe { avx2::be_store_extend(values, out) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::be_store_extend(values, out) },
            _ => be_store_extend_scalar(values, out),
        }
    }

    /// Scalar reference ρ ∘ scale, element-wise.
    fn quantize_ref(src: &[f32], f: f64) -> Vec<i32> {
        src.iter().map(|&x| (x as f64 * f).round() as i32).collect()
    }

    #[test]
    fn backend_detection_is_stable_and_named() {
        let b = active_backend();
        assert_eq!(b, active_backend());
        assert!(["scalar", "avx2", "neon"].contains(&b.name()));
    }

    /// f32s drawn from the raw bit space: every pattern including
    /// NaNs, infinities, subnormals and both zeros.
    fn any_bits_f32() -> impl Strategy<Value = f32> {
        any::<u32>().prop_map(f32::from_bits)
    }

    /// Scale factors covering the paper's range and pathological
    /// extremes that drive ρ into saturation.
    fn arb_scale() -> impl Strategy<Value = f64> {
        (-60i32..60).prop_map(|e| 2f64.powi(e))
    }

    /// i32s biased toward the saturation boundaries, where the
    /// overflow-detection algebra has its edge cases.
    fn edge_i32() -> impl Strategy<Value = i32> {
        (any::<i32>(), 0u8..8).prop_map(|(x, sel)| match sel {
            0 => i32::MAX,
            1 => i32::MIN,
            2 => x % 4,
            3 => i32::MAX - (x & 3),
            4 => i32::MIN + (x & 3),
            _ => x,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Every backend's quantize is bit-identical to the scalar
        /// reference on every f32 bit pattern and every remainder
        /// length 0..(2 vector widths + lane_width − 1).
        #[test]
        fn quantize_parity(
            src in prop::collection::vec(any_bits_f32(), 0..67),
            f in arb_scale(),
        ) {
            let want = quantize_ref(&src, f);
            for b in backends() {
                let mut got = vec![0i32; src.len()];
                quantize_with(b, &src, f, &mut got);
                prop_assert_eq!(&got, &want, "backend {:?}", b);
            }
        }

        /// Every backend's dequantize is bit-identical (compared via
        /// `to_bits`) to the scalar reference.
        #[test]
        fn dequantize_parity(
            src in prop::collection::vec(any::<i32>(), 0..67),
            f in arb_scale(),
        ) {
            let want: Vec<u32> = src
                .iter()
                .map(|&q| ((q as f64 / f) as f32).to_bits())
                .collect();
            for b in backends() {
                let mut got = vec![0f32; src.len()];
                dequantize_with(b, &src, f, &mut got);
                let bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(&bits, &want, "backend {:?}", b);
            }
        }

        /// Saturating add: every backend equals `i32::saturating_add`
        /// element-wise, including at both saturation rails.
        #[test]
        fn saturating_add_parity(
            pairs in prop::collection::vec((edge_i32(), edge_i32()), 0..67),
        ) {
            let a0: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let v: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let want: Vec<i32> = pairs.iter().map(|p| p.0.saturating_add(p.1)).collect();
            for b in backends() {
                let mut acc = a0.clone();
                sat_add_with(b, &mut acc, &v);
                prop_assert_eq!(&acc, &want, "backend {:?}", b);
            }
        }

        /// Wrapping add parity.
        #[test]
        fn wrapping_add_parity(
            pairs in prop::collection::vec((edge_i32(), edge_i32()), 0..67),
        ) {
            let a0: Vec<i32> = pairs.iter().map(|p| p.0).collect();
            let v: Vec<i32> = pairs.iter().map(|p| p.1).collect();
            let want: Vec<i32> = pairs.iter().map(|p| p.0.wrapping_add(p.1)).collect();
            for b in backends() {
                let mut acc = a0.clone();
                wrap_add_with(b, &mut acc, &v);
                prop_assert_eq!(&acc, &want, "backend {:?}", b);
            }
        }

        /// Big-endian wire load / accumulate / store: every backend
        /// matches `i32::from_be_bytes` / `to_be_bytes` semantics.
        #[test]
        fn be_wire_parity(
            words in prop::collection::vec(edge_i32(), 0..67),
            acc0 in prop::collection::vec(edge_i32(), 0..67),
        ) {
            let n = words.len().min(acc0.len());
            let mut bytes = Vec::new();
            be_store_extend_scalar(&words, &mut bytes);

            for b in backends() {
                // Store: backend bytes == scalar bytes.
                let mut out = Vec::new();
                be_store_with(b, &words, &mut out);
                prop_assert_eq!(&out, &bytes, "store backend {:?}", b);

                // Load roundtrips the words.
                let mut loaded = vec![0i32; words.len()];
                be_load_with(b, &bytes, &mut loaded);
                prop_assert_eq!(&loaded, &words, "load backend {:?}", b);

                // Accumulate (both ALU modes) over the common prefix.
                let mut sat = acc0.clone();
                be_sat_with(b, &bytes, &mut sat[..n.min(acc0.len())]);
                let mut wrap = acc0.clone();
                be_wrap_with(b, &bytes, &mut wrap[..n.min(acc0.len())]);
                for i in 0..n {
                    prop_assert_eq!(sat[i], acc0[i].saturating_add(words[i]), "sat {:?}", b);
                    prop_assert_eq!(wrap[i], acc0[i].wrapping_add(words[i]), "wrap {:?}", b);
                }
            }
        }
    }

    /// Deterministic boundary sweep: exactly the inputs where the AVX2
    /// round-half-away emulation could diverge from `f64::round`.
    #[test]
    fn quantize_rounding_boundaries() {
        // With f = 1.0 the product is the input itself, so these drive
        // ρ directly through the vector path (8 at a time).
        let cases: Vec<f32> = vec![
            0.0,
            -0.0,
            0.5,
            -0.5,
            0.49999997,
            -0.49999997,
            2.5,
            -2.5,
            8388608.5_f64 as f32, // 2^23 territory: f32 granularity
            f32::MAX,
            f32::MIN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
        ];
        // Pad to cover full vectors + tail.
        let mut src = cases.clone();
        src.extend_from_slice(&cases);
        src.push(1.5);
        for f in [1.0, 0.5, 2.0_f64.powi(40), 2.0_f64.powi(-40), 1e6] {
            let want = quantize_ref(&src, f);
            for b in backends() {
                let mut got = vec![0i32; src.len()];
                quantize_with(b, &src, f, &mut got);
                assert_eq!(got, want, "backend {b:?} f {f}");
            }
        }
    }
}
