//! Protocol configuration and pool-size tuning (§3.6).

use crate::bitmap::MAX_WORKERS;
use crate::error::{Error, Result};
use crate::packet::{wire_bytes, DEFAULT_K};

/// Time in nanoseconds. The core crate is dependency-free and sans-IO;
/// drivers (simulator, threaded transports) convert to their own
/// clock types.
pub type TimeNs = u64;

/// Wire representation of gradient elements (§3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericMode {
    /// Workers convert f32 → scaled i32; switch adds integers.
    #[default]
    Fixed32,
    /// Workers send scaled binary16; switch converts to fixed point at
    /// ingress and back at egress. Halves wire volume.
    Float16,
    /// Payload already is native i32 (the paper's overhead-isolation
    /// experiment, Figure 8, uses this to bypass scaling/conversion).
    NativeInt32,
}

impl NumericMode {
    /// Bytes per element on the wire.
    pub fn elem_bytes(self) -> usize {
        match self {
            NumericMode::Float16 => 2,
            _ => 4,
        }
    }
}

/// Retransmission-timeout policy (§6 notes "one should take care to
/// adapt the retransmission timeout according to variations in
/// end-to-end RTT"; exponential backoff is the classic adaptation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RtoPolicy {
    /// Retransmit every `rto_ns`, forever (Algorithm 4 as written).
    #[default]
    Fixed,
    /// Double the slot's timeout after every expiry, capped at
    /// `max_ns`; reset to `rto_ns` when the slot makes progress.
    /// Tames retransmission storms when the network degrades far
    /// beyond the provisioned RTT.
    ExponentialBackoff {
        /// Upper bound on the per-slot timeout, nanoseconds.
        max_ns: TimeNs,
    },
    /// Jacobson/Karn adaptive estimation (the §6 recommendation made
    /// concrete): each accepted result whose slot was *not*
    /// retransmitted since its last send contributes an RTT sample to
    /// SRTT/RTTVAR (RFC 6298 gains: α = 1/8, β = 1/4); samples from
    /// retransmitted slots are discarded (Karn's rule, since the
    /// result cannot be attributed to a specific transmission). The
    /// working timeout is `SRTT + 4·RTTVAR`, clamped to
    /// `[min_ns, max_ns]`, seeded by `rto_ns` until the first sample.
    /// Expiries still back off exponentially (capped at `max_ns`) as
    /// the fallback when the estimate proves too optimistic; the
    /// backed-off value holds until a fresh, untainted sample arrives.
    Adaptive {
        /// Lower bound on the estimated timeout, nanoseconds. Drivers
        /// raise this to their receive-timeout granularity.
        min_ns: TimeNs,
        /// Upper bound on both the estimate and the backoff.
        max_ns: TimeNs,
    },
}

/// Static configuration shared by the switch and all workers of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct Protocol {
    /// Number of workers `n`.
    pub n_workers: usize,
    /// Elements per packet `k` (32 in the paper's deployment; 366 for
    /// the MTU-sized what-if of §5.5).
    pub k: usize,
    /// Aggregator pool size `s` (slots per pool version).
    pub pool_size: usize,
    /// Retransmission timeout for the reliable protocol (1 ms in the
    /// paper's loss experiments).
    pub rto_ns: TimeNs,
    /// How the timeout evolves on repeated expiries of one slot.
    pub rto_policy: RtoPolicy,
    /// Wire numeric representation.
    pub mode: NumericMode,
    /// Use wrapping (mod 2³²) addition in the switch instead of
    /// saturating addition. Saturating (the default) degrades
    /// gracefully when Appendix C's overflow bound is violated;
    /// wrapping is required for the Appendix D privacy scheme, where
    /// full-range additive masks must cancel exactly. Tofino ALUs
    /// support both.
    pub wrapping_add: bool,
    /// Scaling factor `f` applied by workers (ignored for NativeInt32).
    pub scaling_factor: f64,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            n_workers: 8,
            k: DEFAULT_K,
            pool_size: 128,
            rto_ns: 1_000_000, // 1 ms
            rto_policy: RtoPolicy::Fixed,
            mode: NumericMode::Fixed32,
            wrapping_add: false,
            scaling_factor: 1_000_000.0,
        }
    }
}

impl Protocol {
    /// Validate invariants the algorithms rely on.
    pub fn validate(&self) -> Result<()> {
        if self.n_workers == 0 {
            return Err(Error::InvalidConfig("n_workers must be > 0".into()));
        }
        if self.n_workers > MAX_WORKERS {
            return Err(Error::InvalidConfig(format!(
                "n_workers {} exceeds the {MAX_WORKERS}-worker bitmap",
                self.n_workers
            )));
        }
        if self.k == 0 {
            return Err(Error::InvalidConfig("k must be > 0".into()));
        }
        if self.pool_size == 0 {
            return Err(Error::InvalidConfig("pool_size must be > 0".into()));
        }
        if self.rto_ns == 0 {
            return Err(Error::InvalidConfig("rto must be > 0".into()));
        }
        match self.rto_policy {
            RtoPolicy::Fixed => {}
            RtoPolicy::ExponentialBackoff { max_ns } => {
                if max_ns < self.rto_ns {
                    return Err(Error::InvalidConfig(
                        "backoff cap must be >= the initial rto".into(),
                    ));
                }
            }
            RtoPolicy::Adaptive { min_ns, max_ns } => {
                if min_ns > max_ns {
                    return Err(Error::InvalidConfig(
                        "adaptive rto floor must be <= its cap".into(),
                    ));
                }
                if max_ns < self.rto_ns || self.rto_ns < min_ns {
                    return Err(Error::InvalidConfig(
                        "initial rto must lie within the adaptive [min, max] clamp".into(),
                    ));
                }
            }
        }
        if self.mode != NumericMode::NativeInt32 && self.scaling_factor <= 0.0 {
            return Err(Error::InvalidConfig("scaling factor must be > 0".into()));
        }
        Ok(())
    }

    /// Wire bytes per packet `b` under this configuration.
    pub fn packet_wire_bytes(&self) -> usize {
        crate::packet::HEADER_OVERHEAD_BYTES + self.mode.elem_bytes() * self.k
    }

    /// Bytes of per-pool element state one slot consumes on the switch.
    pub fn slot_bytes(&self) -> usize {
        4 * self.k
    }
}

/// §3.6: the optimal pool size is `⌈BDP / b⌉` — enough in-flight
/// packets to fill the bandwidth-delay product — rounded up to a power
/// of two because DPDK batching wants one.
///
/// `delay_ns` is the *end-to-end* delay including host processing
/// time, "easily measured in a given deployment".
pub fn tune_pool_size(bandwidth_bps: u64, delay_ns: TimeNs, k: usize) -> usize {
    let b = wire_bytes(k) as u128;
    let bdp_bytes = bandwidth_bps as u128 * delay_ns as u128 / 8 / 1_000_000_000;
    let slots = bdp_bytes.div_ceil(b).max(1) as usize;
    slots.next_power_of_two()
}

/// Register space (bytes) consumed on the switch for a pool of `s`
/// slots of `k` elements: two pool versions (active + shadow copy) of
/// 32-bit values, packed two-to-a-64-bit-register as in the paper's P4
/// program. Matches the paper's reported 32 KB at s = 128 and 128 KB
/// at s = 512.
pub fn pool_register_bytes(s: usize, k: usize) -> usize {
    2 * s * k * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pool_sizes() {
        // "we use 128 and 512 as the pool size for 10 and 100 Gbps".
        // Back out the end-to-end delays this implies: at 10 Gbps with
        // b = 180, 128 slots ≈ 128*180*8/10e9 ≈ 18.4 us of delay; use
        // 15 us -> ceil = 105 -> 128. At 100 Gbps use the same 7.4 us?
        // 512*180*8/100e9 = 7.4 us; use 6 us -> 417 -> 512.
        assert_eq!(tune_pool_size(10_000_000_000, 15_000, DEFAULT_K), 128);
        assert_eq!(tune_pool_size(100_000_000_000, 6_000, DEFAULT_K), 512);
    }

    #[test]
    fn paper_register_space() {
        // "This occupies 32 KB and 128 KB of register space in the
        // switch, respectively."
        assert_eq!(pool_register_bytes(128, DEFAULT_K), 32 * 1024);
        assert_eq!(pool_register_bytes(512, DEFAULT_K), 128 * 1024);
    }

    #[test]
    fn pool_size_is_power_of_two_and_positive() {
        for bw in [1_000_000_000u64, 10_000_000_000, 100_000_000_000] {
            for d in [100u64, 1_000, 10_000, 1_000_000] {
                let s = tune_pool_size(bw, d, DEFAULT_K);
                assert!(s.is_power_of_two());
                assert!(s >= 1);
            }
        }
    }

    #[test]
    fn validate_catches_bad_configs() {
        let ok = Protocol::default();
        ok.validate().unwrap();
        assert!(Protocol {
            n_workers: 0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(Protocol {
            n_workers: 300,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(Protocol { k: 0, ..ok.clone() }.validate().is_err());
        assert!(Protocol {
            pool_size: 0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(Protocol {
            rto_ns: 0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(Protocol {
            scaling_factor: 0.0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(Protocol {
            scaling_factor: 0.0,
            mode: NumericMode::NativeInt32,
            ..ok
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn packet_wire_bytes_by_mode() {
        let mut p = Protocol::default();
        assert_eq!(p.packet_wire_bytes(), 180);
        p.mode = NumericMode::Float16;
        assert_eq!(p.packet_wire_bytes(), 52 + 64);
    }
}
