//! The worker-side slot engine — Algorithms 2 and 4.
//!
//! Pure protocol state, independent of gradient data (which lives in
//! [`crate::worker::stream::TensorStream`]): which chunk each slot is
//! carrying, which pool version it is in, and when its retransmission
//! timer fires. One engine drives a contiguous range of slots over a
//! contiguous range of chunks, which is exactly the unit a DPDK core
//! owns in the paper's sharded worker (Appendix B) — so the multi-core
//! worker is simply several engines with disjoint ranges.
//!
//! With `rto = None` the engine is Algorithm 2 (no loss recovery);
//! with a timeout it is Algorithm 4: on expiry the previous update is
//! retransmitted *with the same slot and version*, and results that do
//! not match the slot's outstanding (version, offset) are ignored as
//! stale duplicates.

use crate::config::{RtoPolicy, TimeNs};
use crate::error::{Error, Result};
use crate::packet::{ElemOffset, PoolVersion, SlotIndex, WorkerId};

/// What to put on the wire: enough to materialize an update packet
/// from the tensor stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendDescriptor {
    pub slot: SlotIndex,
    pub ver: PoolVersion,
    pub off: ElemOffset,
    pub retransmission: bool,
}

/// Outcome of feeding a result packet to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultOutcome {
    /// Fresh result: the caller should install the aggregate at `off`
    /// and, if `next` is set, transmit the described update.
    Accepted {
        off: ElemOffset,
        next: Option<SendDescriptor>,
    },
    /// Duplicate or out-of-phase result; ignore it.
    Stale,
}

/// Engine configuration: the slot range and chunk range this engine
/// owns.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    pub wid: WorkerId,
    /// Elements per chunk.
    pub k: usize,
    /// First slot index owned.
    pub slot_base: SlotIndex,
    /// Number of slots owned.
    pub n_slots: usize,
    /// First (global) chunk index owned.
    pub chunk_base: u64,
    /// Number of chunks owned.
    pub n_chunks: u64,
    /// Retransmission timeout; `None` disables retransmission
    /// (Algorithm 2 semantics, for lossless fabrics).
    pub rto: Option<TimeNs>,
    /// How the timeout evolves on repeated expiries of a slot.
    pub rto_policy: RtoPolicy,
}

#[derive(Debug, Clone, Copy)]
struct SlotState {
    ver: PoolVersion,
    /// Global chunk index currently in flight on this slot.
    chunk: u64,
    deadline: Option<TimeNs>,
    /// Current timeout for this slot (grows under ExponentialBackoff
    /// and Adaptive's backoff fallback).
    cur_rto: TimeNs,
    /// When the outstanding chunk was (first) transmitted — the start
    /// of the RTT sample window.
    sent_at: TimeNs,
    /// Has the outstanding chunk been retransmitted? If so a result
    /// cannot be attributed to a specific transmission and must not
    /// become an RTT sample (Karn's rule).
    tainted: bool,
    active: bool,
}

/// Read-only protocol view of one owned slot, for invariant oracles
/// and state fingerprinting (the `switchml-check` model checker).
/// Deliberately excludes timer state: with [`RtoPolicy::Fixed`] the
/// retransmitted bytes are time-independent, so abstracting deadlines
/// away keeps the explored state space finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotSnapshot {
    /// Global slot index.
    pub slot: SlotIndex,
    /// Pool version the slot will use (or used last, once retired).
    pub ver: PoolVersion,
    /// Global chunk index in flight (meaningful while `active`).
    pub chunk: u64,
    /// Is a chunk outstanding on this slot?
    pub active: bool,
}

/// Cumulative engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// First transmissions.
    pub sent: u64,
    /// Retransmissions (timer expiries).
    pub retx: u64,
    /// Results accepted.
    pub results: u64,
    /// Results ignored as stale.
    pub stale: u64,
    /// RTT samples folded into SRTT/RTTVAR ([`RtoPolicy::Adaptive`]).
    pub rtt_samples: u64,
    /// Samples discarded by Karn's rule (result arrived on a slot that
    /// had been retransmitted since its last send).
    pub karn_discards: u64,
    /// Smoothed round-trip time estimate, nanoseconds (0 until the
    /// first sample).
    pub srtt_ns: TimeNs,
    /// RTT variance estimate, nanoseconds.
    pub rttvar_ns: TimeNs,
    /// Results dropped by the worker's epoch fence (counted at the
    /// [`crate::worker::Worker`] layer, before any engine sees them).
    pub stale_epoch: u64,
}

impl EngineStats {
    /// Fold another engine's counters into this one. Counts sum; the
    /// RTT estimate keeps the larger (slower) view, since the slowest
    /// engine's estimate is the one governing tail retransmissions.
    pub fn merge(&mut self, other: EngineStats) {
        self.sent += other.sent;
        self.retx += other.retx;
        self.results += other.results;
        self.stale += other.stale;
        self.rtt_samples += other.rtt_samples;
        self.karn_discards += other.karn_discards;
        self.srtt_ns = self.srtt_ns.max(other.srtt_ns);
        self.rttvar_ns = self.rttvar_ns.max(other.rttvar_ns);
        self.stale_epoch += other.stale_epoch;
    }
}

/// Worker protocol engine for one slot range.
#[derive(Debug, Clone)]
pub struct SlotEngine {
    cfg: EngineConfig,
    slots: Vec<SlotState>,
    /// Jacobson smoothed RTT, `None` until the first sample
    /// ([`RtoPolicy::Adaptive`] only).
    srtt: Option<TimeNs>,
    /// Jacobson RTT variance.
    rttvar: TimeNs,
    /// When set, the engine streams this explicit (ordered) list of
    /// global chunk indices instead of the contiguous range
    /// `chunk_base..chunk_base + n_chunks`. `SlotState::chunk` then
    /// holds a *position* in this list. Used to resume a partially
    /// aggregated stream: after a reconfiguration only the chunks not
    /// yet aggregated everywhere are re-streamed.
    chunk_list: Option<Vec<u64>>,
    completed: u64,
    stats: EngineStats,
}

impl SlotEngine {
    pub fn new(cfg: EngineConfig) -> Result<Self> {
        if cfg.k == 0 || cfg.n_slots == 0 {
            return Err(Error::InvalidConfig("k and n_slots must be > 0".into()));
        }
        if cfg.rto == Some(0) {
            return Err(Error::InvalidConfig("rto must be > 0".into()));
        }
        Ok(SlotEngine {
            cfg,
            slots: vec![
                SlotState {
                    ver: PoolVersion::V0,
                    chunk: 0,
                    deadline: None,
                    cur_rto: cfg.rto.unwrap_or(0),
                    sent_at: 0,
                    tainted: false,
                    active: false,
                };
                cfg.n_slots
            ],
            srtt: None,
            rttvar: 0,
            chunk_list: None,
            completed: 0,
            stats: EngineStats::default(),
        })
    }

    /// Engine over an explicit list of global chunk indices (resume
    /// mode). `cfg.chunk_base` must be 0 and `cfg.n_chunks` must equal
    /// `chunks.len()`; descriptors carry the listed chunks' offsets in
    /// list order.
    pub fn with_chunk_list(cfg: EngineConfig, chunks: Vec<u64>) -> Result<Self> {
        if cfg.chunk_base != 0 || cfg.n_chunks != chunks.len() as u64 {
            return Err(Error::InvalidConfig(
                "chunk-list engine needs chunk_base 0 and n_chunks == list length".into(),
            ));
        }
        let mut engine = SlotEngine::new(cfg)?;
        engine.chunk_list = Some(chunks);
        Ok(engine)
    }

    /// Map a logical chunk (position) to the global chunk index it
    /// carries on the wire.
    fn global_chunk(&self, logical: u64) -> u64 {
        match &self.chunk_list {
            Some(list) => list[logical as usize],
            None => logical,
        }
    }

    /// Like [`SlotEngine::new`], but seed each slot's pool version —
    /// used to continue a session against a switch whose pools retain
    /// state from earlier aggregations.
    pub fn with_versions(cfg: EngineConfig, versions: &[PoolVersion]) -> Result<Self> {
        if versions.len() != cfg.n_slots {
            return Err(Error::InvalidConfig(
                "one initial version per owned slot required".into(),
            ));
        }
        let mut engine = SlotEngine::new(cfg)?;
        for (slot, &v) in engine.slots.iter_mut().zip(versions) {
            slot.ver = v;
        }
        Ok(engine)
    }

    /// Reconstruct an engine **mid-stream** from per-slot protocol
    /// state — one `(ver, chunk, active)` triple per owned slot, in
    /// slot order, as captured by [`SlotEngine::slot_snapshots`] on a
    /// peer engine with the identical config. The returned engine is
    /// already past [`SlotEngine::start`]: every `active` slot has its
    /// recorded chunk outstanding with a freshly armed timer (tainted,
    /// so Karn's rule keeps the unattributable first round trip out of
    /// the RTT estimator), and `completed` is derived from each slot's
    /// position in its stride.
    ///
    /// This is what lets a replacement hierarchy leaf rebuild its
    /// upstream engine after a crash: the rack's worker engines are
    /// the durable record of how far each slot advanced, and because
    /// every engine over the same config maps chunks to slots
    /// identically, the rebuilt engine's (slot, ver, off) sequence
    /// rejoins the spine's expectations exactly.
    pub fn resume_at(
        cfg: EngineConfig,
        states: &[(PoolVersion, u64, bool)],
        now: TimeNs,
    ) -> Result<Self> {
        if states.len() != cfg.n_slots {
            return Err(Error::InvalidConfig(
                "one (ver, chunk, active) state per owned slot required".into(),
            ));
        }
        let mut engine = SlotEngine::new(cfg)?;
        let rto0 = engine.estimated_rto();
        let limit = cfg.chunk_base + cfg.n_chunks;
        let mut completed = 0u64;
        for (i, (&(ver, chunk, active), st)) in
            states.iter().zip(engine.slots.iter_mut()).enumerate()
        {
            let first = cfg.chunk_base + i as u64;
            // Chunks this slot owns: first, first + n_slots, … < limit.
            let owned = if first < limit {
                (limit - first).div_ceil(cfg.n_slots as u64)
            } else {
                0
            };
            if active {
                if chunk < first
                    || chunk >= limit
                    || !(chunk - first).is_multiple_of(cfg.n_slots as u64)
                {
                    return Err(Error::InvalidConfig(format!(
                        "slot {i}: chunk {chunk} is not on this slot's stride"
                    )));
                }
                completed += (chunk - first) / cfg.n_slots as u64;
            } else {
                completed += owned;
            }
            *st = SlotState {
                ver,
                chunk: if active { chunk } else { first },
                deadline: if active {
                    cfg.rto.map(|_| now + rto0)
                } else {
                    None
                },
                cur_rto: rto0,
                sent_at: now,
                tainted: true,
                active,
            };
        }
        engine.completed = completed;
        Ok(engine)
    }

    /// The pool version each owned slot must use next — valid once
    /// [`SlotEngine::is_done`], for seeding the next session.
    pub fn next_versions(&self) -> Result<Vec<PoolVersion>> {
        if !self.is_done() {
            return Err(Error::ProtocolViolation(
                "next_versions before the session completed".into(),
            ));
        }
        Ok(self.slots.iter().map(|s| s.ver).collect())
    }

    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The working retransmission timeout a freshly armed slot gets.
    /// Under [`RtoPolicy::Adaptive`] this is Jacobson's
    /// `SRTT + 4·RTTVAR` clamped to `[min_ns, max_ns]` (the configured
    /// initial RTO before the first sample); under the other policies
    /// it is the configured RTO.
    pub fn estimated_rto(&self) -> TimeNs {
        match (self.cfg.rto_policy, self.srtt) {
            (RtoPolicy::Adaptive { min_ns, max_ns }, Some(srtt)) => srtt
                .saturating_add(self.rttvar.saturating_mul(4))
                .clamp(min_ns, max_ns),
            _ => self.cfg.rto.unwrap_or(0),
        }
    }

    /// Fold one RTT sample into SRTT/RTTVAR with RFC 6298 gains
    /// (α = 1/8, β = 1/4; integer arithmetic).
    fn take_rtt_sample(&mut self, sample: TimeNs) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                self.rttvar = (3 * self.rttvar + srtt.abs_diff(sample)) / 4;
                self.srtt = Some((7 * srtt + sample) / 8);
            }
        }
        self.stats.rtt_samples += 1;
        self.stats.srtt_ns = self.srtt.unwrap_or(0);
        self.stats.rttvar_ns = self.rttvar;
    }

    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Does this engine own `slot`?
    pub fn owns_slot(&self, slot: SlotIndex) -> bool {
        slot >= self.cfg.slot_base && (slot - self.cfg.slot_base) < self.cfg.n_slots as SlotIndex
    }

    /// All owned chunks aggregated?
    pub fn is_done(&self) -> bool {
        self.completed == self.cfg.n_chunks
    }

    pub fn completed_chunks(&self) -> u64 {
        self.completed
    }

    /// Protocol snapshot of a single owned slot — the allocation-free
    /// counterpart of [`SlotEngine::slot_snapshots`] for per-packet
    /// filters (a hierarchy leaf checks every update from below
    /// against its upstream engine's in-flight state). `None` if this
    /// engine does not own `slot`.
    pub fn slot_state(&self, slot: SlotIndex) -> Option<SlotSnapshot> {
        if !self.owns_slot(slot) {
            return None;
        }
        let st = &self.slots[(slot - self.cfg.slot_base) as usize];
        let chunk = match &self.chunk_list {
            Some(list) => list.get(st.chunk as usize).copied().unwrap_or(st.chunk),
            None => st.chunk,
        };
        Some(SlotSnapshot {
            slot,
            ver: st.ver,
            chunk,
            active: st.active,
        })
    }

    /// Protocol snapshot of every owned slot, in slot order.
    pub fn slot_snapshots(&self) -> Vec<SlotSnapshot> {
        self.slots
            .iter()
            .enumerate()
            .map(|(local, st)| {
                // `st.chunk` is a list position in chunk-list mode; map
                // it to the global index it carries on the wire (falling
                // back to the raw position on never-started slots of an
                // empty list).
                let chunk = match &self.chunk_list {
                    Some(list) => list.get(st.chunk as usize).copied().unwrap_or(st.chunk),
                    None => st.chunk,
                };
                SlotSnapshot {
                    slot: self.cfg.slot_base + local as SlotIndex,
                    ver: st.ver,
                    chunk,
                    active: st.active,
                }
            })
            .collect()
    }

    /// Irreversibly turn off loss recovery (Algorithm 2 semantics).
    pub fn disable_retransmission(&mut self) {
        self.cfg.rto = None;
        for s in &mut self.slots {
            s.deadline = None;
            s.cur_rto = 0;
        }
    }

    fn descriptor(&self, local: usize, retransmission: bool) -> SendDescriptor {
        let st = &self.slots[local];
        SendDescriptor {
            slot: self.cfg.slot_base + local as SlotIndex,
            ver: st.ver,
            off: self.global_chunk(st.chunk) * self.cfg.k as u64,
            retransmission,
        }
    }

    /// Emit the initial window: one packet per slot, covering the
    /// first `min(n_slots, n_chunks)` chunks (Algorithm 2/4 lines 1–8).
    pub fn start(&mut self, now: TimeNs) -> Vec<SendDescriptor> {
        let initial = (self.cfg.n_slots as u64).min(self.cfg.n_chunks) as usize;
        let rto0 = self.estimated_rto();
        let mut out = Vec::with_capacity(initial);
        for i in 0..initial {
            self.slots[i] = SlotState {
                // Preserve the slot's pool-version parity (V0 on a
                // fresh engine; carried over on session continuation).
                ver: self.slots[i].ver,
                chunk: self.cfg.chunk_base + i as u64,
                deadline: self.cfg.rto.map(|_| now + rto0),
                cur_rto: rto0,
                sent_at: now,
                tainted: false,
                active: true,
            };
            self.stats.sent += 1;
            out.push(self.descriptor(i, false));
        }
        out
    }

    /// Feed a result packet's protocol fields. On acceptance the slot
    /// either advances to its next chunk (flip version, rearm timer)
    /// or retires.
    pub fn on_result(
        &mut self,
        slot: SlotIndex,
        ver: PoolVersion,
        off: ElemOffset,
        now: TimeNs,
    ) -> Result<ResultOutcome> {
        if !self.owns_slot(slot) {
            return Err(Error::OutOfRange(
                "result for a slot this engine does not own",
            ));
        }
        let local = (slot - self.cfg.slot_base) as usize;
        let st = self.slots[local];
        if !st.active || ver != st.ver || off != self.global_chunk(st.chunk) * self.cfg.k as u64 {
            self.stats.stale += 1;
            return Ok(ResultOutcome::Stale);
        }

        self.stats.results += 1;
        self.completed += 1;
        let accepted_off = off;

        // Round-trip accounting for the adaptive estimator.
        if self.cfg.rto.is_some() {
            if let RtoPolicy::Adaptive { .. } = self.cfg.rto_policy {
                if st.tainted {
                    // Karn's rule: the result may answer either the
                    // original or a retransmission — unattributable.
                    self.stats.karn_discards += 1;
                } else {
                    self.take_rtt_sample(now.saturating_sub(st.sent_at));
                }
            }
        }

        // Advance by k·s elements — i.e. n_slots chunks (Alg 2 line 9;
        // within this engine's chunk range).
        let next_chunk = st.chunk + self.cfg.n_slots as u64;
        let limit = self.cfg.chunk_base + self.cfg.n_chunks;
        let next = if next_chunk < limit {
            // Progress resets any backoff: Fixed/Backoff rearm at the
            // configured RTO; Adaptive rearms at the current estimate —
            // except after a tainted round trip, where Karn's rule
            // holds the backed-off value until a fresh sample lands.
            let next_rto = match self.cfg.rto_policy {
                RtoPolicy::Adaptive { .. } if st.tainted => st.cur_rto,
                _ => self.estimated_rto(),
            };
            let ns = &mut self.slots[local];
            ns.chunk = next_chunk;
            ns.ver = st.ver.flip();
            ns.cur_rto = next_rto;
            ns.deadline = self.cfg.rto.map(|_| now + next_rto);
            ns.sent_at = now;
            ns.tainted = false;
            self.stats.sent += 1;
            Some(self.descriptor(local, false))
        } else {
            let ns = &mut self.slots[local];
            ns.active = false;
            ns.deadline = None;
            // Keep the parity rolling: the next aggregation session on
            // this slot (Appendix B's continuous stream *across
            // iterations*) must use the flipped pool.
            ns.ver = st.ver.flip();
            None
        };
        Ok(ResultOutcome::Accepted {
            off: accepted_off,
            next,
        })
    }

    /// Restart one slot's retransmission clock at `now`: timeout back
    /// to the current estimate, untainted, RTT window opened. For
    /// senders whose actual wire transmission is decoupled from
    /// protocol advancement — a hierarchy leaf's upstream engine
    /// advances a slot when the spine's result arrives, but the next
    /// update only hits the wire once the rack re-completes the chunk,
    /// so the clock must restart then or the idle gap would both
    /// inflate the backoff and poison the RTT samples. No-op on a
    /// retired slot.
    pub fn rearm_slot(&mut self, slot: SlotIndex, now: TimeNs) -> Result<()> {
        if !self.owns_slot(slot) {
            return Err(Error::OutOfRange(
                "rearm for a slot this engine does not own",
            ));
        }
        let rto0 = self.estimated_rto();
        let st = &mut self.slots[(slot - self.cfg.slot_base) as usize];
        if st.active {
            st.cur_rto = rto0;
            st.sent_at = now;
            st.tainted = false;
            st.deadline = self.cfg.rto.map(|_| now + rto0);
        }
        Ok(())
    }

    /// Earliest retransmission deadline among active slots.
    pub fn next_deadline(&self) -> Option<TimeNs> {
        self.slots
            .iter()
            .filter(|s| s.active)
            .filter_map(|s| s.deadline)
            .min()
    }

    /// Collect retransmissions for every slot whose timer has expired
    /// at `now`, rearming each timer (Algorithm 4's timeout handler;
    /// under [`RtoPolicy::ExponentialBackoff`] each expiry doubles
    /// that slot's timeout up to the cap).
    pub fn expired(&mut self, now: TimeNs) -> Vec<SendDescriptor> {
        if self.cfg.rto.is_none() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for local in 0..self.slots.len() {
            let st = &mut self.slots[local];
            if st.active && st.deadline.is_some_and(|d| d <= now) {
                match self.cfg.rto_policy {
                    RtoPolicy::ExponentialBackoff { max_ns }
                    | RtoPolicy::Adaptive { max_ns, .. } => {
                        st.cur_rto = (st.cur_rto.saturating_mul(2)).min(max_ns);
                    }
                    RtoPolicy::Fixed => {}
                }
                // The outstanding chunk now has two transmissions in
                // flight; its eventual result is off-limits to the RTT
                // estimator (Karn).
                st.tainted = true;
                st.deadline = Some(now + st.cur_rto);
                self.stats.retx += 1;
                out.push(self.descriptor(local, true));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n_slots: usize, n_chunks: u64, rto: Option<TimeNs>) -> EngineConfig {
        EngineConfig {
            wid: 0,
            k: 4,
            slot_base: 0,
            n_slots,
            chunk_base: 0,
            n_chunks,
            rto,
            rto_policy: RtoPolicy::Fixed,
        }
    }

    #[test]
    fn initial_window_covers_first_s_chunks() {
        let mut e = SlotEngine::new(cfg(4, 10, None)).unwrap();
        let descs = e.start(0);
        assert_eq!(descs.len(), 4);
        for (i, d) in descs.iter().enumerate() {
            assert_eq!(d.slot, i as u32);
            assert_eq!(d.off, (i * 4) as u64);
            assert_eq!(d.ver, PoolVersion::V0);
        }
    }

    #[test]
    fn small_stream_uses_fewer_slots_than_pool() {
        let mut e = SlotEngine::new(cfg(8, 3, None)).unwrap();
        assert_eq!(e.start(0).len(), 3);
    }

    #[test]
    fn advance_by_pool_stride_and_flip_version() {
        let mut e = SlotEngine::new(cfg(2, 6, None)).unwrap();
        e.start(0);
        // Slot 0 finished chunk 0 → next carries chunk 2 (stride = 2)
        // at offset 8, version flipped to V1.
        match e.on_result(0, PoolVersion::V0, 0, 0).unwrap() {
            ResultOutcome::Accepted { next: Some(d), .. } => {
                assert_eq!(d.slot, 0);
                assert_eq!(d.off, 8);
                assert_eq!(d.ver, PoolVersion::V1);
            }
            other => panic!("{other:?}"),
        }
        // And again: chunk 4 at offset 16, version back to V0.
        match e.on_result(0, PoolVersion::V1, 8, 0).unwrap() {
            ResultOutcome::Accepted { next: Some(d), .. } => {
                assert_eq!(d.off, 16);
                assert_eq!(d.ver, PoolVersion::V0);
            }
            other => panic!("{other:?}"),
        }
        // Chunk 4 was the last for slot 0 (chunks 0,2,4): retire.
        match e.on_result(0, PoolVersion::V0, 16, 0).unwrap() {
            ResultOutcome::Accepted { next: None, .. } => {}
            other => panic!("{other:?}"),
        }
        assert!(!e.is_done()); // slot 1's chunks still pending
    }

    #[test]
    fn completes_exactly_once_per_chunk() {
        let mut e = SlotEngine::new(cfg(2, 5, None)).unwrap();
        let mut inflight = e.start(0);
        let mut completed = 0;
        while let Some(d) = inflight.pop() {
            match e.on_result(d.slot, d.ver, d.off, 0).unwrap() {
                ResultOutcome::Accepted { next, .. } => {
                    completed += 1;
                    if let Some(n) = next {
                        inflight.push(n);
                    }
                }
                ResultOutcome::Stale => panic!("unexpected stale"),
            }
        }
        assert_eq!(completed, 5);
        assert!(e.is_done());
    }

    #[test]
    fn stale_results_ignored() {
        let mut e = SlotEngine::new(cfg(1, 3, Some(100))).unwrap();
        e.start(0);
        // Wrong version.
        assert_eq!(
            e.on_result(0, PoolVersion::V1, 0, 0).unwrap(),
            ResultOutcome::Stale
        );
        // Wrong offset.
        assert_eq!(
            e.on_result(0, PoolVersion::V0, 4, 0).unwrap(),
            ResultOutcome::Stale
        );
        // Correct one accepted.
        assert!(matches!(
            e.on_result(0, PoolVersion::V0, 0, 0).unwrap(),
            ResultOutcome::Accepted { .. }
        ));
        // Duplicate of the accepted one (e.g. multicast + unicast
        // retransmission both arrive) is now stale: the slot moved on.
        assert_eq!(
            e.on_result(0, PoolVersion::V0, 0, 0).unwrap(),
            ResultOutcome::Stale
        );
        assert_eq!(e.stats().stale, 3);
        // Result for a slot we don't own is an error.
        assert!(e.on_result(7, PoolVersion::V0, 0, 0).is_err());
    }

    #[test]
    fn timers_fire_and_rearm() {
        let mut e = SlotEngine::new(cfg(2, 4, Some(100))).unwrap();
        e.start(0);
        assert_eq!(e.next_deadline(), Some(100));
        assert!(e.expired(50).is_empty());
        let rx = e.expired(100);
        assert_eq!(rx.len(), 2);
        assert!(rx.iter().all(|d| d.retransmission));
        // Rearmed at 200.
        assert_eq!(e.next_deadline(), Some(200));
        assert_eq!(e.stats().retx, 2);
        // A result cancels slot 0's timer and rearms for the next
        // chunk.
        e.on_result(0, PoolVersion::V0, 0, 150).unwrap();
        assert_eq!(e.next_deadline(), Some(200)); // slot 1 still at 200
        let rx = e.expired(260);
        assert_eq!(rx.len(), 2); // slot 1 (200) and slot 0 (250)
    }

    #[test]
    fn no_rto_means_no_retransmission() {
        let mut e = SlotEngine::new(cfg(2, 4, None)).unwrap();
        e.start(0);
        assert_eq!(e.next_deadline(), None);
        assert!(e.expired(u64::MAX).is_empty());
    }

    #[test]
    fn retransmission_repeats_same_descriptor() {
        let mut e = SlotEngine::new(cfg(1, 2, Some(10))).unwrap();
        let first = e.start(0)[0];
        let rx = e.expired(10)[0];
        assert_eq!(rx.slot, first.slot);
        assert_eq!(rx.ver, first.ver);
        assert_eq!(rx.off, first.off);
        assert!(rx.retransmission && !first.retransmission);
    }

    #[test]
    fn sharded_ranges_respected() {
        let mut e = SlotEngine::new(EngineConfig {
            wid: 1,
            k: 4,
            slot_base: 8,
            n_slots: 2,
            chunk_base: 100,
            n_chunks: 3,
            rto: None,
            rto_policy: RtoPolicy::Fixed,
        })
        .unwrap();
        let descs = e.start(0);
        assert_eq!(descs[0].slot, 8);
        assert_eq!(descs[0].off, 400); // chunk 100 × k 4
        assert_eq!(descs[1].slot, 9);
        assert!(e.owns_slot(9) && !e.owns_slot(10) && !e.owns_slot(7));
        // Finish all three chunks.
        match e.on_result(8, PoolVersion::V0, 400, 0).unwrap() {
            ResultOutcome::Accepted { next: Some(d), .. } => {
                assert_eq!(d.off, 408); // chunk 102
                e.on_result(8, d.ver, d.off, 0).unwrap();
            }
            other => panic!("{other:?}"),
        }
        e.on_result(9, PoolVersion::V0, 404, 0).unwrap();
        assert!(e.is_done());
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let mut e = SlotEngine::new(EngineConfig {
            rto_policy: RtoPolicy::ExponentialBackoff { max_ns: 700 },
            ..cfg(1, 4, Some(100))
        })
        .unwrap();
        e.start(0);
        // Expiries at 100, then 100+200, then +400, then capped +700.
        assert_eq!(e.expired(100).len(), 1);
        assert_eq!(e.next_deadline(), Some(300));
        assert_eq!(e.expired(300).len(), 1);
        assert_eq!(e.next_deadline(), Some(700));
        assert_eq!(e.expired(700).len(), 1);
        assert_eq!(e.next_deadline(), Some(1400)); // 700 + capped 700
                                                   // Progress resets the backoff to the initial 100.
        e.on_result(0, PoolVersion::V0, 0, 2000).unwrap();
        assert_eq!(e.next_deadline(), Some(2100));
    }

    fn adaptive(
        n_slots: usize,
        n_chunks: u64,
        init: TimeNs,
        min: TimeNs,
        max: TimeNs,
    ) -> EngineConfig {
        EngineConfig {
            rto_policy: RtoPolicy::Adaptive {
                min_ns: min,
                max_ns: max,
            },
            ..cfg(n_slots, n_chunks, Some(init))
        }
    }

    #[test]
    fn adaptive_rto_tracks_measured_rtt() {
        let mut e = SlotEngine::new(adaptive(1, 8, 1_000, 10, 100_000)).unwrap();
        // Before any sample the estimate is the configured initial RTO.
        assert_eq!(e.estimated_rto(), 1_000);
        e.start(0);
        assert_eq!(e.next_deadline(), Some(1_000));
        // First round trip takes 200 ns: SRTT = 200, RTTVAR = 100,
        // RTO = SRTT + 4·RTTVAR = 600; the next chunk arms with it.
        e.on_result(0, PoolVersion::V0, 0, 200).unwrap();
        assert_eq!(e.stats().rtt_samples, 1);
        assert_eq!(e.stats().srtt_ns, 200);
        assert_eq!(e.stats().rttvar_ns, 100);
        assert_eq!(e.estimated_rto(), 600);
        assert_eq!(e.next_deadline(), Some(200 + 600));
        // A second identical sample decays the variance: RTTVAR = 75,
        // RTO = 500.
        e.on_result(0, PoolVersion::V1, 4, 400).unwrap();
        assert_eq!(e.stats().srtt_ns, 200);
        assert_eq!(e.stats().rttvar_ns, 75);
        assert_eq!(e.next_deadline(), Some(400 + 500));
    }

    #[test]
    fn adaptive_rto_clamps_to_floor() {
        // A near-zero RTT must not produce a hair-trigger timer: the
        // estimate clamps to min_ns (which transports raise to their
        // receive-timeout granule).
        let mut e = SlotEngine::new(adaptive(1, 4, 1_000, 50, 100_000)).unwrap();
        e.start(0);
        e.on_result(0, PoolVersion::V0, 0, 1).unwrap();
        e.on_result(0, PoolVersion::V1, 4, 2).unwrap();
        e.on_result(0, PoolVersion::V0, 8, 3).unwrap();
        assert!(e.estimated_rto() >= 50);
        assert_eq!(e.estimated_rto(), 50);
    }

    #[test]
    fn karn_discards_retransmitted_samples_and_holds_backoff() {
        let mut e = SlotEngine::new(adaptive(1, 3, 100, 10, 10_000)).unwrap();
        e.start(0);
        // Two expiries: the fallback backoff doubles 100 → 200 → 400
        // and taints the slot.
        assert_eq!(e.expired(100).len(), 1);
        assert_eq!(e.expired(300).len(), 1);
        assert_eq!(e.next_deadline(), Some(300 + 400));
        // The result finally lands. Its 700 ns "RTT" is unattributable
        // (original send or which retransmission?) — Karn's rule
        // discards it, and the backed-off 400 holds for the next chunk
        // instead of resetting to the untrustworthy estimate.
        match e.on_result(0, PoolVersion::V0, 0, 700).unwrap() {
            ResultOutcome::Accepted { next: Some(_), .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(e.stats().karn_discards, 1);
        assert_eq!(e.stats().rtt_samples, 0);
        assert_eq!(e.stats().srtt_ns, 0);
        assert_eq!(e.next_deadline(), Some(700 + 400));
        // A fresh, never-retransmitted round trip (150 ns) is a valid
        // sample: SRTT = 150, RTTVAR = 75, and the backed-off timer
        // resets to the estimated RTO = 450.
        e.on_result(0, PoolVersion::V1, 4, 850).unwrap();
        assert_eq!(e.stats().rtt_samples, 1);
        assert_eq!(e.stats().karn_discards, 1);
        assert_eq!(e.estimated_rto(), 450);
        assert_eq!(e.next_deadline(), Some(850 + 450));
    }

    #[test]
    fn adaptive_backoff_caps_at_max() {
        let mut e = SlotEngine::new(adaptive(1, 2, 100, 10, 350)).unwrap();
        e.start(0);
        e.expired(100); // 200
        e.expired(300); // 350 (capped)
        e.expired(650); // still 350
        assert_eq!(e.next_deadline(), Some(650 + 350));
        assert_eq!(e.stats().retx, 3);
    }

    #[test]
    fn chunk_list_streams_exactly_the_listed_chunks() {
        // Resume mode: only chunks 1, 4, 5 remain (k=4).
        let mut e = SlotEngine::with_chunk_list(cfg(2, 3, None), vec![1, 4, 5]).unwrap();
        let descs = e.start(0);
        assert_eq!(descs.len(), 2);
        assert_eq!(descs[0].off, 4); // chunk 1
        assert_eq!(descs[1].off, 16); // chunk 4
                                      // Finishing chunk 1 advances slot 0 by the slot stride (2)
                                      // through the *list* → chunk 5 at offset 20.
        match e.on_result(0, PoolVersion::V0, 4, 0).unwrap() {
            ResultOutcome::Accepted { next: Some(d), .. } => assert_eq!(d.off, 20),
            other => panic!("{other:?}"),
        }
        // A result carrying the logical offset is stale, not accepted.
        assert_eq!(
            e.on_result(1, PoolVersion::V0, 4, 0).unwrap(),
            ResultOutcome::Stale
        );
        e.on_result(1, PoolVersion::V0, 16, 0).unwrap();
        e.on_result(0, PoolVersion::V1, 20, 0).unwrap();
        assert!(e.is_done());
        // Config invariants enforced.
        assert!(SlotEngine::with_chunk_list(cfg(2, 2, None), vec![1, 2, 3]).is_err());
    }

    #[test]
    fn disable_retransmission_clears_timers() {
        let mut e = SlotEngine::new(cfg(2, 4, Some(100))).unwrap();
        e.start(0);
        assert_eq!(e.next_deadline(), Some(100));
        e.disable_retransmission();
        assert_eq!(e.next_deadline(), None);
        assert!(e.expired(u64::MAX).is_empty());
    }

    #[test]
    fn resume_at_rejoins_a_peer_engine_mid_stream() {
        // Drive a reference engine halfway, snapshot it, and rebuild a
        // replacement from the snapshot: the replacement must report
        // the same progress and accept the same next results.
        let mut reference = SlotEngine::new(cfg(2, 6, Some(100))).unwrap();
        reference.start(0);
        // Slot 0 completes chunks 0 and 2; slot 1 completes chunk 1.
        reference.on_result(0, PoolVersion::V0, 0, 0).unwrap();
        reference.on_result(0, PoolVersion::V1, 8, 0).unwrap();
        reference.on_result(1, PoolVersion::V0, 4, 0).unwrap();
        let snaps = reference.slot_snapshots();
        let states: Vec<_> = snaps.iter().map(|s| (s.ver, s.chunk, s.active)).collect();

        let mut e = SlotEngine::resume_at(cfg(2, 6, Some(100)), &states, 1_000).unwrap();
        assert_eq!(e.completed_chunks(), 3);
        assert!(!e.is_done());
        // Timers re-armed for the in-flight chunks…
        assert_eq!(e.next_deadline(), Some(1_100));
        let rx = e.expired(1_100);
        assert_eq!(rx.len(), 2);
        assert!(rx.iter().all(|d| d.retransmission));
        // …and the in-flight (slot, ver, off) tuples match the peer's.
        let mut got: Vec<_> = rx.iter().map(|d| (d.slot, d.ver as u8, d.off)).collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                (0, PoolVersion::V0 as u8, 16),
                (1, PoolVersion::V1 as u8, 12)
            ]
        );
        // Finishing the remaining chunks completes the engine.
        e.on_result(0, PoolVersion::V0, 16, 1_200).unwrap();
        e.on_result(1, PoolVersion::V1, 12, 1_200).unwrap();
        e.on_result(1, PoolVersion::V0, 20, 1_200).unwrap();
        assert!(e.is_done());
        // Karn: the resumed round trips were unattributable.
        assert_eq!(e.stats().rtt_samples, 0);
    }

    #[test]
    fn resume_at_with_retired_slots_counts_them_complete() {
        // Slot 0 retired (chunks 0, 2 done), slot 1 mid-flight on
        // chunk 3 (chunk 1 done) → 3 of 4 chunks complete.
        let states = vec![(PoolVersion::V0, 0, false), (PoolVersion::V1, 3, true)];
        let e = SlotEngine::resume_at(cfg(2, 4, Some(100)), &states, 0).unwrap();
        assert_eq!(e.completed_chunks(), 3);
        // Off-stride chunk rejected.
        let bad = vec![(PoolVersion::V0, 1, true), (PoolVersion::V0, 1, true)];
        assert!(SlotEngine::resume_at(cfg(2, 4, None), &bad, 0).is_err());
        // Wrong state count rejected.
        assert!(SlotEngine::resume_at(cfg(2, 4, None), &states[..1], 0).is_err());
    }

    #[test]
    fn rearm_slot_resets_clock_and_taint() {
        let mut e = SlotEngine::new(adaptive(1, 4, 100, 10, 10_000)).unwrap();
        e.start(0);
        // Two idle expiries back off 100 → 200 → 400 and taint.
        e.expired(100);
        e.expired(300);
        // The actual send happens at t = 1_000: restart the clock.
        e.rearm_slot(0, 1_000).unwrap();
        assert_eq!(e.next_deadline(), Some(1_100));
        // The result at 1_150 is a clean 150 ns sample, not Karn-binned.
        e.on_result(0, PoolVersion::V0, 0, 1_150).unwrap();
        assert_eq!(e.stats().rtt_samples, 1);
        assert_eq!(e.stats().srtt_ns, 150);
        assert!(e.rearm_slot(9, 0).is_err());
    }

    #[test]
    fn slot_state_reports_inflight_tuple() {
        let mut e = SlotEngine::new(cfg(2, 6, None)).unwrap();
        e.start(0);
        let s = e.slot_state(1).unwrap();
        assert_eq!((s.ver, s.chunk, s.active), (PoolVersion::V0, 1, true));
        e.on_result(1, PoolVersion::V0, 4, 0).unwrap();
        let s = e.slot_state(1).unwrap();
        assert_eq!((s.ver, s.chunk, s.active), (PoolVersion::V1, 3, true));
        assert!(e.slot_state(7).is_none());
        // Consistent with the bulk snapshot.
        assert_eq!(e.slot_snapshots()[1], e.slot_state(1).unwrap());
    }

    #[test]
    fn empty_chunk_range_is_immediately_done() {
        let mut e = SlotEngine::new(cfg(4, 0, None)).unwrap();
        assert!(e.start(0).is_empty());
        assert!(e.is_done());
    }
}
