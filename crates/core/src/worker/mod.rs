//! Worker-side protocol (§3.4, §3.5, Appendix B).
//!
//! A [`Worker`] combines:
//!
//! * one [`engine::SlotEngine`] per CPU core — the Algorithm 2/4 state
//!   machine over a disjoint slot range and a contiguous chunk range
//!   (the paper shards "slots and chunks of tensors across cores
//!   without any shared state" via NIC Flow Director; our dispatch by
//!   slot index models the same partitioning), and
//! * a [`stream::TensorStream`] — the Appendix B virtual stream buffer
//!   manager that quantizes outgoing chunks and steers aggregated
//!   results back into per-tensor buffers.
//!
//! The worker is sans-IO: `start`/`on_result`/`expired` return fully
//! formed [`Packet`]s for the embedding layer to transmit, and
//! `next_deadline` tells it when to call back.

pub mod engine;
pub mod stream;

use crate::config::{Protocol, TimeNs};
use crate::error::{Error, Result};
use crate::packet::{Packet, PacketKind, WorkerId};
use engine::{EngineConfig, EngineStats, ResultOutcome, SendDescriptor, SlotEngine};
use stream::TensorStream;

/// A SwitchML worker endpoint.
#[derive(Debug, Clone)]
pub struct Worker {
    wid: WorkerId,
    proto: Protocol,
    engines: Vec<SlotEngine>,
    stream: TensorStream,
    /// Job generation stamped on every outgoing update and required on
    /// every accepted result (§5.4 epoch fence).
    epoch: u8,
    /// Results dropped because they carried another generation's epoch.
    stale_epoch: u64,
}

impl Worker {
    /// Single-core worker over the whole pool and stream.
    pub fn new(wid: WorkerId, proto: &Protocol, stream: TensorStream) -> Result<Self> {
        Worker::sharded(wid, proto, stream, 1)
    }

    /// Multi-core worker: the pool's slots and the stream's chunks are
    /// partitioned into `n_cores` contiguous, disjoint ranges, one
    /// engine per core.
    pub fn sharded(
        wid: WorkerId,
        proto: &Protocol,
        stream: TensorStream,
        n_cores: usize,
    ) -> Result<Self> {
        proto.validate()?;
        if (wid as usize) >= proto.n_workers {
            return Err(Error::OutOfRange("worker id >= n_workers"));
        }
        if n_cores == 0 {
            return Err(Error::InvalidConfig("n_cores must be > 0".into()));
        }
        if n_cores > proto.pool_size {
            return Err(Error::InvalidConfig(format!(
                "{n_cores} cores need at least {n_cores} pool slots"
            )));
        }
        if stream.k() != proto.k {
            return Err(Error::InvalidConfig(
                "stream chunk size does not match protocol k".into(),
            ));
        }
        let engines = Self::build_engines(wid, proto, &stream, n_cores, None)?;
        Ok(Worker {
            wid,
            proto: proto.clone(),
            engines,
            stream,
            epoch: 0,
            stale_epoch: 0,
        })
    }

    /// Partition slots and chunks into per-core engines; `versions`
    /// (one per pool slot, global order) seeds session continuation.
    fn build_engines(
        wid: WorkerId,
        proto: &Protocol,
        stream: &TensorStream,
        n_cores: usize,
        versions: Option<&[crate::packet::PoolVersion]>,
    ) -> Result<Vec<SlotEngine>> {
        let total_chunks = stream.total_chunks();
        let s = proto.pool_size;
        let mut engines = Vec::with_capacity(n_cores);
        for j in 0..n_cores {
            let slot_lo = j * s / n_cores;
            let slot_hi = (j + 1) * s / n_cores;
            let chunk_lo = (j as u64) * total_chunks / n_cores as u64;
            let chunk_hi = (j as u64 + 1) * total_chunks / n_cores as u64;
            let cfg = EngineConfig {
                wid,
                k: proto.k,
                slot_base: slot_lo as u32,
                n_slots: slot_hi - slot_lo,
                chunk_base: chunk_lo,
                n_chunks: chunk_hi - chunk_lo,
                rto: Some(proto.rto_ns),
                rto_policy: proto.rto_policy,
            };
            engines.push(match versions {
                Some(v) => SlotEngine::with_versions(cfg, &v[slot_lo..slot_hi])?,
                None => SlotEngine::new(cfg)?,
            });
        }
        Ok(engines)
    }

    /// The pool version each slot will use on its next send — valid
    /// once [`Worker::is_done`]. Used (usually via
    /// [`Worker::into_next_session`]) to keep aggregating against a
    /// switch whose pools retain state: Appendix B's "single,
    /// continuous stream of data across iterations".
    pub fn slot_versions(&self) -> Result<Vec<crate::packet::PoolVersion>> {
        let mut out = vec![crate::packet::PoolVersion::V0; self.proto.pool_size];
        for e in &self.engines {
            let base = e.config().slot_base as usize;
            for (i, v) in e.next_versions()?.into_iter().enumerate() {
                out[base + i] = v;
            }
        }
        Ok(out)
    }

    /// Finish this aggregation and start the next against the *same*
    /// live switch: returns the aggregated tensors (raw sums) and a
    /// successor worker whose slots continue the pool-version parity.
    pub fn into_next_session(self, stream: TensorStream) -> Result<(Vec<Vec<f32>>, Worker)> {
        if stream.k() != self.proto.k {
            return Err(Error::InvalidConfig(
                "stream chunk size does not match protocol k".into(),
            ));
        }
        let versions = self.slot_versions()?;
        let engines = Self::build_engines(
            self.wid,
            &self.proto,
            &stream,
            self.engines.len(),
            Some(&versions),
        )?;
        let results = self.stream.result_tensors_f32(1)?;
        Ok((
            results,
            Worker {
                wid: self.wid,
                proto: self.proto,
                engines,
                stream,
                epoch: self.epoch,
                stale_epoch: 0,
            },
        ))
    }

    /// Resume a partially aggregated stream under a (possibly
    /// different) configuration and a *fresh* switch pool: only the
    /// chunks not yet aggregated are re-streamed, in order, sharded
    /// across `n_cores` engines. This is the worker half of live
    /// reconfiguration — after a peer dies, survivors are rebuilt with
    /// `proto.n_workers` shrunk (and `wid` renumbered densely),
    /// `stream.set_scaling` already applied, and the switch's pool
    /// reset, then they finish the remaining chunks.
    pub fn resume(
        wid: WorkerId,
        proto: &Protocol,
        stream: TensorStream,
        n_cores: usize,
    ) -> Result<Self> {
        proto.validate()?;
        if (wid as usize) >= proto.n_workers {
            return Err(Error::OutOfRange("worker id >= n_workers"));
        }
        if n_cores == 0 {
            return Err(Error::InvalidConfig("n_cores must be > 0".into()));
        }
        if n_cores > proto.pool_size {
            return Err(Error::InvalidConfig(format!(
                "{n_cores} cores need at least {n_cores} pool slots"
            )));
        }
        if stream.k() != proto.k {
            return Err(Error::InvalidConfig(
                "stream chunk size does not match protocol k".into(),
            ));
        }
        let undone = stream.undone_chunks();
        let s = proto.pool_size;
        let mut engines = Vec::with_capacity(n_cores);
        for j in 0..n_cores {
            let slot_lo = j * s / n_cores;
            let slot_hi = (j + 1) * s / n_cores;
            let lo = j * undone.len() / n_cores;
            let hi = (j + 1) * undone.len() / n_cores;
            let cfg = EngineConfig {
                wid,
                k: proto.k,
                slot_base: slot_lo as u32,
                n_slots: slot_hi - slot_lo,
                chunk_base: 0,
                n_chunks: (hi - lo) as u64,
                rto: Some(proto.rto_ns),
                rto_policy: proto.rto_policy,
            };
            engines.push(SlotEngine::with_chunk_list(cfg, undone[lo..hi].to_vec())?);
        }
        Ok(Worker {
            wid,
            proto: proto.clone(),
            engines,
            stream,
            epoch: 0,
            stale_epoch: 0,
        })
    }

    /// Consume the worker, recovering its stream (with whatever chunks
    /// have been aggregated so far) for a later [`Worker::resume`].
    pub fn into_stream(self) -> TensorStream {
        self.stream
    }

    /// Disable retransmission (Algorithm 2, for lossless fabrics and
    /// for tests that must fail loudly on loss).
    pub fn without_retransmission(mut self) -> Self {
        for e in &mut self.engines {
            e.disable_retransmission();
        }
        self
    }

    pub fn wid(&self) -> WorkerId {
        self.wid
    }

    /// The job generation this worker stamps on updates and accepts on
    /// results.
    pub fn epoch(&self) -> u8 {
        self.epoch
    }

    /// Move to a new job generation (§5.4). Results still in flight
    /// from the previous epoch will be counted-and-dropped rather than
    /// installed into the stream.
    pub fn set_epoch(&mut self, epoch: u8) {
        self.epoch = epoch;
    }

    pub fn n_cores(&self) -> usize {
        self.engines.len()
    }

    /// Total protocol stats across cores. Counters sum; the RTT
    /// estimate reported is the slowest core's (the one that governs
    /// tail retransmission behaviour).
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for e in &self.engines {
            total.merge(e.stats());
        }
        total.stale_epoch = self.stale_epoch;
        total
    }

    /// Per-core stats (for cache-locality / sharding tests).
    pub fn core_stats(&self) -> Vec<EngineStats> {
        self.engines.iter().map(|e| e.stats()).collect()
    }

    /// Which core (engine) owns a slot — the dispatch the paper gets
    /// from NIC Flow Director steering. `None` if no engine owns it.
    pub fn core_for_slot(&self, slot: crate::packet::SlotIndex) -> Option<usize> {
        self.engines.iter().position(|e| e.owns_slot(slot))
    }

    /// Protocol snapshot of every owned slot across all cores, in slot
    /// order — the worker half of the model checker's state
    /// fingerprint, and the oracle's source of truth for which (slot,
    /// version, offset) each worker has outstanding.
    pub fn slot_snapshots(&self) -> Vec<engine::SlotSnapshot> {
        let mut snaps: Vec<_> = self
            .engines
            .iter()
            .flat_map(|e| e.slot_snapshots())
            .collect();
        snaps.sort_by_key(|s| s.slot);
        snaps
    }

    fn materialize(&self, d: SendDescriptor) -> Result<Packet> {
        Ok(Packet {
            kind: PacketKind::Update,
            wid: self.wid,
            ver: d.ver,
            idx: d.slot,
            off: d.off,
            job: 0,
            epoch: self.epoch,
            retransmission: d.retransmission,
            payload: self.stream.payload_chunk(d.off)?,
        })
    }

    /// Emit the initial window of update packets (one per usable slot
    /// across all cores).
    pub fn start(&mut self, now: TimeNs) -> Result<Vec<Packet>> {
        let mut out = Vec::new();
        let descs: Vec<SendDescriptor> =
            self.engines.iter_mut().flat_map(|e| e.start(now)).collect();
        for d in descs {
            out.push(self.materialize(d)?);
        }
        Ok(out)
    }

    /// Handle a result packet from the switch. Returns the follow-up
    /// update to transmit, if any. Corrupted packets should be dropped
    /// by the transport before reaching this method (checksum), but
    /// stale/duplicate results are handled here and ignored.
    pub fn on_result(&mut self, pkt: &Packet, now: TimeNs) -> Result<Vec<Packet>> {
        if pkt.kind != PacketKind::Result {
            // Not addressed to a worker; ignore defensively.
            return Ok(Vec::new());
        }
        if pkt.epoch != self.epoch {
            // A result from another job generation must not be
            // installed: its aggregate was computed under a different
            // membership/scaling (§5.4 fence, worker side).
            self.stale_epoch += 1;
            return Ok(Vec::new());
        }
        let engine_idx = self
            .engines
            .iter()
            .position(|e| e.owns_slot(pkt.idx))
            .ok_or(Error::OutOfRange("result for unknown slot"))?;
        let outcome = self.engines[engine_idx].on_result(pkt.idx, pkt.ver, pkt.off, now)?;
        match outcome {
            ResultOutcome::Accepted { off, next } => {
                self.stream.write_result(off, &pkt.payload)?;
                match next {
                    Some(d) => Ok(vec![self.materialize(d)?]),
                    None => Ok(Vec::new()),
                }
            }
            ResultOutcome::Stale => Ok(Vec::new()),
        }
    }

    /// Earliest retransmission deadline across cores.
    pub fn next_deadline(&self) -> Option<TimeNs> {
        self.engines.iter().filter_map(|e| e.next_deadline()).min()
    }

    /// Retransmit every expired slot (Algorithm 4's timeout handler).
    pub fn expired(&mut self, now: TimeNs) -> Result<Vec<Packet>> {
        let descs: Vec<SendDescriptor> = self
            .engines
            .iter_mut()
            .flat_map(|e| e.expired(now))
            .collect();
        descs.into_iter().map(|d| self.materialize(d)).collect()
    }

    /// Has the entire model update been aggregated?
    pub fn is_done(&self) -> bool {
        self.engines.iter().all(|e| e.is_done())
    }

    /// Fraction of chunks aggregated (progress reporting).
    pub fn progress(&self) -> f64 {
        let total: u64 = self.engines.iter().map(|e| e.config().n_chunks).sum();
        if total == 0 {
            return 1.0;
        }
        let done: u64 = self.engines.iter().map(|e| e.completed_chunks()).sum();
        done as f64 / total as f64
    }

    /// Access the underlying stream (e.g. to read results).
    pub fn stream(&self) -> &TensorStream {
        &self.stream
    }

    /// Consume the worker and return the aggregated tensors, divided
    /// by `divide_by` (pass `n_workers` for the mean update; the
    /// switch only sums — division is end-host work, §3.3).
    pub fn into_results(self, divide_by: usize) -> Result<Vec<Vec<f32>>> {
        self.stream.result_tensors_f32(divide_by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NumericMode;
    use crate::packet::{Payload, PoolVersion};

    fn proto(n: usize, k: usize, s: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k,
            pool_size: s,
            rto_ns: 1000,
            scaling_factor: 100.0,
            ..Protocol::default()
        }
    }

    fn stream(elems: usize, k: usize) -> TensorStream {
        let t: Vec<f32> = (0..elems).map(|i| i as f32 * 0.25).collect();
        TensorStream::from_f32(&[t], NumericMode::Fixed32, 100.0, k).unwrap()
    }

    #[test]
    fn initial_window_one_packet_per_slot() {
        let p = proto(2, 4, 8);
        let mut w = Worker::new(0, &p, stream(64, 4)).unwrap();
        let pkts = w.start(0).unwrap();
        assert_eq!(pkts.len(), 8);
        for (i, pkt) in pkts.iter().enumerate() {
            assert_eq!(pkt.idx, i as u32);
            assert_eq!(pkt.off, (i * 4) as u64);
            assert_eq!(pkt.wid, 0);
            assert_eq!(pkt.kind, PacketKind::Update);
        }
    }

    #[test]
    fn result_advances_and_writes() {
        let p = proto(1, 2, 2);
        let mut w = Worker::new(0, &p, stream(8, 2)).unwrap();
        let first = w.start(0).unwrap();
        // Echo slot 0's own payload back as the "aggregate".
        let result = Packet {
            kind: PacketKind::Result,
            ..first[0].clone()
        };
        let next = w.on_result(&result, 10).unwrap();
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].off, 4); // advanced by k*s = 4 elements
        assert_eq!(next[0].ver, PoolVersion::V1);
        assert_eq!(w.stream().done_chunks(), 1);
    }

    #[test]
    fn sharding_partitions_slots_and_chunks() {
        let p = proto(2, 4, 8);
        let w = Worker::sharded(0, &p, stream(160, 4), 4).unwrap();
        assert_eq!(w.n_cores(), 4);
        let mut w = w;
        let pkts = w.start(0).unwrap();
        // 8 slots across 4 cores → 2 slots each, 40 chunks → 10 each.
        assert_eq!(pkts.len(), 8);
        // Core 1's slots are 2 and 3, starting at its chunk base 10.
        let slot2 = pkts.iter().find(|p| p.idx == 2).unwrap();
        assert_eq!(slot2.off, 40); // chunk 10 × k 4
    }

    #[test]
    fn full_lockstep_aggregation_two_workers() {
        use crate::switch::reliable::ReliableSwitch;
        use crate::switch::SwitchAction;
        let p = proto(2, 4, 4);
        let elems = 40;
        let t0: Vec<f32> = (0..elems).map(|i| i as f32).collect();
        let t1: Vec<f32> = (0..elems).map(|i| (i as f32) * 2.0).collect();
        let s0 = TensorStream::from_f32(std::slice::from_ref(&t0), NumericMode::Fixed32, 100.0, 4)
            .unwrap();
        let s1 = TensorStream::from_f32(std::slice::from_ref(&t1), NumericMode::Fixed32, 100.0, 4)
            .unwrap();
        let mut w0 = Worker::new(0, &p, s0).unwrap();
        let mut w1 = Worker::new(1, &p, s1).unwrap();
        let mut sw = ReliableSwitch::new(&p).unwrap();

        let mut inflight: Vec<Packet> = Vec::new();
        inflight.extend(w0.start(0).unwrap());
        inflight.extend(w1.start(0).unwrap());
        let mut guard = 0;
        while let Some(pkt) = inflight.pop() {
            guard += 1;
            assert!(guard < 10_000, "protocol did not converge");
            match sw.on_packet(pkt).unwrap() {
                SwitchAction::Multicast(result) => {
                    inflight.extend(w0.on_result(&result, 0).unwrap());
                    inflight.extend(w1.on_result(&result, 0).unwrap());
                }
                SwitchAction::Unicast(_, _) => panic!("no retransmissions in lossless run"),
                SwitchAction::Drop => {}
            }
        }
        assert!(w0.is_done() && w1.is_done());
        let r0 = w0.into_results(1).unwrap();
        let r1 = w1.into_results(1).unwrap();
        for i in 0..elems {
            let expect = t0[i] + t1[i];
            assert!((r0[0][i] - expect).abs() < 0.05, "elem {i}");
            assert_eq!(r0[0][i], r1[0][i]);
        }
    }

    #[test]
    fn timeout_produces_identical_retransmission() {
        let p = proto(2, 4, 2);
        let mut w = Worker::new(0, &p, stream(16, 4)).unwrap();
        let first = w.start(100).unwrap();
        assert_eq!(w.next_deadline(), Some(1100));
        let retx = w.expired(1100).unwrap();
        assert_eq!(retx.len(), 2);
        for (a, b) in first.iter().zip(&retx) {
            assert_eq!(a.idx, b.idx);
            assert_eq!(a.ver, b.ver);
            assert_eq!(a.off, b.off);
            assert_eq!(a.payload, b.payload);
            assert!(b.retransmission);
        }
    }

    #[test]
    fn stale_result_ignored_without_side_effects() {
        let p = proto(1, 2, 1);
        let mut w = Worker::new(0, &p, stream(4, 2)).unwrap();
        w.start(0).unwrap();
        let bogus = Packet {
            kind: PacketKind::Result,
            wid: 0,
            ver: PoolVersion::V1, // wrong version
            idx: 0,
            off: 0,
            job: 0,
            epoch: 0,
            retransmission: false,
            payload: Payload::I32(vec![1, 1]),
        };
        assert!(w.on_result(&bogus, 0).unwrap().is_empty());
        assert_eq!(w.stream().done_chunks(), 0);
        assert_eq!(w.stats().stale, 1);
    }

    #[test]
    fn stale_epoch_result_is_fenced() {
        let p = proto(1, 2, 1);
        let mut w = Worker::new(0, &p, stream(4, 2)).unwrap();
        w.set_epoch(2);
        let first = w.start(0).unwrap();
        assert_eq!(first[0].epoch, 2, "updates carry the worker's epoch");
        // An epoch-1 result for exactly the outstanding (slot, version,
        // offset) — e.g. delayed from before a reconfiguration — must
        // not be installed.
        let stale = Packet {
            kind: PacketKind::Result,
            epoch: 1,
            ..first[0].clone()
        };
        assert!(w.on_result(&stale, 0).unwrap().is_empty());
        assert_eq!(w.stream().done_chunks(), 0);
        assert_eq!(w.stats().stale_epoch, 1);
        assert_eq!(w.stats().stale, 0, "fenced before the engine sees it");
        // The same result at the current epoch is accepted.
        let fresh = Packet {
            kind: PacketKind::Result,
            ..first[0].clone()
        };
        w.on_result(&fresh, 0).unwrap();
        assert_eq!(w.stream().done_chunks(), 1);
    }

    #[test]
    fn update_packets_are_ignored_by_workers() {
        let p = proto(1, 2, 1);
        let mut w = Worker::new(0, &p, stream(4, 2)).unwrap();
        let pkts = w.start(0).unwrap();
        assert!(w.on_result(&pkts[0], 0).unwrap().is_empty());
    }

    #[test]
    fn constructor_validation() {
        let p = proto(2, 4, 4);
        assert!(Worker::new(5, &p, stream(16, 4)).is_err()); // wid too big
        assert!(Worker::sharded(0, &p, stream(16, 4), 0).is_err());
        assert!(Worker::sharded(0, &p, stream(16, 4), 8).is_err()); // cores > slots
        assert!(Worker::new(0, &p, stream(16, 2)).is_err()); // k mismatch
    }

    #[test]
    fn resume_finishes_only_undone_chunks() {
        use crate::switch::reliable::ReliableSwitch;
        use crate::switch::SwitchAction;
        // 10 chunks; pretend chunks 0..5 were aggregated under an
        // earlier 3-worker epoch, then a worker died. Two survivors
        // resume the remaining 5 chunks under n=2 with a rescaled f.
        let elems = 40;
        let t0: Vec<f32> = (0..elems).map(|i| i as f32 * 0.5).collect();
        let t1: Vec<f32> = (0..elems).map(|i| i as f32 * 0.25).collect();
        let mk = |t: &Vec<f32>| {
            TensorStream::from_f32(std::slice::from_ref(t), NumericMode::Fixed32, 100.0, 4).unwrap()
        };
        let (mut s0, mut s1) = (mk(&t0), mk(&t1));
        for chunk in 0..5u64 {
            let frozen = Payload::I32(vec![7; 4]);
            s0.write_result(chunk * 4, &frozen).unwrap();
            s1.write_result(chunk * 4, &frozen).unwrap();
        }
        s0.set_scaling(200.0).unwrap();
        s1.set_scaling(200.0).unwrap();

        let p = proto(2, 4, 4);
        let p = Protocol {
            scaling_factor: 200.0,
            ..p
        };
        let mut w0 = Worker::resume(0, &p, s0, 2).unwrap();
        let mut w1 = Worker::resume(1, &p, s1, 2).unwrap();
        assert!((w0.progress() - 0.0).abs() < 1e-9, "undone work only");
        let mut sw = ReliableSwitch::new(&p).unwrap();

        let mut inflight: Vec<Packet> = Vec::new();
        inflight.extend(w0.start(0).unwrap());
        inflight.extend(w1.start(0).unwrap());
        // 4 slots but only 5 chunks left: initial window ≤ pool size.
        assert!(inflight.len() <= 8);
        for pkt in &inflight {
            assert!(pkt.off >= 20, "done chunks must not be re-sent");
        }
        let mut guard = 0;
        while let Some(pkt) = inflight.pop() {
            guard += 1;
            assert!(guard < 10_000, "resume did not converge");
            if let SwitchAction::Multicast(result) = sw.on_packet(pkt).unwrap() {
                inflight.extend(w0.on_result(&result, 0).unwrap());
                inflight.extend(w1.on_result(&result, 0).unwrap());
            }
        }
        assert!(w0.is_done() && w1.is_done());
        let r0 = w0.into_results(1).unwrap();
        // Chunks 0..5 keep the frozen epoch-0 values (installed under
        // f=100); chunks 5..10 carry the fresh 2-worker sums.
        for (i, &v) in r0[0][..20].iter().enumerate() {
            assert!((v - 0.07).abs() < 1e-6, "elem {i}: {v}");
        }
        for i in 20..elems {
            let expect = t0[i] + t1[i];
            assert!((r0[0][i] - expect).abs() < 0.05, "elem {i}");
        }
    }

    #[test]
    fn into_stream_roundtrips_partial_progress() {
        let p = proto(1, 2, 2);
        let mut w = Worker::new(0, &p, stream(8, 2)).unwrap();
        let first = w.start(0).unwrap();
        let result = Packet {
            kind: PacketKind::Result,
            ..first[0].clone()
        };
        w.on_result(&result, 0).unwrap();
        let s = w.into_stream();
        assert_eq!(s.done_chunks(), 1);
        assert_eq!(s.undone_chunks(), vec![1, 2, 3]);
        // A resumed worker picks up exactly those three chunks.
        let w2 = Worker::resume(0, &p, s, 1).unwrap();
        assert!((w2.progress() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn progress_and_empty_stream() {
        let p = proto(1, 2, 2);
        let empty = TensorStream::from_f32(&[], NumericMode::Fixed32, 1.0, 2).unwrap();
        let mut w = Worker::new(0, &p, empty).unwrap();
        assert!(w.start(0).unwrap().is_empty());
        assert!(w.is_done());
        assert_eq!(w.progress(), 1.0);
    }
}
