//! The virtual tensor stream (Appendix B).
//!
//! A model update is a *set* of tensors (one per layer — e.g. 152 for
//! ResNet-50 in Caffe2), but resetting protocol state per tensor would
//! waste slots. The paper's worker "treats the set of tensors
//! virtually as a single, continuous stream of data": the stream
//! buffer manager presents the concatenation as one sequence of
//! k-element chunks, quantizing on the way out and dequantizing +
//! steering results back to the right tensor on the way in.

use crate::config::NumericMode;
use crate::error::{Error, Result};
use crate::packet::{ElemOffset, Payload};
use crate::quant::f16::{f16_to_f32, f32_to_f16};
use crate::quant::fixed::{dequantize_chunk, quantize_chunk};

/// Gradient data in its native (framework) representation.
#[derive(Debug, Clone)]
enum StreamBuf {
    F32 { data: Vec<f32>, result: Vec<f32> },
    I32 { data: Vec<i32>, result: Vec<i32> },
}

/// The worker-side stream buffer manager.
#[derive(Debug, Clone)]
pub struct TensorStream {
    buf: StreamBuf,
    /// Element ranges of each constituent tensor within the stream.
    bounds: Vec<(usize, usize)>,
    mode: NumericMode,
    f: f64,
    k: usize,
    chunk_done: Vec<bool>,
    done_chunks: u64,
}

impl TensorStream {
    /// Build a stream over float tensors (Fixed32 or Float16 modes).
    pub fn from_f32(tensors: &[Vec<f32>], mode: NumericMode, f: f64, k: usize) -> Result<Self> {
        if mode == NumericMode::NativeInt32 {
            return Err(Error::InvalidConfig(
                "NativeInt32 mode requires integer tensors (use from_i32)".into(),
            ));
        }
        if f <= 0.0 {
            return Err(Error::InvalidConfig("scaling factor must be > 0".into()));
        }
        if k == 0 {
            return Err(Error::InvalidConfig("k must be > 0".into()));
        }
        let mut data = Vec::new();
        let mut bounds = Vec::with_capacity(tensors.len());
        for t in tensors {
            let start = data.len();
            data.extend_from_slice(t);
            bounds.push((start, data.len()));
        }
        let total = data.len();
        let chunks = total.div_ceil(k);
        Ok(TensorStream {
            buf: StreamBuf::F32 {
                result: vec![0.0; total],
                data,
            },
            bounds,
            mode,
            f,
            k,
            chunk_done: vec![false; chunks],
            done_chunks: 0,
        })
    }

    /// Build a stream over native integer tensors (Figure 8's
    /// conversion-overhead-isolation mode).
    pub fn from_i32(tensors: &[Vec<i32>], k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::InvalidConfig("k must be > 0".into()));
        }
        let mut data = Vec::new();
        let mut bounds = Vec::with_capacity(tensors.len());
        for t in tensors {
            let start = data.len();
            data.extend_from_slice(t);
            bounds.push((start, data.len()));
        }
        let total = data.len();
        let chunks = total.div_ceil(k);
        Ok(TensorStream {
            buf: StreamBuf::I32 {
                result: vec![0; total],
                data,
            },
            bounds,
            mode: NumericMode::NativeInt32,
            f: 1.0,
            k,
            chunk_done: vec![false; chunks],
            done_chunks: 0,
        })
    }

    /// Total elements in the stream.
    pub fn total_elems(&self) -> usize {
        match &self.buf {
            StreamBuf::F32 { data, .. } => data.len(),
            StreamBuf::I32 { data, .. } => data.len(),
        }
    }

    /// Total k-element chunks (the final chunk may be zero-padded).
    pub fn total_chunks(&self) -> u64 {
        self.chunk_done.len() as u64
    }

    pub fn done_chunks(&self) -> u64 {
        self.done_chunks
    }

    /// Has the chunk at `chunk` been aggregated?
    pub fn chunk_is_done(&self, chunk: u64) -> bool {
        self.chunk_done
            .get(chunk as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Global indices of chunks not yet aggregated, ascending — the
    /// work list for resuming after a reconfiguration.
    pub fn undone_chunks(&self) -> Vec<u64> {
        self.chunk_done
            .iter()
            .enumerate()
            .filter(|(_, &d)| !d)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Un-mark a chunk as aggregated, so a later [`Worker::resume`]
    /// re-streams it. Used when a reconfiguration's *frontier* (chunks
    /// aggregated at every survivor) is smaller than this worker's own
    /// done set: locally-done chunks outside the frontier must be
    /// re-aggregated under the new membership. The stale value stays in
    /// the buffer until the re-aggregated result overwrites it.
    ///
    /// [`Worker::resume`]: crate::worker::Worker::resume
    pub fn mark_undone(&mut self, chunk: u64) {
        if let Some(d) = self.chunk_done.get_mut(chunk as usize) {
            if *d {
                *d = false;
                self.done_chunks -= 1;
            }
        }
    }

    /// The quantization scaling factor in effect.
    pub fn scaling(&self) -> f64 {
        self.f
    }

    /// Re-scale the stream (live reconfiguration: when n shrinks, the
    /// Theorem 1 overflow bound admits a larger f). Applies to chunks
    /// quantized *and* dequantized from now on; results already
    /// installed keep the values produced under the old factor.
    pub fn set_scaling(&mut self, f: f64) -> Result<()> {
        if f <= 0.0 {
            return Err(Error::InvalidConfig("scaling factor must be > 0".into()));
        }
        if matches!(self.buf, StreamBuf::I32 { .. }) {
            return Err(Error::InvalidConfig(
                "native-i32 streams are not scaled".into(),
            ));
        }
        self.f = f;
        Ok(())
    }

    /// All chunks aggregated?
    pub fn is_complete(&self) -> bool {
        self.done_chunks == self.total_chunks()
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn mode(&self) -> NumericMode {
        self.mode
    }

    /// Quantize the chunk starting at element offset `off` for the
    /// wire. Offsets past the end are zero-padded (the stream length
    /// need not be a multiple of k).
    pub fn payload_chunk(&self, off: ElemOffset) -> Result<Payload> {
        let off = off as usize;
        if !off.is_multiple_of(self.k) {
            return Err(Error::OutOfRange("offset not chunk-aligned"));
        }
        if off >= self.total_elems() && self.total_elems() > 0 {
            return Err(Error::OutOfRange("offset past end of stream"));
        }
        match (&self.buf, self.mode) {
            (StreamBuf::F32 { data, .. }, NumericMode::Fixed32) => {
                let mut v = vec![0i32; self.k];
                let n = self.k.min(data.len().saturating_sub(off));
                quantize_chunk(&data[off..off + n], self.f, &mut v[..n]);
                Ok(Payload::I32(v))
            }
            (StreamBuf::F32 { data, .. }, NumericMode::Float16) => {
                let mut v = vec![0u16; self.k];
                for (i, slot) in v.iter_mut().enumerate() {
                    if let Some(&x) = data.get(off + i) {
                        *slot = f32_to_f16((x as f64 * self.f) as f32);
                    }
                }
                Ok(Payload::F16(v))
            }
            (StreamBuf::I32 { data, .. }, NumericMode::NativeInt32) => {
                let mut v = vec![0i32; self.k];
                let n = self.k.min(data.len().saturating_sub(off));
                v[..n].copy_from_slice(&data[off..off + n]);
                Ok(Payload::I32(v))
            }
            _ => Err(Error::InvalidConfig(
                "stream data type does not match numeric mode".into(),
            )),
        }
    }

    /// Install an aggregated chunk received from the switch.
    /// Idempotent: writing the same chunk twice counts once.
    pub fn write_result(&mut self, off: ElemOffset, payload: &Payload) -> Result<()> {
        let off = off as usize;
        if !off.is_multiple_of(self.k) {
            return Err(Error::OutOfRange("offset not chunk-aligned"));
        }
        let chunk = off / self.k;
        if chunk >= self.chunk_done.len() {
            return Err(Error::OutOfRange("offset past end of stream"));
        }
        if payload.len() != self.k {
            return Err(Error::OutOfRange("result element count != k"));
        }
        let total = self.total_elems();
        // Pad elements past the end of the stream are discarded.
        let n = self.k.min(total - off);
        match &mut self.buf {
            StreamBuf::F32 { result, .. } => match payload {
                Payload::I32(v) => {
                    dequantize_chunk(&v[..n], self.f, &mut result[off..off + n]);
                }
                Payload::F16(v) => {
                    for (r, &h) in result[off..off + n].iter_mut().zip(v) {
                        *r = (f16_to_f32(h) as f64 / self.f) as f32;
                    }
                }
            },
            StreamBuf::I32 { result, .. } => match payload {
                Payload::I32(v) => {
                    result[off..off + n].copy_from_slice(&v[..n]);
                }
                Payload::F16(_) => {
                    return Err(Error::InvalidConfig(
                        "f16 result for a native-i32 stream".into(),
                    ))
                }
            },
        }
        if !self.chunk_done[chunk] {
            self.chunk_done[chunk] = true;
            self.done_chunks += 1;
        }
        Ok(())
    }

    /// The aggregated float tensors, split back along the original
    /// tensor boundaries. `divide_by` performs the end-host division
    /// the switch cannot (pass `n` for an average, 1 for the raw sum).
    pub fn result_tensors_f32(&self, divide_by: usize) -> Result<Vec<Vec<f32>>> {
        if !self.is_complete() {
            return Err(Error::ProtocolViolation(
                "reading results before aggregation completed".into(),
            ));
        }
        let d = divide_by.max(1) as f32;
        match &self.buf {
            StreamBuf::F32 { result, .. } => Ok(self
                .bounds
                .iter()
                .map(|&(a, b)| result[a..b].iter().map(|&x| x / d).collect())
                .collect()),
            StreamBuf::I32 { .. } => Err(Error::InvalidConfig(
                "native-i32 stream has no f32 results".into(),
            )),
        }
    }

    /// The aggregated integer tensors (NativeInt32 mode).
    pub fn result_tensors_i32(&self) -> Result<Vec<Vec<i32>>> {
        if !self.is_complete() {
            return Err(Error::ProtocolViolation(
                "reading results before aggregation completed".into(),
            ));
        }
        match &self.buf {
            StreamBuf::I32 { result, .. } => Ok(self
                .bounds
                .iter()
                .map(|&(a, b)| result[a..b].to_vec())
                .collect()),
            StreamBuf::F32 { .. } => {
                Err(Error::InvalidConfig("f32 stream has no i32 results".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensors_concatenate_with_boundaries() {
        let s = TensorStream::from_f32(
            &[vec![1.0, 2.0, 3.0], vec![4.0], vec![5.0, 6.0]],
            NumericMode::Fixed32,
            100.0,
            4,
        )
        .unwrap();
        assert_eq!(s.total_elems(), 6);
        assert_eq!(s.total_chunks(), 2); // 6 elems, k=4 → 2 chunks
    }

    #[test]
    fn chunk_quantizes_and_pads() {
        let s =
            TensorStream::from_f32(&[vec![1.5, -2.25, 0.5]], NumericMode::Fixed32, 4.0, 4).unwrap();
        match s.payload_chunk(0).unwrap() {
            Payload::I32(v) => assert_eq!(v, vec![6, -9, 2, 0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn roundtrip_sum_and_average() {
        // Simulate 2 workers: each writes the "aggregate" of both.
        let t = vec![vec![1.0f32, 2.0], vec![3.0]];
        let f = 1000.0;
        let mut s = TensorStream::from_f32(&t, NumericMode::Fixed32, f, 2).unwrap();
        // aggregate = 2x each element (two identical workers)
        for chunk in 0..s.total_chunks() {
            let off = chunk * 2;
            let p = s.payload_chunk(off).unwrap();
            let doubled = match p {
                Payload::I32(v) => Payload::I32(v.iter().map(|x| x * 2).collect()),
                _ => unreachable!(),
            };
            s.write_result(off, &doubled).unwrap();
        }
        assert!(s.is_complete());
        let sum = s.result_tensors_f32(1).unwrap();
        assert!((sum[0][0] - 2.0).abs() < 1e-3);
        assert!((sum[1][0] - 6.0).abs() < 1e-3);
        let avg = s.result_tensors_f32(2).unwrap();
        assert!((avg[0][1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn f16_mode_roundtrip() {
        let t = vec![vec![0.5f32, -1.25, 2.0, 7.0]];
        let mut s = TensorStream::from_f32(&t, NumericMode::Float16, 8.0, 4).unwrap();
        let p = s.payload_chunk(0).unwrap();
        match &p {
            Payload::F16(v) => {
                assert_eq!(f16_to_f32(v[0]), 4.0); // 0.5 * 8
                assert_eq!(f16_to_f32(v[1]), -10.0);
            }
            other => panic!("{other:?}"),
        }
        s.write_result(0, &p).unwrap();
        let r = s.result_tensors_f32(1).unwrap();
        assert_eq!(r[0], vec![0.5, -1.25, 2.0, 7.0]);
    }

    #[test]
    fn native_i32_mode() {
        let mut s = TensorStream::from_i32(&[vec![1, 2, 3]], 2).unwrap();
        let p0 = s.payload_chunk(0).unwrap();
        assert_eq!(p0, Payload::I32(vec![1, 2]));
        let p1 = s.payload_chunk(2).unwrap();
        assert_eq!(p1, Payload::I32(vec![3, 0])); // padded
        s.write_result(0, &Payload::I32(vec![10, 20])).unwrap();
        s.write_result(2, &Payload::I32(vec![30, 99])).unwrap();
        let r = s.result_tensors_i32().unwrap();
        assert_eq!(r, vec![vec![10, 20, 30]]); // pad element dropped
    }

    #[test]
    fn write_result_is_idempotent() {
        let mut s =
            TensorStream::from_f32(&[vec![1.0, 1.0]], NumericMode::Fixed32, 10.0, 2).unwrap();
        let p = Payload::I32(vec![20, 20]);
        s.write_result(0, &p).unwrap();
        s.write_result(0, &p).unwrap();
        assert_eq!(s.done_chunks(), 1);
        assert!(s.is_complete());
    }

    #[test]
    fn undone_chunks_and_rescaling() {
        let mut s =
            TensorStream::from_f32(&[vec![1.0; 12]], NumericMode::Fixed32, 10.0, 4).unwrap();
        assert_eq!(s.undone_chunks(), vec![0, 1, 2]);
        s.write_result(4, &Payload::I32(vec![20; 4])).unwrap();
        assert_eq!(s.undone_chunks(), vec![0, 2]);
        assert!(s.chunk_is_done(1) && !s.chunk_is_done(0));
        s.mark_undone(1);
        assert_eq!(s.undone_chunks(), vec![0, 1, 2]);
        s.mark_undone(1); // idempotent
        s.mark_undone(99); // out of range: no-op
        assert_eq!(s.done_chunks(), 0);

        // Rescale: outgoing chunks now quantize under f = 100.
        assert_eq!(s.scaling(), 10.0);
        s.set_scaling(100.0).unwrap();
        match s.payload_chunk(0).unwrap() {
            Payload::I32(v) => assert_eq!(v, vec![100; 4]),
            other => panic!("{other:?}"),
        }
        assert!(s.set_scaling(0.0).is_err());
        let mut native = TensorStream::from_i32(&[vec![1]], 2).unwrap();
        assert!(native.set_scaling(2.0).is_err());
    }

    #[test]
    fn misuse_is_rejected() {
        let mut s = TensorStream::from_f32(&[vec![1.0; 8]], NumericMode::Fixed32, 10.0, 4).unwrap();
        assert!(s.payload_chunk(3).is_err()); // unaligned
        assert!(s.payload_chunk(100).is_err()); // past end
        assert!(s.write_result(3, &Payload::I32(vec![0; 4])).is_err());
        assert!(s.write_result(100, &Payload::I32(vec![0; 4])).is_err());
        assert!(s.write_result(0, &Payload::I32(vec![0; 2])).is_err()); // bad k
        assert!(s.result_tensors_f32(1).is_err()); // incomplete
        assert!(TensorStream::from_f32(&[vec![]], NumericMode::NativeInt32, 1.0, 4).is_err());
        assert!(TensorStream::from_f32(&[vec![]], NumericMode::Fixed32, 0.0, 4).is_err());
    }
}
