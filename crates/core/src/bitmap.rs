//! Worker-contribution bitmaps.
//!
//! Algorithm 3 keeps, per `(pool version, slot)`, a `seen` bitmask
//! recording which workers have already contributed to that slot so
//! duplicate (retransmitted) updates are ignored. The paper's P4
//! implementation packs these into wide registers; we mirror that with
//! a fixed four-word bitmap supporting up to 256 workers — the port
//! count of a Tofino at 25 Gbps ("up to 64 nodes at 100 Gbps or 256 at
//! 25 Gbps", §1).

/// Maximum workers a single aggregation pool supports.
pub const MAX_WORKERS: usize = 256;

/// A set of worker ids in `[0, 256)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerBitmap {
    words: [u64; 4],
}

impl WorkerBitmap {
    /// The empty set.
    pub const fn empty() -> Self {
        WorkerBitmap { words: [0; 4] }
    }

    /// The set {0, 1, …, n-1}.
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_WORKERS, "at most {MAX_WORKERS} workers");
        let mut bm = WorkerBitmap::empty();
        for w in 0..n {
            bm.set(w);
        }
        bm
    }

    /// Mark worker `w` as seen. Returns `true` if it was newly set.
    pub fn set(&mut self, w: usize) -> bool {
        assert!(w < MAX_WORKERS);
        let (word, bit) = (w / 64, w % 64);
        let was = self.words[word] & (1 << bit) != 0;
        self.words[word] |= 1 << bit;
        !was
    }

    /// Clear worker `w`. Returns `true` if it was previously set.
    pub fn clear(&mut self, w: usize) -> bool {
        assert!(w < MAX_WORKERS);
        let (word, bit) = (w / 64, w % 64);
        let was = self.words[word] & (1 << bit) != 0;
        self.words[word] &= !(1 << bit);
        was
    }

    /// Is worker `w` in the set?
    pub fn contains(&self, w: usize) -> bool {
        assert!(w < MAX_WORKERS);
        self.words[w / 64] & (1 << (w % 64)) != 0
    }

    /// Number of workers in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Remove every worker from the set.
    pub fn reset(&mut self) {
        self.words = [0; 4];
    }

    /// Iterate over set worker ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains() {
        let mut bm = WorkerBitmap::empty();
        assert!(bm.set(0));
        assert!(bm.set(63));
        assert!(bm.set(64));
        assert!(bm.set(255));
        assert!(!bm.set(0), "double-set reports already present");
        assert_eq!(bm.count(), 4);
        assert!(bm.contains(64));
        assert!(!bm.contains(1));
        assert!(bm.clear(64));
        assert!(!bm.clear(64));
        assert_eq!(bm.count(), 3);
    }

    #[test]
    fn full_and_iter() {
        let bm = WorkerBitmap::full(70);
        assert_eq!(bm.count(), 70);
        let ids: Vec<usize> = bm.iter().collect();
        assert_eq!(ids, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn reset_empties() {
        let mut bm = WorkerBitmap::full(100);
        bm.reset();
        assert_eq!(bm.count(), 0);
        assert_eq!(bm, WorkerBitmap::empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut bm = WorkerBitmap::empty();
        bm.set(256);
    }
}
