//! Error types for the SwitchML protocol crate.

use core::fmt;

/// Errors surfaced by the protocol state machines and codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A packet failed to parse (truncated, bad magic, bad version).
    Malformed(&'static str),
    /// The packet checksum did not match (corruption in flight).
    BadChecksum { expected: u32, actual: u32 },
    /// A field value is outside the range the configuration allows
    /// (e.g. slot index >= pool size, worker id >= n).
    OutOfRange(&'static str),
    /// The configuration itself is invalid or exceeds modeled switch
    /// resources (see `switch::pipeline`).
    InvalidConfig(String),
    /// Scaling factor would overflow 32-bit aggregation (Appendix C,
    /// Assumption 1/2 violated).
    Overflow(&'static str),
    /// The protocol reached a state the paper's invariants forbid —
    /// indicates a bug, surfaced loudly rather than silently corrupting
    /// gradients.
    ProtocolViolation(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Malformed(what) => write!(f, "malformed packet: {what}"),
            Error::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "bad checksum: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            Error::OutOfRange(what) => write!(f, "field out of range: {what}"),
            Error::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            Error::Overflow(what) => write!(f, "fixed-point overflow: {what}"),
            Error::ProtocolViolation(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
