//! # switchml-core
//!
//! A from-scratch implementation of the **SwitchML** in-network
//! aggregation protocol ("Scaling Distributed Machine Learning with
//! In-Network Aggregation", NSDI 2021): the switch-side and worker-side
//! state machines, the wire format, quantized integer aggregation, and
//! pool-size tuning.
//!
//! ## Architecture
//!
//! Everything protocol-shaped is **sans-IO**: state machines consume
//! decoded packets and timer expirations and return packets to send.
//! The same code is driven three ways in this workspace:
//!
//! * [`agg::run_inprocess`] — a virtual-clock harness with adversarial
//!   loss injection (correctness testing, and the simplest API);
//! * `switchml-netsim` — a timing-accurate discrete-event simulator
//!   (the evaluation substrate replacing the paper's testbed);
//! * `switchml-transport` — real threads over channels or UDP sockets.
//!
//! ## Module map
//!
//! | Paper section | Module |
//! |---|---|
//! | §3.3 Algorithm 1 (switch, lossless) | [`switch::basic`] |
//! | §3.5 Algorithm 3 (switch, loss recovery) | [`switch::reliable`] |
//! | §3.4 Algorithm 2 / §3.5 Algorithm 4 (worker) | [`worker::engine`] |
//! | Appendix B stream buffer manager | [`worker::stream`] |
//! | §3.6 pool sizing | [`config::tune_pool_size`] |
//! | §3.7 / Appendix C quantization | [`quant`] |
//! | Appendix B switch resource envelope | [`switch::pipeline`] |
//! | §6 multi-rack hierarchy | [`switch::hierarchy`] |
//! | Packet format & checksum | [`packet`], [`checksum`] |
//!
//! ## Quick start
//!
//! ```
//! use switchml_core::agg::allreduce;
//! use switchml_core::config::Protocol;
//!
//! // Two workers, each contributing one gradient tensor.
//! let updates = vec![
//!     vec![vec![1.0_f32, 2.0, 3.0]],
//!     vec![vec![10.0_f32, 20.0, 30.0]],
//! ];
//! let proto = Protocol { n_workers: 2, ..Protocol::default() };
//! let aggregated = allreduce(&updates, &proto).unwrap();
//! assert!((aggregated[0][0] - 11.0).abs() < 1e-3);
//! ```

pub mod agg;
pub mod bitmap;
pub mod checksum;
pub mod config;
pub mod error;
pub mod oracle;
pub mod packet;
pub mod quant;
pub mod simd;
pub mod switch;
pub mod worker;

pub use config::{tune_pool_size, NumericMode, Protocol};
pub use error::{Error, Result};
pub use packet::{Packet, PacketKind, Payload, PoolVersion, DEFAULT_K, MTU_K};

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::agg::{allreduce, allreduce_mean, run_inprocess, HarnessConfig, Hop};
    pub use crate::config::{tune_pool_size, NumericMode, Protocol, TimeNs};
    pub use crate::error::{Error, Result};
    pub use crate::packet::{Packet, PacketKind, Payload, PoolVersion, WorkerId};
    pub use crate::switch::basic::BasicSwitch;
    pub use crate::switch::pipeline::PipelineModel;
    pub use crate::switch::reliable::ReliableSwitch;
    pub use crate::switch::{SwitchAction, SwitchStats};
    pub use crate::worker::stream::TensorStream;
    pub use crate::worker::Worker;
}
