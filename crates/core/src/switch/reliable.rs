//! Algorithm 3 — switch logic with packet-loss recovery (§3.5).
//!
//! Extends Algorithm 1 with two pieces of state:
//!
//! * a per-(version, slot) **`seen` bitmap** of which workers already
//!   contributed, so duplicate (retransmitted) updates are ignored;
//! * a **shadow copy**: two complete pools used in alternating phases,
//!   so a result lost on the downward path can be retransmitted even
//!   after other workers have begun reusing the slot in the other
//!   pool. Self-clocking guarantees no worker lags more than one phase
//!   behind, so one shadow copy suffices.
//!
//! The first contribution of a phase *overwrites* the slot (Algorithm
//! 3 line 10) — resetting and releasing slots implicitly, without a
//! separate cleanup pass, which is what makes the switch dataplane
//! simple enough for a single ingress pipeline.

use super::{SwitchAction, SwitchStats, WireAction};
use crate::bitmap::WorkerBitmap;
use crate::config::Protocol;
use crate::error::{Error, Result};
use crate::packet::{
    encode_result_into, ElemOffset, Packet, PacketKind, PacketView, Payload, PoolVersion,
    ResultMeta, SlotIndex, WireElems, WorkerId,
};

/// Per-(version, slot) aggregation state.
#[derive(Debug, Clone)]
struct Slot {
    value: Vec<i32>,
    count: usize,
    seen: WorkerBitmap,
    /// Offset of the phase currently (or last) aggregated in this
    /// slot. Not part of the paper's switch state — a cheap software
    /// tripwire that turns worker bugs into loud protocol violations
    /// instead of silently corrupted gradients.
    off: ElemOffset,
}

/// Read-only view of one (version, slot) aggregation cell. Exposed so
/// external invariant oracles ([`crate::oracle`]) and the
/// `switchml-check` model checker can compare the dataplane state
/// against a reference model without widening any mutable surface.
#[derive(Debug, Clone, Copy)]
pub struct CellView<'a> {
    /// Aggregated values (the shadow copy after completion).
    pub value: &'a [i32],
    /// Contribution counter, wrapped modulo n (0 after completion).
    pub count: usize,
    /// Which workers contributed to the phase in this cell.
    pub seen: WorkerBitmap,
    /// Element offset of the phase aggregated in this cell.
    pub off: ElemOffset,
}

/// The loss-tolerant aggregation core (Algorithm 3).
#[derive(Debug, Clone)]
pub struct ReliableSwitch {
    n: usize,
    k: usize,
    wrapping: bool,
    epoch: u8,
    /// pools[version][slot]
    pools: [Vec<Slot>; 2],
    stats: SwitchStats,
}

impl ReliableSwitch {
    pub fn new(proto: &Protocol) -> Result<Self> {
        proto.validate()?;
        let mk = || {
            (0..proto.pool_size)
                .map(|_| Slot {
                    value: vec![0; proto.k],
                    count: 0,
                    seen: WorkerBitmap::empty(),
                    off: 0,
                })
                .collect::<Vec<_>>()
        };
        Ok(ReliableSwitch {
            n: proto.n_workers,
            k: proto.k,
            wrapping: proto.wrapping_add,
            epoch: 0,
            pools: [mk(), mk()],
            stats: SwitchStats::default(),
        })
    }

    pub fn pool_size(&self) -> usize {
        self.pools[0].len()
    }

    pub fn n_workers(&self) -> usize {
        self.n
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn wrapping(&self) -> bool {
        self.wrapping
    }

    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// The job generation this switch currently accepts (§5.4). Updates
    /// carrying any other epoch are counted-and-dropped at ingress.
    pub fn epoch(&self) -> u8 {
        self.epoch
    }

    /// Advance to a new job generation after a reconfiguration. Without
    /// this fence, a delayed update from the dead epoch could alias
    /// into a reused (version, slot) cell and be aggregated twice —
    /// the exact ABA hazard §3.5 excludes by bounding packet lifetime.
    pub fn set_epoch(&mut self, epoch: u8) {
        self.epoch = epoch;
    }

    /// Read-only view of the (version, slot) cell, for invariant
    /// oracles and state fingerprinting.
    ///
    /// # Panics
    /// If `idx >= pool_size()`.
    pub fn cell(&self, ver: PoolVersion, idx: usize) -> CellView<'_> {
        let slot = &self.pools[ver.index()][idx];
        CellView {
            value: &slot.value,
            count: slot.count,
            seen: slot.seen,
            off: slot.off,
        }
    }

    /// Algorithm 3's per-packet state transition, shared by the owned
    /// and borrowed ingress paths. On [`Verdict::Completed`] and
    /// [`Verdict::Cached`] the slot's `value` holds the aggregate the
    /// caller must emit (it stays in place as the shadow copy).
    fn step<E: WireElems>(
        &mut self,
        kind: PacketKind,
        wid: WorkerId,
        ver: PoolVersion,
        idx: SlotIndex,
        off: ElemOffset,
        elems: &E,
    ) -> Result<Verdict> {
        if kind != PacketKind::Update {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("result packet sent to switch"));
        }
        let idx = idx as usize;
        if idx >= self.pools[0].len() {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("slot index >= pool size"));
        }
        if elems.n_elems() != self.k {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("element count != k"));
        }
        let wid = wid as usize;
        if wid >= self.n {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("worker id >= n"));
        }
        self.stats.updates += 1;

        let ver = ver.index();
        let other = 1 - ver;

        if !self.pools[ver][idx].seen.contains(wid) {
            // First time this worker contributes to this phase.
            self.pools[ver][idx].seen.set(wid);
            self.pools[other][idx].seen.clear(wid);

            let slot = &mut self.pools[ver][idx];
            if slot.count == 0 {
                // First contribution of the phase overwrites (implicit
                // slot release of the phase before the shadow copy).
                elems.overwrite_into(&mut slot.value);
                slot.off = off;
            } else {
                if slot.off != off {
                    self.stats.rejected += 1;
                    return Err(Error::ProtocolViolation(format!(
                        "slot {idx} ver {ver}: worker {wid} sent off {} but phase off is {}",
                        off, slot.off
                    )));
                }
                elems.add_into(&mut slot.value, self.wrapping);
            }
            slot.count = (slot.count + 1) % self.n;

            if slot.count == 0 {
                // All n contributions in: emit the aggregate. The slot
                // retains the result as the shadow copy until the
                // other pool's phase completes.
                self.stats.completions += 1;
                Ok(Verdict::Completed)
            } else {
                Ok(Verdict::Drop)
            }
        } else {
            // Duplicate: this worker already contributed to this phase.
            self.stats.duplicates += 1;
            if self.pools[ver][idx].count == 0 {
                // Aggregation complete — the response must have been
                // lost; unicast the cached result back (Alg 3 line 21).
                self.stats.result_retx += 1;
                Ok(Verdict::Cached)
            } else {
                // Still aggregating; the original contribution is
                // already folded in. Ignore.
                Ok(Verdict::Drop)
            }
        }
    }

    /// Process one update packet, returning what to transmit.
    pub fn on_packet(&mut self, mut p: Packet) -> Result<SwitchAction> {
        if p.epoch != self.epoch {
            self.stats.stale_epoch += 1;
            return Ok(SwitchAction::Drop);
        }
        match self.step(p.kind, p.wid, p.ver, p.idx, p.off, &p.payload)? {
            Verdict::Drop => Ok(SwitchAction::Drop),
            Verdict::Completed => {
                let slot = &self.pools[p.ver.index()][p.idx as usize];
                p.payload = Payload::from_i32_as(&p.payload, &slot.value);
                p.kind = PacketKind::Result;
                Ok(SwitchAction::Multicast(p))
            }
            Verdict::Cached => {
                let slot = &self.pools[p.ver.index()][p.idx as usize];
                p.payload = Payload::from_i32_as(&p.payload, &slot.value);
                p.kind = PacketKind::Result;
                Ok(SwitchAction::Unicast(p.wid, p))
            }
        }
    }

    /// Process one update in place — the zero-allocation wire path.
    /// Folds the view's elements straight into the slot registers and,
    /// when there is a result to send, encodes it into `out`.
    pub fn on_view(&mut self, v: &PacketView<'_>, out: &mut Vec<u8>) -> Result<WireAction> {
        if v.epoch() != self.epoch {
            self.stats.stale_epoch += 1;
            return Ok(WireAction::Drop);
        }
        let verdict = self.step(v.kind(), v.wid(), v.ver(), v.idx(), v.off(), v)?;
        if verdict == Verdict::Drop {
            return Ok(WireAction::Drop);
        }
        let slot = &self.pools[v.ver().index()][v.idx() as usize];
        encode_result_into(
            ResultMeta {
                wid: v.wid(),
                ver: v.ver(),
                idx: v.idx(),
                off: v.off(),
                job: v.job(),
                epoch: v.epoch(),
                retransmission: v.retransmission(),
                f16: v.is_f16(),
            },
            &slot.value,
            out,
        );
        Ok(match verdict {
            Verdict::Completed => WireAction::Multicast,
            _ => WireAction::Unicast(v.wid()),
        })
    }
}

/// Outcome of [`ReliableSwitch::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Aggregated or ignored; nothing to send.
    Drop,
    /// Slot just completed: multicast its value.
    Completed,
    /// Duplicate after completion: unicast the cached value.
    Cached,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PoolVersion;

    fn proto(n: usize, k: usize, s: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k,
            pool_size: s,
            ..Protocol::default()
        }
    }

    fn pkt(wid: u16, ver: PoolVersion, idx: u32, off: u64, v: Vec<i32>) -> Packet {
        Packet {
            kind: PacketKind::Update,
            wid,
            ver,
            idx,
            off,
            job: 0,
            epoch: 0,
            retransmission: false,
            payload: Payload::I32(v),
        }
    }

    #[test]
    fn normal_completion() {
        let mut sw = ReliableSwitch::new(&proto(2, 2, 1)).unwrap();
        assert_eq!(
            sw.on_packet(pkt(0, PoolVersion::V0, 0, 0, vec![1, 2]))
                .unwrap(),
            SwitchAction::Drop
        );
        match sw
            .on_packet(pkt(1, PoolVersion::V0, 0, 0, vec![10, 20]))
            .unwrap()
        {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.payload, Payload::I32(vec![11, 22]));
                assert_eq!(p.kind, PacketKind::Result);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_before_completion_is_ignored() {
        // Upward-path loss scenario, Appendix A t4/t5: retransmissions
        // of already-aggregated updates are ignored, not double-added.
        let mut sw = ReliableSwitch::new(&proto(2, 1, 1)).unwrap();
        sw.on_packet(pkt(0, PoolVersion::V0, 0, 0, vec![5]))
            .unwrap();
        // Worker 0 times out and retransmits; must be ignored.
        assert_eq!(
            sw.on_packet(pkt(0, PoolVersion::V0, 0, 0, vec![5]))
                .unwrap(),
            SwitchAction::Drop
        );
        assert_eq!(sw.stats().duplicates, 1);
        match sw
            .on_packet(pkt(1, PoolVersion::V0, 0, 0, vec![7]))
            .unwrap()
        {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![12])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_after_completion_gets_unicast_result() {
        // Downward-path loss, Appendix A t7/t8: the worker that missed
        // the multicast retransmits and receives a unicast result.
        let mut sw = ReliableSwitch::new(&proto(2, 1, 1)).unwrap();
        sw.on_packet(pkt(0, PoolVersion::V0, 0, 0, vec![5]))
            .unwrap();
        sw.on_packet(pkt(1, PoolVersion::V0, 0, 0, vec![7]))
            .unwrap();
        match sw
            .on_packet(pkt(0, PoolVersion::V0, 0, 0, vec![5]))
            .unwrap()
        {
            SwitchAction::Unicast(wid, p) => {
                assert_eq!(wid, 0);
                assert_eq!(p.payload, Payload::I32(vec![12]));
                assert_eq!(p.kind, PacketKind::Result);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.stats().result_retx, 1);
    }

    #[test]
    fn shadow_copy_survives_slot_reuse() {
        // The laggard's result is retransmittable even after the other
        // workers advanced the slot to the next phase in pool 1.
        let mut sw = ReliableSwitch::new(&proto(3, 1, 1)).unwrap();
        let v0 = PoolVersion::V0;
        let v1 = PoolVersion::V1;
        // Phase 0 completes in pool 0 (assume worker 2's result copy is
        // lost on the downward path).
        sw.on_packet(pkt(0, v0, 0, 0, vec![1])).unwrap();
        sw.on_packet(pkt(1, v0, 0, 0, vec![2])).unwrap();
        sw.on_packet(pkt(2, v0, 0, 0, vec![3])).unwrap();
        // Workers 0 and 1 move on: phase 1 uses pool 1, same slot.
        sw.on_packet(pkt(0, v1, 0, 10, vec![10])).unwrap();
        sw.on_packet(pkt(1, v1, 0, 10, vec![20])).unwrap();
        // Worker 2 retransmits phase 0: pool 0 still holds the result.
        match sw.on_packet(pkt(2, v0, 0, 0, vec![3])).unwrap() {
            SwitchAction::Unicast(wid, p) => {
                assert_eq!(wid, 2);
                assert_eq!(p.payload, Payload::I32(vec![6]));
            }
            other => panic!("{other:?}"),
        }
        // Worker 2 then contributes to phase 1, completing it.
        match sw.on_packet(pkt(2, v1, 0, 10, vec![30])).unwrap() {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.payload, Payload::I32(vec![60]));
                assert_eq!(p.ver, v1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn first_contribution_overwrites_stale_shadow() {
        // After phases 0 and 1 complete, reusing pool 0 must not leak
        // phase-0 values into phase 2.
        let mut sw = ReliableSwitch::new(&proto(2, 1, 1)).unwrap();
        let (v0, v1) = (PoolVersion::V0, PoolVersion::V1);
        sw.on_packet(pkt(0, v0, 0, 0, vec![100])).unwrap();
        sw.on_packet(pkt(1, v0, 0, 0, vec![100])).unwrap(); // phase 0 done, pool0 = 200
        sw.on_packet(pkt(0, v1, 0, 5, vec![7])).unwrap();
        sw.on_packet(pkt(1, v1, 0, 5, vec![7])).unwrap(); // phase 1 done
        sw.on_packet(pkt(0, v0, 0, 9, vec![1])).unwrap(); // phase 2 overwrites
        match sw.on_packet(pkt(1, v0, 0, 9, vec![2])).unwrap() {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![3])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn seen_bit_cleared_in_other_pool() {
        // Contributing to version v clears the worker's bit in the
        // other pool, so phase parity alternation works indefinitely.
        let mut sw = ReliableSwitch::new(&proto(1, 1, 1)).unwrap();
        let (v0, v1) = (PoolVersion::V0, PoolVersion::V1);
        for phase in 0u64..6 {
            let ver = if phase % 2 == 0 { v0 } else { v1 };
            match sw
                .on_packet(pkt(0, ver, 0, phase, vec![phase as i32]))
                .unwrap()
            {
                SwitchAction::Multicast(p) => {
                    assert_eq!(p.payload, Payload::I32(vec![phase as i32]))
                }
                other => panic!("phase {phase}: {other:?}"),
            }
        }
        assert_eq!(sw.stats().completions, 6);
        assert_eq!(sw.stats().duplicates, 0);
    }

    #[test]
    fn offset_mismatch_is_a_protocol_violation() {
        let mut sw = ReliableSwitch::new(&proto(2, 1, 1)).unwrap();
        sw.on_packet(pkt(0, PoolVersion::V0, 0, 0, vec![1]))
            .unwrap();
        let err = sw
            .on_packet(pkt(1, PoolVersion::V0, 0, 999, vec![1]))
            .unwrap_err();
        assert!(matches!(err, Error::ProtocolViolation(_)));
    }

    #[test]
    fn works_with_single_worker() {
        // Degenerate n = 1: every packet completes immediately.
        let mut sw = ReliableSwitch::new(&proto(1, 2, 4)).unwrap();
        match sw
            .on_packet(pkt(0, PoolVersion::V0, 2, 8, vec![4, 5]))
            .unwrap()
        {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![4, 5])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn on_view_matches_on_packet() {
        // Drive the same loss scenario (completion, duplicate-ignore,
        // cached unicast) through both ingress paths and demand
        // byte-identical responses and identical stats.
        let mut owned = ReliableSwitch::new(&proto(2, 2, 1)).unwrap();
        let mut wire = ReliableSwitch::new(&proto(2, 2, 1)).unwrap();
        let mut scratch = Vec::new();
        let script = [
            pkt(0, PoolVersion::V0, 0, 0, vec![1, 2]),
            pkt(0, PoolVersion::V0, 0, 0, vec![1, 2]), // dup before completion
            pkt(1, PoolVersion::V0, 0, 0, vec![10, 20]), // completes
            pkt(0, PoolVersion::V0, 0, 0, vec![1, 2]), // dup after: unicast
            pkt(0, PoolVersion::V1, 0, 2, vec![3, 4]), // next phase
            pkt(1, PoolVersion::V1, 0, 2, vec![5, 6]), // completes
        ];
        for p in script {
            let bytes = p.encode();
            let view = PacketView::parse(&bytes).unwrap();
            let owned_action = owned.on_packet(p).unwrap();
            let wire_action = wire.on_view(&view, &mut scratch).unwrap();
            match (owned_action, wire_action) {
                (SwitchAction::Drop, WireAction::Drop) => {}
                (SwitchAction::Multicast(q), WireAction::Multicast) => {
                    assert_eq!(&scratch[..], &q.encode()[..]);
                }
                (SwitchAction::Unicast(w1, q), WireAction::Unicast(w2)) => {
                    assert_eq!(w1, w2);
                    assert_eq!(&scratch[..], &q.encode()[..]);
                }
                (a, b) => panic!("paths diverged: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(owned.stats(), wire.stats());
        assert_eq!(wire.stats().result_retx, 1);
        assert_eq!(wire.stats().completions, 2);
    }

    #[test]
    fn stale_epoch_update_is_counted_and_dropped() {
        // §5.4: a delayed update from epoch e targeting the same
        // (version, slot) after reconfiguration to e+1 must be fenced —
        // neither aggregated, nor answered with a cached result, nor
        // allowed to flip seen bits.
        let mut sw = ReliableSwitch::new(&proto(2, 1, 1)).unwrap();
        sw.on_packet(pkt(0, PoolVersion::V0, 0, 0, vec![5]))
            .unwrap();
        sw.set_epoch(1);
        let stale = pkt(1, PoolVersion::V0, 0, 0, vec![9]);
        assert_eq!(sw.on_packet(stale).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.stats().stale_epoch, 1);
        let cell = sw.cell(PoolVersion::V0, 0);
        assert_eq!(cell.value, &[5]);
        assert_eq!(cell.count, 1);
        assert!(!cell.seen.contains(1));
        // Wire path fences the same traffic identically.
        let mut scratch = Vec::new();
        let bytes = pkt(1, PoolVersion::V0, 0, 0, vec![9]).encode();
        let view = PacketView::parse(&bytes).unwrap();
        assert_eq!(sw.on_view(&view, &mut scratch).unwrap(), WireAction::Drop);
        assert_eq!(sw.stats().stale_epoch, 2);
        assert_eq!(sw.stats().updates, 1);
        assert_eq!(sw.stats().duplicates, 0);
    }

    #[test]
    fn current_epoch_update_passes_the_fence() {
        let mut sw = ReliableSwitch::new(&proto(2, 1, 1)).unwrap();
        sw.set_epoch(3);
        let mut p = pkt(0, PoolVersion::V0, 0, 0, vec![1]);
        p.epoch = 3;
        assert_eq!(sw.on_packet(p).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.stats().updates, 1);
        let mut q = pkt(1, PoolVersion::V0, 0, 0, vec![2]);
        q.epoch = 3;
        match sw.on_packet(q).unwrap() {
            SwitchAction::Multicast(r) => {
                assert_eq!(r.payload, Payload::I32(vec![3]));
                // Results are stamped with the epoch they completed in.
                assert_eq!(r.epoch, 3);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.stats().stale_epoch, 0);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut sw = ReliableSwitch::new(&proto(2, 2, 2)).unwrap();
        assert!(sw
            .on_packet(pkt(0, PoolVersion::V0, 7, 0, vec![1, 2]))
            .is_err());
        assert!(sw
            .on_packet(pkt(9, PoolVersion::V0, 0, 0, vec![1, 2]))
            .is_err());
        assert!(sw
            .on_packet(pkt(0, PoolVersion::V0, 0, 0, vec![1]))
            .is_err());
    }
}
