//! Algorithm 1 — switch logic without loss recovery.
//!
//! ```text
//! Initialize State:
//!   n = number of workers
//!   pool[s], count[s] := {0}
//! upon receive p(idx, off, vector)
//!   pool[p.idx] ← pool[p.idx] + p.vector
//!   count[p.idx]++
//!   if count[p.idx] = n then
//!     p.vector ← pool[p.idx]
//!     pool[p.idx] ← 0; count[p.idx] ← 0
//!     multicast p
//!   else
//!     drop p
//! ```
//!
//! Valid only on a lossless fabric ("a SwitchML instance running in a
//! lossless network such as Infiniband or lossless RoCE", §3.2).

use super::{SwitchAction, SwitchStats, WireAction};
use crate::config::Protocol;
use crate::error::{Error, Result};
use crate::packet::{
    encode_result_into, Packet, PacketKind, PacketView, Payload, ResultMeta, SlotIndex, WireElems,
    WorkerId,
};

/// The lossless-network aggregation core.
#[derive(Debug, Clone)]
pub struct BasicSwitch {
    n: usize,
    k: usize,
    wrapping: bool,
    epoch: u8,
    pool: Vec<Vec<i32>>,
    count: Vec<usize>,
    stats: SwitchStats,
}

impl BasicSwitch {
    pub fn new(proto: &Protocol) -> Result<Self> {
        proto.validate()?;
        Ok(BasicSwitch {
            n: proto.n_workers,
            k: proto.k,
            wrapping: proto.wrapping_add,
            epoch: 0,
            pool: vec![vec![0; proto.k]; proto.pool_size],
            count: vec![0; proto.pool_size],
            stats: SwitchStats::default(),
        })
    }

    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    pub fn n_workers(&self) -> usize {
        self.n
    }

    pub fn k(&self) -> usize {
        self.k
    }

    /// Read-only view of one slot's aggregator and counter, for
    /// invariant oracles and state fingerprinting.
    ///
    /// # Panics
    /// If `idx >= pool_size()`.
    pub fn slot(&self, idx: usize) -> (&[i32], usize) {
        (&self.pool[idx], self.count[idx])
    }

    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// The job generation this switch currently accepts (§5.4). Updates
    /// carrying any other epoch are counted-and-dropped at ingress.
    pub fn epoch(&self) -> u8 {
        self.epoch
    }

    /// Advance to a new job generation after a reconfiguration. In-flight
    /// traffic stamped with the old epoch can no longer reach the slots,
    /// which is what makes slot reuse across the reconfiguration safe
    /// (discharges §3.5's bounded-packet-lifetime assumption).
    pub fn set_epoch(&mut self, epoch: u8) {
        self.epoch = epoch;
    }

    /// Algorithm 1's per-packet state transition, shared by the owned
    /// and borrowed ingress paths. Folds `elems` into the slot; on the
    /// n-th contribution returns `true` with the aggregate left in
    /// `pool[idx]` — the caller emits it, then resets the slot via
    /// [`Self::release_slot`].
    fn step<E: WireElems>(
        &mut self,
        kind: PacketKind,
        wid: WorkerId,
        idx: SlotIndex,
        elems: &E,
    ) -> Result<bool> {
        if kind != PacketKind::Update {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("result packet sent to switch"));
        }
        let idx = idx as usize;
        if idx >= self.pool.len() {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("slot index >= pool size"));
        }
        if elems.n_elems() != self.k {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("element count != k"));
        }
        if (wid as usize) >= self.n {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("worker id >= n"));
        }
        self.stats.updates += 1;

        elems.add_into(&mut self.pool[idx], self.wrapping);
        self.count[idx] += 1;

        if self.count[idx] == self.n {
            self.count[idx] = 0;
            self.stats.completions += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Zero a completed slot once its aggregate has been emitted.
    fn release_slot(&mut self, idx: usize) {
        self.pool[idx].iter_mut().for_each(|x| *x = 0);
    }

    /// Process one update packet.
    pub fn on_packet(&mut self, mut p: Packet) -> Result<SwitchAction> {
        if p.epoch != self.epoch {
            self.stats.stale_epoch += 1;
            return Ok(SwitchAction::Drop);
        }
        if self.step(p.kind, p.wid, p.idx, &p.payload)? {
            // Rewrite the packet's vector with the aggregate, reset the
            // slot, and multicast.
            let idx = p.idx as usize;
            p.payload = Payload::from_i32_as(&p.payload, &self.pool[idx]);
            p.kind = PacketKind::Result;
            self.release_slot(idx);
            Ok(SwitchAction::Multicast(p))
        } else {
            Ok(SwitchAction::Drop)
        }
    }

    /// Process one update in place — the zero-allocation wire path.
    /// Aggregates the view's elements straight into the slot registers
    /// and, on completion, encodes the result packet into `out`.
    pub fn on_view(&mut self, v: &PacketView<'_>, out: &mut Vec<u8>) -> Result<WireAction> {
        if v.epoch() != self.epoch {
            self.stats.stale_epoch += 1;
            return Ok(WireAction::Drop);
        }
        if self.step(v.kind(), v.wid(), v.idx(), v)? {
            let idx = v.idx() as usize;
            encode_result_into(
                ResultMeta {
                    wid: v.wid(),
                    ver: v.ver(),
                    idx: v.idx(),
                    off: v.off(),
                    job: v.job(),
                    epoch: v.epoch(),
                    retransmission: v.retransmission(),
                    f16: v.is_f16(),
                },
                &self.pool[idx],
                out,
            );
            self.release_slot(idx);
            Ok(WireAction::Multicast)
        } else {
            Ok(WireAction::Drop)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PoolVersion;

    fn proto(n: usize, k: usize, s: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k,
            pool_size: s,
            ..Protocol::default()
        }
    }

    fn update(wid: u16, idx: u32, off: u64, v: Vec<i32>) -> Packet {
        Packet::update(wid, PoolVersion::V0, idx, off, v)
    }

    #[test]
    fn aggregates_and_multicasts_on_nth() {
        let mut sw = BasicSwitch::new(&proto(3, 4, 2)).unwrap();
        assert_eq!(
            sw.on_packet(update(0, 0, 0, vec![1, 2, 3, 4])).unwrap(),
            SwitchAction::Drop
        );
        assert_eq!(
            sw.on_packet(update(1, 0, 0, vec![10, 20, 30, 40])).unwrap(),
            SwitchAction::Drop
        );
        match sw
            .on_packet(update(2, 0, 0, vec![100, 200, 300, 400]))
            .unwrap()
        {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.payload, Payload::I32(vec![111, 222, 333, 444]));
                assert_eq!(p.kind, PacketKind::Result);
                assert_eq!(p.idx, 0);
            }
            other => panic!("expected multicast, got {other:?}"),
        }
        assert_eq!(sw.stats().completions, 1);
    }

    #[test]
    fn slot_resets_for_reuse() {
        let mut sw = BasicSwitch::new(&proto(2, 2, 1)).unwrap();
        sw.on_packet(update(0, 0, 0, vec![5, 5])).unwrap();
        sw.on_packet(update(1, 0, 0, vec![5, 5])).unwrap();
        // Second phase on the same slot starts from zero.
        sw.on_packet(update(0, 0, 4, vec![1, 1])).unwrap();
        match sw.on_packet(update(1, 0, 4, vec![2, 2])).unwrap() {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![3, 3])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slots_are_independent() {
        let mut sw = BasicSwitch::new(&proto(2, 1, 4)).unwrap();
        sw.on_packet(update(0, 0, 0, vec![1])).unwrap();
        sw.on_packet(update(0, 3, 3, vec![7])).unwrap();
        match sw.on_packet(update(1, 3, 3, vec![1])).unwrap() {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.idx, 3);
                assert_eq!(p.payload, Payload::I32(vec![8]));
            }
            other => panic!("{other:?}"),
        }
        // Slot 0 still waiting on worker 1.
        match sw.on_packet(update(1, 0, 0, vec![2])).unwrap() {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![3])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_does_not_matter() {
        // Addition is commutative/associative: any arrival order gives
        // the same aggregate.
        let orders: [[u16; 3]; 3] = [[0, 1, 2], [2, 0, 1], [1, 2, 0]];
        for order in orders {
            let mut sw = BasicSwitch::new(&proto(3, 1, 1)).unwrap();
            let mut result = None;
            for wid in order {
                let v = vec![(wid as i32 + 1) * 10];
                if let SwitchAction::Multicast(p) = sw.on_packet(update(wid, 0, 0, v)).unwrap() {
                    result = Some(p.payload);
                }
            }
            assert_eq!(result, Some(Payload::I32(vec![60])));
        }
    }

    #[test]
    fn rejects_bad_fields() {
        let mut sw = BasicSwitch::new(&proto(2, 2, 2)).unwrap();
        assert!(sw.on_packet(update(0, 9, 0, vec![1, 2])).is_err()); // bad slot
        assert!(sw.on_packet(update(5, 0, 0, vec![1, 2])).is_err()); // bad wid
        assert!(sw.on_packet(update(0, 0, 0, vec![1])).is_err()); // bad k
        assert_eq!(sw.stats().rejected, 3);
    }

    #[test]
    fn on_view_matches_on_packet() {
        // The borrowed wire path and the owned path are the same state
        // machine: identical actions, identical result bytes.
        let mut owned = BasicSwitch::new(&proto(3, 4, 2)).unwrap();
        let mut wire = BasicSwitch::new(&proto(3, 4, 2)).unwrap();
        let mut scratch = Vec::new();
        for wid in 0..3u16 {
            let p = update(wid, 1, 8, vec![wid as i32, 1, 2, 3]);
            let bytes = p.encode();
            let view = PacketView::parse(&bytes).unwrap();
            let owned_action = owned.on_packet(p).unwrap();
            let wire_action = wire.on_view(&view, &mut scratch).unwrap();
            match (owned_action, wire_action) {
                (SwitchAction::Drop, WireAction::Drop) => {}
                (SwitchAction::Multicast(q), WireAction::Multicast) => {
                    assert_eq!(&scratch[..], &q.encode()[..]);
                }
                (a, b) => panic!("paths diverged: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(owned.stats(), wire.stats());
        // Slot was released on both paths: a second phase aggregates
        // from zero.
        for wid in 0..3u16 {
            let p = update(wid, 1, 16, vec![1, 1, 1, 1]);
            let bytes = p.encode();
            let view = PacketView::parse(&bytes).unwrap();
            owned.on_packet(p).unwrap();
            wire.on_view(&view, &mut scratch).unwrap();
        }
        assert_eq!(
            Packet::decode(&scratch).unwrap().payload,
            Payload::I32(vec![3, 3, 3, 3])
        );
    }

    #[test]
    fn stale_epoch_update_is_counted_and_dropped() {
        // A delayed update stamped with epoch e, arriving after the
        // switch has been reconfigured to e+1, must not touch the slot —
        // same slot/version or not (§5.4 fence).
        let mut sw = BasicSwitch::new(&proto(2, 2, 2)).unwrap();
        sw.on_packet(update(0, 0, 0, vec![1, 1])).unwrap();
        sw.set_epoch(1);
        // The laggard from epoch 0 targets the same slot.
        let stale = update(1, 0, 0, vec![9, 9]);
        assert_eq!(stale.epoch, 0);
        assert_eq!(sw.on_packet(stale).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.stats().stale_epoch, 1);
        // The slot still holds only worker 0's epoch-0 contribution;
        // completing it at the new epoch aggregates from that state
        // untouched by the laggard.
        let (slot, count) = sw.slot(0);
        assert_eq!((slot, count), (&[1, 1][..], 1));
        // The wire path fences identically.
        let mut scratch = Vec::new();
        let bytes = update(1, 1, 8, vec![3, 3]).encode();
        let view = PacketView::parse(&bytes).unwrap();
        assert_eq!(sw.on_view(&view, &mut scratch).unwrap(), WireAction::Drop);
        assert_eq!(sw.stats().stale_epoch, 2);
        assert_eq!(sw.stats().updates, 1);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut sw = BasicSwitch::new(&proto(2, 1, 1)).unwrap();
        sw.on_packet(update(0, 0, 0, vec![i32::MAX])).unwrap();
        match sw.on_packet(update(1, 0, 0, vec![1])).unwrap() {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![i32::MAX])),
            other => panic!("{other:?}"),
        }
    }
}
