//! Algorithm 1 — switch logic without loss recovery.
//!
//! ```text
//! Initialize State:
//!   n = number of workers
//!   pool[s], count[s] := {0}
//! upon receive p(idx, off, vector)
//!   pool[p.idx] ← pool[p.idx] + p.vector
//!   count[p.idx]++
//!   if count[p.idx] = n then
//!     p.vector ← pool[p.idx]
//!     pool[p.idx] ← 0; count[p.idx] ← 0
//!     multicast p
//!   else
//!     drop p
//! ```
//!
//! Valid only on a lossless fabric ("a SwitchML instance running in a
//! lossless network such as Infiniband or lossless RoCE", §3.2).

use super::{SwitchAction, SwitchStats};
use crate::config::Protocol;
use crate::error::{Error, Result};
use crate::packet::{Packet, PacketKind, Payload};
use crate::quant::{saturating_add_into, wrapping_add_into};

/// The lossless-network aggregation core.
#[derive(Debug)]
pub struct BasicSwitch {
    n: usize,
    k: usize,
    wrapping: bool,
    pool: Vec<Vec<i32>>,
    count: Vec<usize>,
    stats: SwitchStats,
}

impl BasicSwitch {
    pub fn new(proto: &Protocol) -> Result<Self> {
        proto.validate()?;
        Ok(BasicSwitch {
            n: proto.n_workers,
            k: proto.k,
            wrapping: proto.wrapping_add,
            pool: vec![vec![0; proto.k]; proto.pool_size],
            count: vec![0; proto.pool_size],
            stats: SwitchStats::default(),
        })
    }

    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Process one update packet.
    pub fn on_packet(&mut self, mut p: Packet) -> Result<SwitchAction> {
        if p.kind != PacketKind::Update {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("result packet sent to switch"));
        }
        let idx = p.idx as usize;
        if idx >= self.pool.len() {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("slot index >= pool size"));
        }
        if p.k() != self.k {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("element count != k"));
        }
        if (p.wid as usize) >= self.n {
            self.stats.rejected += 1;
            return Err(Error::OutOfRange("worker id >= n"));
        }
        self.stats.updates += 1;

        let vec = p.payload.to_i32();
        if self.wrapping {
            wrapping_add_into(&mut self.pool[idx], &vec);
        } else {
            saturating_add_into(&mut self.pool[idx], &vec);
        }
        self.count[idx] += 1;

        if self.count[idx] == self.n {
            // Rewrite the packet's vector with the aggregate, reset the
            // slot, and multicast.
            p.payload = Payload::from_i32_as(&p.payload, &self.pool[idx]);
            p.kind = PacketKind::Result;
            self.pool[idx].iter_mut().for_each(|x| *x = 0);
            self.count[idx] = 0;
            self.stats.completions += 1;
            Ok(SwitchAction::Multicast(p))
        } else {
            Ok(SwitchAction::Drop)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PoolVersion;

    fn proto(n: usize, k: usize, s: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k,
            pool_size: s,
            ..Protocol::default()
        }
    }

    fn update(wid: u16, idx: u32, off: u64, v: Vec<i32>) -> Packet {
        Packet::update(wid, PoolVersion::V0, idx, off, v)
    }

    #[test]
    fn aggregates_and_multicasts_on_nth() {
        let mut sw = BasicSwitch::new(&proto(3, 4, 2)).unwrap();
        assert_eq!(
            sw.on_packet(update(0, 0, 0, vec![1, 2, 3, 4])).unwrap(),
            SwitchAction::Drop
        );
        assert_eq!(
            sw.on_packet(update(1, 0, 0, vec![10, 20, 30, 40])).unwrap(),
            SwitchAction::Drop
        );
        match sw
            .on_packet(update(2, 0, 0, vec![100, 200, 300, 400]))
            .unwrap()
        {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.payload, Payload::I32(vec![111, 222, 333, 444]));
                assert_eq!(p.kind, PacketKind::Result);
                assert_eq!(p.idx, 0);
            }
            other => panic!("expected multicast, got {other:?}"),
        }
        assert_eq!(sw.stats().completions, 1);
    }

    #[test]
    fn slot_resets_for_reuse() {
        let mut sw = BasicSwitch::new(&proto(2, 2, 1)).unwrap();
        sw.on_packet(update(0, 0, 0, vec![5, 5])).unwrap();
        sw.on_packet(update(1, 0, 0, vec![5, 5])).unwrap();
        // Second phase on the same slot starts from zero.
        sw.on_packet(update(0, 0, 4, vec![1, 1])).unwrap();
        match sw.on_packet(update(1, 0, 4, vec![2, 2])).unwrap() {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![3, 3])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slots_are_independent() {
        let mut sw = BasicSwitch::new(&proto(2, 1, 4)).unwrap();
        sw.on_packet(update(0, 0, 0, vec![1])).unwrap();
        sw.on_packet(update(0, 3, 3, vec![7])).unwrap();
        match sw.on_packet(update(1, 3, 3, vec![1])).unwrap() {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.idx, 3);
                assert_eq!(p.payload, Payload::I32(vec![8]));
            }
            other => panic!("{other:?}"),
        }
        // Slot 0 still waiting on worker 1.
        match sw.on_packet(update(1, 0, 0, vec![2])).unwrap() {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![3])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_does_not_matter() {
        // Addition is commutative/associative: any arrival order gives
        // the same aggregate.
        let orders: [[u16; 3]; 3] = [[0, 1, 2], [2, 0, 1], [1, 2, 0]];
        for order in orders {
            let mut sw = BasicSwitch::new(&proto(3, 1, 1)).unwrap();
            let mut result = None;
            for wid in order {
                let v = vec![(wid as i32 + 1) * 10];
                if let SwitchAction::Multicast(p) = sw.on_packet(update(wid, 0, 0, v)).unwrap() {
                    result = Some(p.payload);
                }
            }
            assert_eq!(result, Some(Payload::I32(vec![60])));
        }
    }

    #[test]
    fn rejects_bad_fields() {
        let mut sw = BasicSwitch::new(&proto(2, 2, 2)).unwrap();
        assert!(sw.on_packet(update(0, 9, 0, vec![1, 2])).is_err()); // bad slot
        assert!(sw.on_packet(update(5, 0, 0, vec![1, 2])).is_err()); // bad wid
        assert!(sw.on_packet(update(0, 0, 0, vec![1])).is_err()); // bad k
        assert_eq!(sw.stats().rejected, 3);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut sw = BasicSwitch::new(&proto(2, 1, 1)).unwrap();
        sw.on_packet(update(0, 0, 0, vec![i32::MAX])).unwrap();
        match sw.on_packet(update(1, 0, 0, vec![1])).unwrap() {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![i32::MAX])),
            other => panic!("{other:?}"),
        }
    }
}
