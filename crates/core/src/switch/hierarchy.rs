//! Hierarchical (multi-rack) aggregation — §6 "Scaling beyond a rack".
//!
//! Switches compose into a tree: a layer-i switch aggregates updates
//! from its `d` downstream ports and forwards the *partial aggregate*
//! upstream as if it were a single worker of its parent; the root
//! completes the aggregation and multicasts downward, and each
//! intermediate switch re-multicasts to its children.
//!
//! Loss recovery composes exactly as the paper argues: a worker
//! retransmission that reaches a switch which already aggregated that
//! packet is recognized via the `seen` bitmap; if the final result is
//! not yet known the switch re-forwards its partial aggregate upward,
//! "so that the switch affected by the loss is always reached", and if
//! it is known (cached from the parent) the switch answers directly.

use super::reliable::ReliableSwitch;
use super::{SwitchAction, SwitchStats};
use crate::config::Protocol;
use crate::error::Result;
use crate::packet::{ElemOffset, Packet, PacketKind, Payload, WireElems, WorkerId};

/// Position of a switch in the aggregation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Completes aggregations and originates result multicasts.
    Root,
    /// Aggregates a subtree and appears to its parent as worker
    /// `upstream_wid`.
    Intermediate { upstream_wid: WorkerId },
}

/// Actions a hierarchical switch asks its embedding to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum HierAction {
    /// Forward a (partial-aggregate) update packet to the parent.
    SendUp(Packet),
    /// Broadcast a result packet to every downstream child.
    MulticastDown(Packet),
    /// Send a result to one downstream child.
    UnicastDown(WorkerId, Packet),
}

#[derive(Debug, Clone)]
struct CachedResult {
    off: ElemOffset,
    values: Vec<i32>,
}

/// A switch in a multi-rack aggregation tree.
#[derive(Debug)]
pub struct HierarchicalSwitch {
    inner: ReliableSwitch,
    role: Role,
    /// Final results cached from the parent, per (version, slot), so
    /// children's retransmissions can be served locally.
    results: [Vec<Option<CachedResult>>; 2],
}

impl HierarchicalSwitch {
    /// `proto.n_workers` must be the number of *direct children*
    /// (workers or child switches) of this switch.
    pub fn new(proto: &Protocol, role: Role) -> Result<Self> {
        let inner = ReliableSwitch::new(proto)?;
        let s = proto.pool_size;
        Ok(HierarchicalSwitch {
            inner,
            role,
            results: [vec![None; s], vec![None; s]],
        })
    }

    pub fn role(&self) -> Role {
        self.role
    }

    pub fn stats(&self) -> SwitchStats {
        self.inner.stats()
    }

    /// Handle an update packet arriving from a downstream child.
    pub fn on_update_from_below(&mut self, pkt: Packet) -> Result<Vec<HierAction>> {
        let (ver, idx, off) = (pkt.ver, pkt.idx as usize, pkt.off);
        match self.inner.on_packet(pkt)? {
            SwitchAction::Multicast(result) => match self.role {
                Role::Root => Ok(vec![HierAction::MulticastDown(result)]),
                Role::Intermediate { upstream_wid } => {
                    // A fresh phase completed here: any cached final
                    // result for this (ver, slot) belongs to the phase
                    // two iterations ago and is now dead.
                    self.results[ver.index()][idx] = None;
                    let up = Packet {
                        kind: PacketKind::Update,
                        wid: upstream_wid,
                        retransmission: false,
                        ..result
                    };
                    Ok(vec![HierAction::SendUp(up)])
                }
            },
            SwitchAction::Unicast(wid, partial) => match self.role {
                // Root already holds the final result in its shadow
                // copy: answer the child directly.
                Role::Root => Ok(vec![HierAction::UnicastDown(wid, partial)]),
                Role::Intermediate { upstream_wid } => {
                    if let Some(cached) = &self.results[ver.index()][idx] {
                        if cached.off == off {
                            // Final result known: serve it downward.
                            let down = Packet {
                                kind: PacketKind::Result,
                                payload: Payload::from_i32_as(&partial.payload, &cached.values),
                                ..partial
                            };
                            return Ok(vec![HierAction::UnicastDown(wid, down)]);
                        }
                    }
                    // Final not yet known: re-forward our partial
                    // aggregate upstream (it may have been lost).
                    let up = Packet {
                        kind: PacketKind::Update,
                        wid: upstream_wid,
                        retransmission: true,
                        ..partial
                    };
                    Ok(vec![HierAction::SendUp(up)])
                }
            },
            SwitchAction::Drop => Ok(vec![]),
        }
    }

    /// Handle a result packet arriving from the parent (intermediate
    /// switches only).
    pub fn on_result_from_above(&mut self, pkt: Packet) -> Result<Vec<HierAction>> {
        debug_assert!(
            matches!(self.role, Role::Intermediate { .. }),
            "root has no parent"
        );
        let idx = pkt.idx as usize;
        // Reuse the cache entry's allocation across phases: this runs
        // once per result per slot, steady-state, and the vector is
        // always exactly k elements.
        match &mut self.results[pkt.ver.index()][idx] {
            Some(cached) => {
                cached.off = pkt.off;
                pkt.payload.to_i32_into(&mut cached.values);
            }
            entry @ None => {
                *entry = Some(CachedResult {
                    off: pkt.off,
                    values: pkt.payload.to_i32(),
                });
            }
        }
        Ok(vec![HierAction::MulticastDown(pkt)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PoolVersion;

    fn proto(n: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 1,
            pool_size: 2,
            ..Protocol::default()
        }
    }

    fn upd(wid: u16, ver: PoolVersion, idx: u32, off: u64, v: i32) -> Packet {
        Packet {
            kind: PacketKind::Update,
            wid,
            ver,
            idx,
            off,
            job: 0,
            epoch: 0,
            retransmission: false,
            payload: Payload::I32(vec![v]),
        }
    }

    /// Drive a full 2-rack aggregation by hand: rack switches with 2
    /// workers each, one root with 2 children.
    #[test]
    fn two_rack_end_to_end() {
        let mut rack0 =
            HierarchicalSwitch::new(&proto(2), Role::Intermediate { upstream_wid: 0 }).unwrap();
        let mut rack1 =
            HierarchicalSwitch::new(&proto(2), Role::Intermediate { upstream_wid: 1 }).unwrap();
        let mut root = HierarchicalSwitch::new(&proto(2), Role::Root).unwrap();
        let v0 = PoolVersion::V0;

        // Rack 0's workers contribute 1 and 2.
        assert!(rack0
            .on_update_from_below(upd(0, v0, 0, 0, 1))
            .unwrap()
            .is_empty());
        let acts = rack0.on_update_from_below(upd(1, v0, 0, 0, 2)).unwrap();
        let up0 = match &acts[..] {
            [HierAction::SendUp(p)] => p.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(up0.payload, Payload::I32(vec![3]));
        assert_eq!(up0.wid, 0); // rack 0 poses as worker 0 of the root

        // Rack 1's workers contribute 10 and 20.
        assert!(rack1
            .on_update_from_below(upd(0, v0, 0, 0, 10))
            .unwrap()
            .is_empty());
        let acts = rack1.on_update_from_below(upd(1, v0, 0, 0, 20)).unwrap();
        let up1 = match &acts[..] {
            [HierAction::SendUp(p)] => p.clone(),
            other => panic!("{other:?}"),
        };

        // Root aggregates the partials.
        assert!(root.on_update_from_below(up0).unwrap().is_empty());
        let acts = root.on_update_from_below(up1).unwrap();
        let down = match &acts[..] {
            [HierAction::MulticastDown(p)] => p.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(down.payload, Payload::I32(vec![33]));
        assert_eq!(down.kind, PacketKind::Result);

        // Racks re-multicast to their workers.
        let acts = rack0.on_result_from_above(down.clone()).unwrap();
        assert!(
            matches!(&acts[..], [HierAction::MulticastDown(p)] if p.payload == Payload::I32(vec![33]))
        );
        let acts = rack1.on_result_from_above(down).unwrap();
        assert!(matches!(&acts[..], [HierAction::MulticastDown(_)]));
    }

    #[test]
    fn child_retx_before_final_triggers_upward_retx() {
        let mut rack =
            HierarchicalSwitch::new(&proto(2), Role::Intermediate { upstream_wid: 3 }).unwrap();
        let v0 = PoolVersion::V0;
        rack.on_update_from_below(upd(0, v0, 0, 0, 1)).unwrap();
        rack.on_update_from_below(upd(1, v0, 0, 0, 2)).unwrap(); // partial sent up (lost, say)
                                                                 // Worker 0 times out and retransmits; rack has no final yet →
                                                                 // it must re-forward the partial upward.
        let acts = rack.on_update_from_below(upd(0, v0, 0, 0, 1)).unwrap();
        match &acts[..] {
            [HierAction::SendUp(p)] => {
                assert_eq!(p.payload, Payload::I32(vec![3]));
                assert_eq!(p.wid, 3);
                assert!(p.retransmission);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn child_retx_after_final_served_from_cache() {
        let mut rack =
            HierarchicalSwitch::new(&proto(2), Role::Intermediate { upstream_wid: 0 }).unwrap();
        let v0 = PoolVersion::V0;
        rack.on_update_from_below(upd(0, v0, 0, 0, 1)).unwrap();
        rack.on_update_from_below(upd(1, v0, 0, 0, 2)).unwrap();
        // Final arrives from the parent.
        let final_pkt = Packet {
            kind: PacketKind::Result,
            wid: 0,
            ver: v0,
            idx: 0,
            off: 0,
            job: 0,
            epoch: 0,
            retransmission: false,
            payload: Payload::I32(vec![33]),
        };
        rack.on_result_from_above(final_pkt).unwrap();
        // Worker 1 missed the downward multicast and retransmits.
        let acts = rack.on_update_from_below(upd(1, v0, 0, 0, 2)).unwrap();
        match &acts[..] {
            [HierAction::UnicastDown(wid, p)] => {
                assert_eq!(*wid, 1);
                assert_eq!(p.payload, Payload::I32(vec![33]));
                assert_eq!(p.kind, PacketKind::Result);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn root_serves_retx_from_shadow() {
        let mut root = HierarchicalSwitch::new(&proto(2), Role::Root).unwrap();
        let v0 = PoolVersion::V0;
        root.on_update_from_below(upd(0, v0, 0, 0, 5)).unwrap();
        root.on_update_from_below(upd(1, v0, 0, 0, 6)).unwrap();
        let acts = root.on_update_from_below(upd(0, v0, 0, 0, 5)).unwrap();
        match &acts[..] {
            [HierAction::UnicastDown(0, p)] => assert_eq!(p.payload, Payload::I32(vec![11])),
            other => panic!("{other:?}"),
        }
    }
}
