//! Switch-side aggregation (§3.3, §3.5, Appendix B).
//!
//! Two state machines, exactly mirroring the paper's pseudocode:
//!
//! * [`basic::BasicSwitch`] — Algorithm 1, the lossless-network core
//!   primitive (a pool of integer aggregators with per-slot counters).
//! * [`reliable::ReliableSwitch`] — Algorithm 3, adding the two-pool
//!   shadow-copy scheme and per-worker `seen` bitmaps for packet-loss
//!   recovery.
//!
//! Both are sans-IO: they consume decoded [`crate::packet::Packet`]s
//! and return [`SwitchAction`]s; embedding layers (the simulator node,
//! the threaded transports) move bytes.
//!
//! [`pipeline`] models the Tofino resource envelope the paper's P4
//! program fits in, and [`hierarchy`] composes switches into the
//! multi-rack tree of §6.

pub mod basic;
pub mod hierarchy;
pub mod multijob;
pub mod pipeline;
pub mod reliable;

use crate::packet::{Packet, WorkerId};

/// What the switch does in response to one received packet.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchAction {
    /// Slot completed: broadcast the aggregated result to every worker
    /// (the traffic manager duplicates the packet, Appendix B).
    Multicast(Packet),
    /// A retransmission arrived for an already-completed slot: unicast
    /// the cached result to just that worker (Algorithm 3, line 21).
    Unicast(WorkerId, Packet),
    /// Aggregated (or ignored as duplicate); nothing to send.
    Drop,
}

/// What the switch does in response to one received packet on the
/// zero-allocation wire path ([`basic::BasicSwitch::on_view`],
/// [`reliable::ReliableSwitch::on_view`]). Unlike [`SwitchAction`] the
/// response packet is not carried here — it is already encoded into
/// the caller's scratch buffer, ready to put on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAction {
    /// The scratch buffer holds a result packet to broadcast to every
    /// worker.
    Multicast,
    /// The scratch buffer holds a cached result to unicast to this
    /// worker (Algorithm 3, line 21).
    Unicast(WorkerId),
    /// Aggregated (or ignored as duplicate); scratch untouched.
    Drop,
}

/// Counters exposed by both switch variants, for tests and the
/// evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Update packets processed (after decode).
    pub updates: u64,
    /// Updates ignored as duplicates (seen-bitmap hit).
    pub duplicates: u64,
    /// Completed aggregations (multicasts emitted).
    pub completions: u64,
    /// Unicast result retransmissions served.
    pub result_retx: u64,
    /// Packets rejected for malformed fields (bad slot, bad wid, bad
    /// element count).
    pub rejected: u64,
    /// Updates counted-and-dropped because their job generation did
    /// not match the switch's (epoch fence, §5.4): traffic from before
    /// a reconfiguration that must never be aggregated.
    pub stale_epoch: u64,
}

impl SwitchStats {
    /// Fold another switch's counters into this one (shards of a
    /// partitioned pool, or successive pools of one job's epochs).
    pub fn merge(&mut self, other: SwitchStats) {
        self.updates += other.updates;
        self.duplicates += other.duplicates;
        self.completions += other.completions;
        self.result_retx += other.result_retx;
        self.rejected += other.rejected;
        self.stale_epoch += other.stale_epoch;
    }
}
