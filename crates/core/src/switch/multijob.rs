//! Multi-job (tenancy) support — §6 "Multi-job (tenancy)".
//!
//! "Every job requires a separate pool of aggregators to ensure
//! correctness … an admission mechanism would be needed to control the
//! assignment of jobs to pools." This module is that admission
//! mechanism plus the per-job pool demultiplexer: packets carry a job
//! id, and each admitted job gets its own [`ReliableSwitch`] pool,
//! bounded by the modeled switch SRAM budget.

use super::pipeline::PipelineModel;
use super::reliable::ReliableSwitch;
use super::{SwitchAction, SwitchStats};
use crate::config::Protocol;
use crate::error::{Error, Result};
use crate::packet::Packet;
use std::collections::HashMap;

/// One admitted job: its aggregation pool, the configuration it was
/// admitted under, and the SRAM cost recorded at admission time.
#[derive(Debug, Clone)]
struct JobEntry {
    switch: ReliableSwitch,
    proto: Protocol,
    /// Register bytes charged at `admit`; released verbatim at `evict`
    /// so accounting can never drift from a caller-supplied proto.
    committed: usize,
}

/// A switch dataplane hosting several independent aggregation jobs.
#[derive(Debug, Clone)]
pub struct MultiJobSwitch {
    pipeline: PipelineModel,
    jobs: HashMap<u8, JobEntry>,
    /// Register bytes already committed to admitted jobs.
    committed_bytes: usize,
}

impl MultiJobSwitch {
    pub fn new(pipeline: PipelineModel) -> Self {
        MultiJobSwitch {
            pipeline,
            jobs: HashMap::new(),
            committed_bytes: 0,
        }
    }

    /// Admit a job: validates the configuration against the pipeline
    /// model *including* the pools already committed to other jobs.
    pub fn admit(&mut self, job: u8, proto: &Protocol) -> Result<()> {
        if self.jobs.contains_key(&job) {
            return Err(Error::InvalidConfig(format!("job {job} already admitted")));
        }
        let report = self.pipeline.validate(proto)?;
        let needed = report.pool_bytes + report.bookkeeping_bytes;
        if self.committed_bytes + needed > self.pipeline.register_sram_bytes {
            return Err(Error::InvalidConfig(format!(
                "admitting job {job} needs {needed} B but only {} B of register SRAM remain",
                self.pipeline.register_sram_bytes - self.committed_bytes
            )));
        }
        self.jobs.insert(
            job,
            JobEntry {
                switch: ReliableSwitch::new(proto)?,
                proto: proto.clone(),
                committed: needed,
            },
        );
        self.committed_bytes += needed;
        Ok(())
    }

    /// Tear down a job, releasing exactly the bytes recorded at
    /// admission.
    pub fn evict(&mut self, job: u8) -> Result<()> {
        let entry = self
            .jobs
            .remove(&job)
            .ok_or_else(|| Error::InvalidConfig(format!("job {job} not admitted")))?;
        self.committed_bytes = self.committed_bytes.saturating_sub(entry.committed);
        Ok(())
    }

    /// Replace a job's pool with a fresh one under `proto` (same or
    /// different worker count / pool size), atomically: on any failure
    /// the job keeps its old pool and accounting is unchanged. This is
    /// the live-reconfiguration primitive — after quiescing a job, the
    /// control plane shrinks n and restarts aggregation on clean slots.
    pub fn reset_job(&mut self, job: u8, proto: &Protocol) -> Result<()> {
        let old_committed = match self.jobs.get(&job) {
            Some(entry) => entry.committed,
            None => return Err(Error::InvalidConfig(format!("job {job} not admitted"))),
        };
        let report = self.pipeline.validate(proto)?;
        let needed = report.pool_bytes + report.bookkeeping_bytes;
        let without_old = self.committed_bytes.saturating_sub(old_committed);
        if without_old + needed > self.pipeline.register_sram_bytes {
            return Err(Error::InvalidConfig(format!(
                "resizing job {job} needs {needed} B but only {} B of register SRAM remain",
                self.pipeline.register_sram_bytes - without_old
            )));
        }
        let switch = ReliableSwitch::new(proto)?;
        self.jobs.insert(
            job,
            JobEntry {
                switch,
                proto: proto.clone(),
                committed: needed,
            },
        );
        self.committed_bytes = without_old + needed;
        Ok(())
    }

    /// Number of admitted jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Read-only access to a job's aggregation pool, for invariant
    /// oracles and state fingerprinting.
    pub fn job_switch(&self, job: u8) -> Option<&ReliableSwitch> {
        self.jobs.get(&job).map(|e| &e.switch)
    }

    /// Ids of admitted jobs, ascending (deterministic for drain loops).
    pub fn job_ids(&self) -> Vec<u8> {
        let mut ids: Vec<u8> = self.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The configuration a job was admitted under.
    pub fn job_proto(&self, job: u8) -> Option<&Protocol> {
        self.jobs.get(&job).map(|e| &e.proto)
    }

    /// Register bytes currently committed.
    pub fn committed_bytes(&self) -> usize {
        self.committed_bytes
    }

    /// Register bytes still available for admission.
    pub fn remaining_bytes(&self) -> usize {
        self.pipeline
            .register_sram_bytes
            .saturating_sub(self.committed_bytes)
    }

    /// Route a packet to its job's pool.
    pub fn on_packet(&mut self, pkt: Packet) -> Result<SwitchAction> {
        let job = pkt.job;
        self.jobs
            .get_mut(&job)
            .ok_or(Error::OutOfRange("packet for an unadmitted job"))?
            .switch
            .on_packet(pkt)
    }

    /// Advance one job's epoch fence (§5.4). The control plane calls
    /// this alongside [`Self::reset_job`] during reconfiguration so
    /// in-flight traffic from the previous generation cannot reach the
    /// fresh pool.
    pub fn set_job_epoch(&mut self, job: u8, epoch: u8) -> Result<()> {
        self.jobs
            .get_mut(&job)
            .ok_or(Error::OutOfRange("epoch for an unadmitted job"))?
            .switch
            .set_epoch(epoch);
        Ok(())
    }

    /// Per-job counters.
    pub fn stats(&self, job: u8) -> Option<SwitchStats> {
        self.jobs.get(&job).map(|e| e.switch.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::pool_register_bytes;
    use crate::packet::{PacketKind, Payload, PoolVersion};

    fn proto(n: usize, s: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 32,
            pool_size: s,
            ..Protocol::default()
        }
    }

    fn pkt(job: u8, wid: u16, idx: u32, v: i32) -> Packet {
        Packet {
            kind: PacketKind::Update,
            wid,
            ver: PoolVersion::V0,
            idx,
            off: idx as u64 * 32,
            job,
            epoch: 0,
            retransmission: false,
            payload: Payload::I32(vec![v; 32]),
        }
    }

    #[test]
    fn jobs_aggregate_independently() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(1, &proto(2, 8)).unwrap();
        sw.admit(2, &proto(3, 8)).unwrap();
        assert_eq!(sw.job_count(), 2);

        // Job 1 completes with 2 contributions; job 2 needs 3.
        assert_eq!(sw.on_packet(pkt(1, 0, 0, 5)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.on_packet(pkt(2, 0, 0, 100)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.on_packet(pkt(2, 1, 0, 100)).unwrap(), SwitchAction::Drop);
        match sw.on_packet(pkt(1, 1, 0, 7)).unwrap() {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.job, 1);
                assert_eq!(p.payload, Payload::I32(vec![12; 32]));
            }
            other => panic!("{other:?}"),
        }
        match sw.on_packet(pkt(2, 2, 0, 100)).unwrap() {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.job, 2);
                assert_eq!(p.payload, Payload::I32(vec![300; 32]));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.stats(1).unwrap().completions, 1);
        assert_eq!(sw.stats(2).unwrap().completions, 1);
    }

    #[test]
    fn unadmitted_job_rejected() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        assert!(sw.on_packet(pkt(9, 0, 0, 1)).is_err());
        assert!(sw.admit(1, &proto(2, 8)).is_ok());
        assert!(sw.admit(1, &proto(2, 8)).is_err(), "double admission");
    }

    #[test]
    fn admission_respects_sram_budget() {
        let model = PipelineModel {
            register_sram_bytes: 300 * 1024,
            ..PipelineModel::default()
        };
        let mut sw = MultiJobSwitch::new(model);
        // Each 512-slot pool costs 128 KB + bookkeeping (~36 KB).
        sw.admit(0, &proto(8, 512)).unwrap();
        assert_eq!(
            sw.committed_bytes(),
            pool_register_bytes(512, 32) + 2 * 512 * 36
        );
        assert!(sw.admit(1, &proto(8, 512)).is_err(), "budget exhausted");
        // A smaller job still fits.
        sw.admit(1, &proto(8, 64)).unwrap();
        // Evicting frees budget.
        sw.evict(0).unwrap();
        sw.admit(2, &proto(8, 512)).unwrap();
        assert!(sw.evict(9).is_err());
    }

    #[test]
    fn evict_releases_exactly_the_admitted_bytes() {
        // Regression: evict used to recompute the released amount from
        // a caller-supplied proto, so a mismatched proto corrupted the
        // ledger. Now the amount recorded at admit time is released.
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(0, &proto(8, 512)).unwrap();
        let big = sw.committed_bytes();
        sw.admit(1, &proto(8, 64)).unwrap();
        let small = sw.committed_bytes() - big;
        sw.evict(0).unwrap();
        assert_eq!(sw.committed_bytes(), small);
        sw.evict(1).unwrap();
        assert_eq!(sw.committed_bytes(), 0);
        assert_eq!(sw.job_count(), 0);
    }

    #[test]
    fn reset_job_swaps_pool_and_reaccounts() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(0, &proto(4, 512)).unwrap();
        let before = sw.committed_bytes();
        assert_eq!(sw.job_proto(0).unwrap().n_workers, 4);

        // Shrink to 3 workers on a smaller pool: accounting follows.
        sw.reset_job(0, &proto(3, 64)).unwrap();
        assert!(sw.committed_bytes() < before);
        assert_eq!(sw.job_proto(0).unwrap().n_workers, 3);
        assert_eq!(sw.job_ids(), vec![0]);

        // The fresh pool aggregates under the new n.
        assert_eq!(sw.on_packet(pkt(0, 0, 0, 1)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.on_packet(pkt(0, 1, 0, 1)).unwrap(), SwitchAction::Drop);
        match sw.on_packet(pkt(0, 2, 0, 1)).unwrap() {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![3; 32])),
            other => panic!("{other:?}"),
        }

        // Unknown job refused; state untouched.
        assert!(sw.reset_job(7, &proto(2, 8)).is_err());
    }

    #[test]
    fn epoch_fence_is_per_job() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(1, &proto(2, 8)).unwrap();
        sw.admit(2, &proto(2, 8)).unwrap();
        sw.set_job_epoch(1, 1).unwrap();
        assert!(sw.set_job_epoch(9, 1).is_err());
        // Job 1 now rejects epoch-0 traffic; job 2 still accepts it.
        assert_eq!(sw.on_packet(pkt(1, 0, 0, 5)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.stats(1).unwrap().stale_epoch, 1);
        assert_eq!(sw.on_packet(pkt(2, 0, 0, 5)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.stats(2).unwrap().stale_epoch, 0);
        assert_eq!(sw.stats(2).unwrap().updates, 1);
    }
}
