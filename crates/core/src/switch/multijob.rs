//! Multi-job (tenancy) support — §6 "Multi-job (tenancy)".
//!
//! "Every job requires a separate pool of aggregators to ensure
//! correctness … an admission mechanism would be needed to control the
//! assignment of jobs to pools." This module is that admission
//! mechanism plus the per-job pool demultiplexer: packets carry a job
//! id, and each admitted job gets its own [`ReliableSwitch`] pool,
//! bounded by the modeled switch SRAM budget.

use super::pipeline::PipelineModel;
use super::reliable::ReliableSwitch;
use super::{SwitchAction, SwitchStats};
use crate::config::Protocol;
use crate::error::{Error, Result};
use crate::packet::Packet;
use std::collections::HashMap;

/// A switch dataplane hosting several independent aggregation jobs.
#[derive(Debug)]
pub struct MultiJobSwitch {
    pipeline: PipelineModel,
    jobs: HashMap<u8, ReliableSwitch>,
    /// Register bytes already committed to admitted jobs.
    committed_bytes: usize,
}

impl MultiJobSwitch {
    pub fn new(pipeline: PipelineModel) -> Self {
        MultiJobSwitch {
            pipeline,
            jobs: HashMap::new(),
            committed_bytes: 0,
        }
    }

    /// Admit a job: validates the configuration against the pipeline
    /// model *including* the pools already committed to other jobs.
    pub fn admit(&mut self, job: u8, proto: &Protocol) -> Result<()> {
        if self.jobs.contains_key(&job) {
            return Err(Error::InvalidConfig(format!("job {job} already admitted")));
        }
        let report = self.pipeline.validate(proto)?;
        let needed = report.pool_bytes + report.bookkeeping_bytes;
        if self.committed_bytes + needed > self.pipeline.register_sram_bytes {
            return Err(Error::InvalidConfig(format!(
                "admitting job {job} needs {needed} B but only {} B of register SRAM remain",
                self.pipeline.register_sram_bytes - self.committed_bytes
            )));
        }
        self.jobs.insert(job, ReliableSwitch::new(proto)?);
        self.committed_bytes += needed;
        Ok(())
    }

    /// Tear down a job, releasing its pool.
    pub fn evict(&mut self, job: u8, proto: &Protocol) -> Result<()> {
        if self.jobs.remove(&job).is_none() {
            return Err(Error::InvalidConfig(format!("job {job} not admitted")));
        }
        let report = self.pipeline.validate(proto)?;
        self.committed_bytes = self
            .committed_bytes
            .saturating_sub(report.pool_bytes + report.bookkeeping_bytes);
        Ok(())
    }

    /// Number of admitted jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Register bytes currently committed.
    pub fn committed_bytes(&self) -> usize {
        self.committed_bytes
    }

    /// Route a packet to its job's pool.
    pub fn on_packet(&mut self, pkt: Packet) -> Result<SwitchAction> {
        let job = pkt.job;
        self.jobs
            .get_mut(&job)
            .ok_or(Error::OutOfRange("packet for an unadmitted job"))?
            .on_packet(pkt)
    }

    /// Per-job counters.
    pub fn stats(&self, job: u8) -> Option<SwitchStats> {
        self.jobs.get(&job).map(|s| s.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::pool_register_bytes;
    use crate::packet::{PacketKind, Payload, PoolVersion};

    fn proto(n: usize, s: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 32,
            pool_size: s,
            ..Protocol::default()
        }
    }

    fn pkt(job: u8, wid: u16, idx: u32, v: i32) -> Packet {
        Packet {
            kind: PacketKind::Update,
            wid,
            ver: PoolVersion::V0,
            idx,
            off: idx as u64 * 32,
            job,
            retransmission: false,
            payload: Payload::I32(vec![v; 32]),
        }
    }

    #[test]
    fn jobs_aggregate_independently() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(1, &proto(2, 8)).unwrap();
        sw.admit(2, &proto(3, 8)).unwrap();
        assert_eq!(sw.job_count(), 2);

        // Job 1 completes with 2 contributions; job 2 needs 3.
        assert_eq!(sw.on_packet(pkt(1, 0, 0, 5)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.on_packet(pkt(2, 0, 0, 100)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.on_packet(pkt(2, 1, 0, 100)).unwrap(), SwitchAction::Drop);
        match sw.on_packet(pkt(1, 1, 0, 7)).unwrap() {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.job, 1);
                assert_eq!(p.payload, Payload::I32(vec![12; 32]));
            }
            other => panic!("{other:?}"),
        }
        match sw.on_packet(pkt(2, 2, 0, 100)).unwrap() {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.job, 2);
                assert_eq!(p.payload, Payload::I32(vec![300; 32]));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.stats(1).unwrap().completions, 1);
        assert_eq!(sw.stats(2).unwrap().completions, 1);
    }

    #[test]
    fn unadmitted_job_rejected() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        assert!(sw.on_packet(pkt(9, 0, 0, 1)).is_err());
        assert!(sw.admit(1, &proto(2, 8)).is_ok());
        assert!(sw.admit(1, &proto(2, 8)).is_err(), "double admission");
    }

    #[test]
    fn admission_respects_sram_budget() {
        let model = PipelineModel {
            register_sram_bytes: 300 * 1024,
            ..PipelineModel::default()
        };
        let mut sw = MultiJobSwitch::new(model);
        // Each 512-slot pool costs 128 KB + bookkeeping (~36 KB).
        sw.admit(0, &proto(8, 512)).unwrap();
        assert_eq!(
            sw.committed_bytes(),
            pool_register_bytes(512, 32) + 2 * 512 * 36
        );
        assert!(sw.admit(1, &proto(8, 512)).is_err(), "budget exhausted");
        // A smaller job still fits.
        sw.admit(1, &proto(8, 64)).unwrap();
        // Evicting frees budget.
        sw.evict(0, &proto(8, 512)).unwrap();
        sw.admit(2, &proto(8, 512)).unwrap();
        assert!(sw.evict(9, &proto(8, 64)).is_err());
    }
}
