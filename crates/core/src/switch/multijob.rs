//! Multi-job (tenancy) support — §6 "Multi-job (tenancy)".
//!
//! "Every job requires a separate pool of aggregators to ensure
//! correctness … an admission mechanism would be needed to control the
//! assignment of jobs to pools." This module is that admission
//! mechanism plus the per-job pool demultiplexer: packets carry a job
//! id, and each admitted job gets its own [`ReliableSwitch`] pool,
//! bounded by the modeled switch SRAM budget.

use super::pipeline::PipelineModel;
use super::reliable::ReliableSwitch;
use super::{SwitchAction, SwitchStats};
use crate::config::Protocol;
use crate::error::{Error, Result};
use crate::packet::Packet;
use std::collections::HashMap;

/// A job's contiguous range in the switch's global slot address space:
/// physical aggregator slots `[base, base + len)`. Packet slot indices
/// are job-relative; `base + idx` is the physical slot a packet
/// touches, which is what the tenancy isolation argument is about — no
/// two live jobs may ever own the same physical slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRange {
    pub base: u32,
    pub len: u32,
}

impl SlotRange {
    pub fn contains(&self, slot: u32) -> bool {
        slot >= self.base && slot - self.base < self.len
    }

    pub fn overlaps(&self, other: &SlotRange) -> bool {
        self.base < other.base + other.len && other.base < self.base + self.len
    }
}

/// One admitted job: its aggregation pool, the configuration it was
/// admitted under, and the SRAM cost recorded at admission time.
#[derive(Debug, Clone)]
struct JobEntry {
    switch: ReliableSwitch,
    proto: Protocol,
    /// Register bytes charged at `admit`; released verbatim at `evict`
    /// so accounting can never drift from a caller-supplied proto.
    committed: usize,
    /// Physical slot range assigned at admission (first-fit).
    range: SlotRange,
}

/// A switch dataplane hosting several independent aggregation jobs.
#[derive(Debug, Clone)]
pub struct MultiJobSwitch {
    pipeline: PipelineModel,
    jobs: HashMap<u8, JobEntry>,
    /// Register bytes already committed to admitted jobs.
    committed_bytes: usize,
}

impl MultiJobSwitch {
    pub fn new(pipeline: PipelineModel) -> Self {
        MultiJobSwitch {
            pipeline,
            jobs: HashMap::new(),
            committed_bytes: 0,
        }
    }

    /// Admit a job: validates the configuration against the pipeline
    /// model *including* the pools already committed to other jobs.
    pub fn admit(&mut self, job: u8, proto: &Protocol) -> Result<()> {
        if self.jobs.contains_key(&job) {
            return Err(Error::InvalidConfig(format!("job {job} already admitted")));
        }
        let report = self.pipeline.validate(proto)?;
        let needed = report.pool_bytes + report.bookkeeping_bytes;
        if self.committed_bytes + needed > self.pipeline.register_sram_bytes {
            return Err(Error::InvalidConfig(format!(
                "admitting job {job} needs {needed} B but only {} B of register SRAM remain",
                self.pipeline.register_sram_bytes - self.committed_bytes
            )));
        }
        let range = self.alloc_range(proto.pool_size as u32, None);
        self.check_disjoint(job, range)?;
        self.jobs.insert(
            job,
            JobEntry {
                switch: ReliableSwitch::new(proto)?,
                proto: proto.clone(),
                committed: needed,
                range,
            },
        );
        self.committed_bytes += needed;
        Ok(())
    }

    /// First-fit allocation in the global slot address space: the
    /// lowest base at which `len` slots fit between the ranges of live
    /// jobs (excluding `skip`, used when a job's own range is being
    /// replaced). The address space itself is unbounded — admission is
    /// bounded by the SRAM byte ledger, not by slot numbering.
    fn alloc_range(&self, len: u32, skip: Option<u8>) -> SlotRange {
        let mut ranges: Vec<SlotRange> = self
            .jobs
            .iter()
            .filter(|(id, _)| Some(**id) != skip)
            .map(|(_, e)| e.range)
            .collect();
        ranges.sort_unstable_by_key(|r| r.base);
        let mut base = 0u32;
        for r in &ranges {
            if base + len <= r.base {
                break;
            }
            base = base.max(r.base + r.len);
        }
        SlotRange { base, len }
    }

    /// The slot-disjointness check: a candidate range for `job` must
    /// not overlap any other live job's physical slots. First-fit
    /// allocation satisfies this by construction; the check is kept
    /// explicit because it *is* the tenancy isolation invariant — a
    /// partitioner that skips it hands two tenants the same aggregator
    /// registers and their gradients sum into each other.
    fn check_disjoint(&self, job: u8, range: SlotRange) -> Result<()> {
        for (&other, entry) in &self.jobs {
            if other != job && entry.range.overlaps(&range) {
                return Err(Error::InvalidConfig(format!(
                    "job {job} slot range [{}, {}) overlaps live job {other}'s [{}, {})",
                    range.base,
                    range.base + range.len,
                    entry.range.base,
                    entry.range.base + entry.range.len,
                )));
            }
        }
        Ok(())
    }

    /// Tear down a job, releasing exactly the bytes recorded at
    /// admission.
    pub fn evict(&mut self, job: u8) -> Result<()> {
        let entry = self
            .jobs
            .remove(&job)
            .ok_or_else(|| Error::InvalidConfig(format!("job {job} not admitted")))?;
        self.committed_bytes = self.committed_bytes.saturating_sub(entry.committed);
        Ok(())
    }

    /// Replace a job's pool with a fresh one under `proto` (same or
    /// different worker count / pool size), atomically: on any failure
    /// the job keeps its old pool and accounting is unchanged. This is
    /// the live-reconfiguration primitive — after quiescing a job, the
    /// control plane shrinks n and restarts aggregation on clean slots.
    pub fn reset_job(&mut self, job: u8, proto: &Protocol) -> Result<()> {
        let old_committed = match self.jobs.get(&job) {
            Some(entry) => entry.committed,
            None => return Err(Error::InvalidConfig(format!("job {job} not admitted"))),
        };
        let report = self.pipeline.validate(proto)?;
        let needed = report.pool_bytes + report.bookkeeping_bytes;
        let without_old = self.committed_bytes.saturating_sub(old_committed);
        if without_old + needed > self.pipeline.register_sram_bytes {
            return Err(Error::InvalidConfig(format!(
                "resizing job {job} needs {needed} B but only {} B of register SRAM remain",
                self.pipeline.register_sram_bytes - without_old
            )));
        }
        let switch = ReliableSwitch::new(proto)?;
        // The old range is freed and a fresh one allocated first-fit;
        // a shrink commonly keeps its base, a grow may relocate.
        let range = self.alloc_range(proto.pool_size as u32, Some(job));
        self.check_disjoint(job, range)?;
        self.jobs.insert(
            job,
            JobEntry {
                switch,
                proto: proto.clone(),
                committed: needed,
                range,
            },
        );
        self.committed_bytes = without_old + needed;
        Ok(())
    }

    /// Number of admitted jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Read-only access to a job's aggregation pool, for invariant
    /// oracles and state fingerprinting.
    pub fn job_switch(&self, job: u8) -> Option<&ReliableSwitch> {
        self.jobs.get(&job).map(|e| &e.switch)
    }

    /// Ids of admitted jobs, ascending (deterministic for drain loops).
    pub fn job_ids(&self) -> Vec<u8> {
        let mut ids: Vec<u8> = self.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The configuration a job was admitted under.
    pub fn job_proto(&self, job: u8) -> Option<&Protocol> {
        self.jobs.get(&job).map(|e| &e.proto)
    }

    /// The physical slot range a job was assigned.
    pub fn slot_range(&self, job: u8) -> Option<SlotRange> {
        self.jobs.get(&job).map(|e| e.range)
    }

    /// The full partition map: `(job, range)` for every live job,
    /// ascending by base — the scheduler-facing view of who owns which
    /// physical aggregator slots.
    pub fn partition(&self) -> Vec<(u8, SlotRange)> {
        let mut out: Vec<(u8, SlotRange)> = self.jobs.iter().map(|(&j, e)| (j, e.range)).collect();
        out.sort_unstable_by_key(|(_, r)| r.base);
        out
    }

    /// Does the current partition assign every physical slot to at
    /// most one live job? True by construction; exposed so invariant
    /// checkers (and the proptest harness) can audit the ledger rather
    /// than trust it.
    pub fn partition_is_disjoint(&self) -> bool {
        let p = self.partition();
        p.windows(2).all(|w| !w[0].1.overlaps(&w[1].1))
    }

    /// Register bytes currently committed.
    pub fn committed_bytes(&self) -> usize {
        self.committed_bytes
    }

    /// Register bytes still available for admission.
    pub fn remaining_bytes(&self) -> usize {
        self.pipeline
            .register_sram_bytes
            .saturating_sub(self.committed_bytes)
    }

    /// Route a packet to its job's pool.
    pub fn on_packet(&mut self, pkt: Packet) -> Result<SwitchAction> {
        let job = pkt.job;
        self.jobs
            .get_mut(&job)
            .ok_or(Error::OutOfRange("packet for an unadmitted job"))?
            .switch
            .on_packet(pkt)
    }

    /// Advance one job's epoch fence (§5.4). The control plane calls
    /// this alongside [`Self::reset_job`] during reconfiguration so
    /// in-flight traffic from the previous generation cannot reach the
    /// fresh pool.
    pub fn set_job_epoch(&mut self, job: u8, epoch: u8) -> Result<()> {
        self.jobs
            .get_mut(&job)
            .ok_or(Error::OutOfRange("epoch for an unadmitted job"))?
            .switch
            .set_epoch(epoch);
        Ok(())
    }

    /// Per-job counters.
    pub fn stats(&self, job: u8) -> Option<SwitchStats> {
        self.jobs.get(&job).map(|e| e.switch.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::pool_register_bytes;
    use crate::packet::{PacketKind, Payload, PoolVersion};

    fn proto(n: usize, s: usize) -> Protocol {
        Protocol {
            n_workers: n,
            k: 32,
            pool_size: s,
            ..Protocol::default()
        }
    }

    fn pkt(job: u8, wid: u16, idx: u32, v: i32) -> Packet {
        Packet {
            kind: PacketKind::Update,
            wid,
            ver: PoolVersion::V0,
            idx,
            off: idx as u64 * 32,
            job,
            epoch: 0,
            retransmission: false,
            payload: Payload::I32(vec![v; 32]),
        }
    }

    #[test]
    fn jobs_aggregate_independently() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(1, &proto(2, 8)).unwrap();
        sw.admit(2, &proto(3, 8)).unwrap();
        assert_eq!(sw.job_count(), 2);

        // Job 1 completes with 2 contributions; job 2 needs 3.
        assert_eq!(sw.on_packet(pkt(1, 0, 0, 5)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.on_packet(pkt(2, 0, 0, 100)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.on_packet(pkt(2, 1, 0, 100)).unwrap(), SwitchAction::Drop);
        match sw.on_packet(pkt(1, 1, 0, 7)).unwrap() {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.job, 1);
                assert_eq!(p.payload, Payload::I32(vec![12; 32]));
            }
            other => panic!("{other:?}"),
        }
        match sw.on_packet(pkt(2, 2, 0, 100)).unwrap() {
            SwitchAction::Multicast(p) => {
                assert_eq!(p.job, 2);
                assert_eq!(p.payload, Payload::I32(vec![300; 32]));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.stats(1).unwrap().completions, 1);
        assert_eq!(sw.stats(2).unwrap().completions, 1);
    }

    #[test]
    fn unadmitted_job_rejected() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        assert!(sw.on_packet(pkt(9, 0, 0, 1)).is_err());
        assert!(sw.admit(1, &proto(2, 8)).is_ok());
        assert!(sw.admit(1, &proto(2, 8)).is_err(), "double admission");
    }

    #[test]
    fn admission_respects_sram_budget() {
        let model = PipelineModel {
            register_sram_bytes: 300 * 1024,
            ..PipelineModel::default()
        };
        let mut sw = MultiJobSwitch::new(model);
        // Each 512-slot pool costs 128 KB + bookkeeping (~36 KB).
        sw.admit(0, &proto(8, 512)).unwrap();
        assert_eq!(
            sw.committed_bytes(),
            pool_register_bytes(512, 32) + 2 * 512 * 36
        );
        assert!(sw.admit(1, &proto(8, 512)).is_err(), "budget exhausted");
        // A smaller job still fits.
        sw.admit(1, &proto(8, 64)).unwrap();
        // Evicting frees budget.
        sw.evict(0).unwrap();
        sw.admit(2, &proto(8, 512)).unwrap();
        assert!(sw.evict(9).is_err());
    }

    #[test]
    fn evict_releases_exactly_the_admitted_bytes() {
        // Regression: evict used to recompute the released amount from
        // a caller-supplied proto, so a mismatched proto corrupted the
        // ledger. Now the amount recorded at admit time is released.
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(0, &proto(8, 512)).unwrap();
        let big = sw.committed_bytes();
        sw.admit(1, &proto(8, 64)).unwrap();
        let small = sw.committed_bytes() - big;
        sw.evict(0).unwrap();
        assert_eq!(sw.committed_bytes(), small);
        sw.evict(1).unwrap();
        assert_eq!(sw.committed_bytes(), 0);
        assert_eq!(sw.job_count(), 0);
    }

    #[test]
    fn reset_job_swaps_pool_and_reaccounts() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(0, &proto(4, 512)).unwrap();
        let before = sw.committed_bytes();
        assert_eq!(sw.job_proto(0).unwrap().n_workers, 4);

        // Shrink to 3 workers on a smaller pool: accounting follows.
        sw.reset_job(0, &proto(3, 64)).unwrap();
        assert!(sw.committed_bytes() < before);
        assert_eq!(sw.job_proto(0).unwrap().n_workers, 3);
        assert_eq!(sw.job_ids(), vec![0]);

        // The fresh pool aggregates under the new n.
        assert_eq!(sw.on_packet(pkt(0, 0, 0, 1)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.on_packet(pkt(0, 1, 0, 1)).unwrap(), SwitchAction::Drop);
        match sw.on_packet(pkt(0, 2, 0, 1)).unwrap() {
            SwitchAction::Multicast(p) => assert_eq!(p.payload, Payload::I32(vec![3; 32])),
            other => panic!("{other:?}"),
        }

        // Unknown job refused; state untouched.
        assert!(sw.reset_job(7, &proto(2, 8)).is_err());
    }

    #[test]
    fn partition_is_first_fit_and_disjoint() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(0, &proto(2, 64)).unwrap();
        sw.admit(1, &proto(2, 32)).unwrap();
        sw.admit(2, &proto(2, 16)).unwrap();
        assert_eq!(sw.slot_range(0), Some(SlotRange { base: 0, len: 64 }));
        assert_eq!(sw.slot_range(1), Some(SlotRange { base: 64, len: 32 }));
        assert_eq!(sw.slot_range(2), Some(SlotRange { base: 96, len: 16 }));
        assert!(sw.partition_is_disjoint());

        // Evicting the middle job opens a gap; a job that fits takes
        // it (first-fit), one that does not goes past the end.
        sw.evict(1).unwrap();
        sw.admit(3, &proto(2, 32)).unwrap();
        assert_eq!(sw.slot_range(3), Some(SlotRange { base: 64, len: 32 }));
        sw.admit(4, &proto(2, 64)).unwrap();
        assert_eq!(sw.slot_range(4), Some(SlotRange { base: 112, len: 64 }));
        assert!(sw.partition_is_disjoint());
        assert_eq!(sw.partition().len(), 4);
    }

    #[test]
    fn reset_job_reallocates_range() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(0, &proto(2, 64)).unwrap();
        sw.admit(1, &proto(2, 64)).unwrap();
        // Shrink keeps the base (first fit lands where the job was).
        sw.reset_job(0, &proto(2, 16)).unwrap();
        assert_eq!(sw.slot_range(0), Some(SlotRange { base: 0, len: 16 }));
        // Growing past the neighbor relocates past it.
        sw.reset_job(0, &proto(2, 128)).unwrap();
        assert_eq!(
            sw.slot_range(0),
            Some(SlotRange {
                base: 128,
                len: 128
            })
        );
        assert!(sw.partition_is_disjoint());
    }

    #[test]
    fn slot_range_geometry() {
        let a = SlotRange { base: 0, len: 4 };
        let b = SlotRange { base: 4, len: 4 };
        let c = SlotRange { base: 3, len: 2 };
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c) && c.overlaps(&b));
        assert!(a.contains(3) && !a.contains(4));
    }

    #[test]
    fn epoch_fence_is_per_job() {
        let mut sw = MultiJobSwitch::new(PipelineModel::default());
        sw.admit(1, &proto(2, 8)).unwrap();
        sw.admit(2, &proto(2, 8)).unwrap();
        sw.set_job_epoch(1, 1).unwrap();
        assert!(sw.set_job_epoch(9, 1).is_err());
        // Job 1 now rejects epoch-0 traffic; job 2 still accepts it.
        assert_eq!(sw.on_packet(pkt(1, 0, 0, 5)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.stats(1).unwrap().stale_epoch, 1);
        assert_eq!(sw.on_packet(pkt(2, 0, 0, 5)).unwrap(), SwitchAction::Drop);
        assert_eq!(sw.stats(2).unwrap().stale_epoch, 0);
        assert_eq!(sw.stats(2).unwrap().updates, 1);
    }
}
