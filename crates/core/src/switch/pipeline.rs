//! Tofino-class pipeline resource model (§3.1, Appendix B).
//!
//! The paper's P4 program had to fit aggregation of 32 elements per
//! packet into a *single ingress pipeline*: limited parse budget,
//! limited stages, limited register ALU operations per stage, and
//! on-die SRAM shared with forwarding state. This module models that
//! envelope so configurations the hardware could not run are rejected
//! up front, and so experiments can report resource usage the way
//! §5.5 ("Switch resources") does.
//!
//! The numbers are representative of a first-generation Tofino: they
//! reproduce the paper's qualitative claims — k = 32 fits in one
//! ingress pipeline, MTU-sized vectors (366 elements) do not, and a
//! 512-slot pool uses well under 10% of register SRAM.

use crate::config::{pool_register_bytes, Protocol};
use crate::error::{Error, Result};
use crate::packet::HEADER_OVERHEAD_BYTES;
use serde::Serialize;

/// Resource envelope of one switch pipeline.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineModel {
    /// Match-action stages in the ingress pipeline.
    pub stages: usize,
    /// 32-bit register ALU actions available per stage. The paper's
    /// program uses 64-bit-wide accesses so one action touches the
    /// active and shadow pool values together.
    pub reg_actions_per_stage: usize,
    /// Stages consumed by non-element logic: parsing/validation,
    /// bitmap update, counter update, multicast decision.
    pub control_stages: usize,
    /// Register SRAM available to the program, bytes.
    pub register_sram_bytes: usize,
    /// Maximum bytes the parser can expose to match-action processing
    /// ("today on the order of a few hundred bytes", §3.3).
    pub parse_budget_bytes: usize,
    /// Ports on the switch (64 × 100 Gbps on the paper's testbed).
    pub ports: usize,
}

impl Default for PipelineModel {
    fn default() -> Self {
        PipelineModel {
            stages: 12,
            reg_actions_per_stage: 4,
            control_stages: 4,
            register_sram_bytes: 12 * 1024 * 1024, // ~tens of MB on-die, share for registers
            parse_budget_bytes: 256,
            ports: 64,
        }
    }
}

/// Resource usage of a validated configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ResourceReport {
    /// Stages needed: control + ceil(k / reg_actions_per_stage).
    pub stages_used: usize,
    /// Bytes of register SRAM for the two pools.
    pub pool_bytes: usize,
    /// Bytes for seen-bitmaps and counters.
    pub bookkeeping_bytes: usize,
    /// Fraction of modeled register SRAM consumed.
    pub sram_fraction: f64,
    /// Bytes of packet the parser must expose.
    pub parse_bytes: usize,
}

impl PipelineModel {
    /// Largest `k` this pipeline can aggregate at line rate.
    pub fn max_k(&self) -> usize {
        let elem_stages = self.stages.saturating_sub(self.control_stages);
        let by_stages = elem_stages * self.reg_actions_per_stage;
        let by_parser = (self
            .parse_budget_bytes
            .saturating_sub(HEADER_OVERHEAD_BYTES))
            / 4;
        by_stages.min(by_parser)
    }

    /// Validate a protocol configuration against this pipeline and
    /// report its resource usage.
    pub fn validate(&self, proto: &Protocol) -> Result<ResourceReport> {
        proto.validate()?;
        if proto.n_workers > self.ports {
            return Err(Error::InvalidConfig(format!(
                "{} workers exceed the {}-port switch",
                proto.n_workers, self.ports
            )));
        }

        let parse_bytes = HEADER_OVERHEAD_BYTES + 4 * proto.k;
        if parse_bytes > self.parse_budget_bytes {
            return Err(Error::InvalidConfig(format!(
                "packet needs {parse_bytes} parsed bytes; parser budget is {} \
                 (k = {} exceeds max_k = {})",
                self.parse_budget_bytes,
                proto.k,
                self.max_k()
            )));
        }

        let elem_stages = proto.k.div_ceil(self.reg_actions_per_stage);
        let stages_used = self.control_stages + elem_stages;
        if stages_used > self.stages {
            return Err(Error::InvalidConfig(format!(
                "needs {stages_used} stages; pipeline has {}",
                self.stages
            )));
        }

        let pool_bytes = pool_register_bytes(proto.pool_size, proto.k);
        // Two pools of per-slot bitmaps (32B each for 256 workers) and
        // counters (4B each).
        let bookkeeping_bytes = 2 * proto.pool_size * (32 + 4);
        let total = pool_bytes + bookkeeping_bytes;
        if total > self.register_sram_bytes {
            return Err(Error::InvalidConfig(format!(
                "register usage {total} B exceeds SRAM {} B",
                self.register_sram_bytes
            )));
        }

        Ok(ResourceReport {
            stages_used,
            pool_bytes,
            bookkeeping_bytes,
            sram_fraction: total as f64 / self.register_sram_bytes as f64,
            parse_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{DEFAULT_K, MTU_K};

    #[test]
    fn paper_deployment_fits() {
        let model = PipelineModel::default();
        let proto = Protocol {
            n_workers: 8,
            k: DEFAULT_K,
            pool_size: 512,
            ..Protocol::default()
        };
        let report = model.validate(&proto).unwrap();
        assert!(report.stages_used <= model.stages);
        // "even at 100 Gbps the memory requirement is << 10% of switch
        // resources."
        assert!(report.sram_fraction < 0.10, "{}", report.sram_fraction);
    }

    #[test]
    fn k32_is_the_sweet_spot() {
        // The model admits k = 32 but not much more — matching the
        // paper's "we are limited to 32 elements per packet".
        let model = PipelineModel::default();
        assert!(model.max_k() >= DEFAULT_K);
        assert!(model.max_k() < 2 * DEFAULT_K);
    }

    #[test]
    fn mtu_sized_vectors_rejected() {
        // Figure 7's MTU what-if (366 elements) exceeds a real
        // pipeline; the harness emulates it the way the paper does
        // (aggregate the first 32, forward the rest).
        let model = PipelineModel::default();
        let proto = Protocol {
            k: MTU_K,
            ..Protocol::default()
        };
        assert!(model.validate(&proto).is_err());
    }

    #[test]
    fn too_many_workers_rejected() {
        let model = PipelineModel::default();
        let proto = Protocol {
            n_workers: 100,
            ..Protocol::default()
        };
        assert!(model.validate(&proto).is_err());
    }

    #[test]
    fn giant_pool_rejected() {
        let model = PipelineModel {
            register_sram_bytes: 64 * 1024,
            ..PipelineModel::default()
        };
        let proto = Protocol {
            pool_size: 16384,
            ..Protocol::default()
        };
        assert!(model.validate(&proto).is_err());
    }

    #[test]
    fn resource_scaling_is_linear_in_pool() {
        let model = PipelineModel::default();
        let r128 = model
            .validate(&Protocol {
                pool_size: 128,
                ..Protocol::default()
            })
            .unwrap();
        let r512 = model
            .validate(&Protocol {
                pool_size: 512,
                ..Protocol::default()
            })
            .unwrap();
        assert_eq!(r128.pool_bytes, 32 * 1024);
        assert_eq!(r512.pool_bytes, 128 * 1024);
        assert_eq!(r512.pool_bytes, 4 * r128.pool_bytes);
    }

    #[test]
    fn worker_count_does_not_change_resources() {
        // §5.5: "The number of workers does not influence the resource
        // requirements to perform aggregation at line rate."
        let model = PipelineModel::default();
        let base = Protocol::default();
        let r8 = model
            .validate(&Protocol {
                n_workers: 8,
                ..base.clone()
            })
            .unwrap();
        let r64 = model
            .validate(&Protocol {
                n_workers: 64,
                ..base
            })
            .unwrap();
        assert_eq!(r8.pool_bytes, r64.pool_bytes);
        assert_eq!(r8.stages_used, r64.stages_used);
        assert_eq!(r8.bookkeeping_bytes, r64.bookkeeping_bytes);
    }
}
